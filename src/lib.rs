//! Umbrella crate for the secure-MANET reproduction workspace.
//!
//! The real code lives in the member crates; this root package exists so
//! the repository-level `tests/` (integration suites) and `examples/`
//! (runnable scenarios) can depend on every layer at once.

pub use manet_bench as bench;
pub use manet_crypto as crypto;
pub use manet_secure as secure;
pub use manet_sim as sim;
pub use manet_wire as wire;
