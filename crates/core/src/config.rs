//! Protocol configuration.
//!
//! One struct gathers every tunable the paper leaves implicit (timeouts,
//! retry budgets, credit parameters) so experiments can sweep them and the
//! ablation benches can toggle individual mechanisms.

use manet_crypto::BackendKind;
use manet_sim::SimDuration;

/// Credit-management parameters (Section 3.4).
#[derive(Clone, Debug)]
pub struct CreditConfig {
    /// Master switch; off reduces route selection to shortest-first.
    pub enabled: bool,
    /// Credit assigned to a never-seen host ("a new node should be given
    /// a low credit").
    pub initial: i64,
    /// Added to each relay on a correctly acknowledged data packet.
    pub reward: i64,
    /// Subtracted on detected misbehaviour ("decreased by a very large
    /// amount").
    pub slash: i64,
    /// Small penalty applied to every relay of a route whose end-to-end
    /// ack timed out (the black-hole signal is in the aggregate).
    pub timeout_penalty: i64,
    /// RERR reports from the same host beyond this count mark it (and its
    /// next hop) as a hostile area.
    pub rerr_threshold: u32,
    /// Routes containing a host below this credit are avoided when any
    /// alternative exists.
    pub avoid_below: i64,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            enabled: true,
            initial: 0,
            reward: 1,
            slash: 100,
            timeout_penalty: 2,
            rerr_threshold: 3,
            avoid_below: -10,
        }
    }
}

/// Malicious behaviour switches. A default instance is an honest node;
/// the constructors in [`crate::attacks`] flip specific switches.
#[derive(Clone, Debug, Default)]
pub struct Behavior {
    /// Fraction of data packets this node silently drops instead of
    /// forwarding (1.0 = black hole, 0.0 = honest, in between = grey hole).
    pub data_drop_prob: f64,
    /// Answer every RREQ with a forged RREP claiming a one-hop route to
    /// the destination (the classic black-hole route attraction).
    pub forge_rrep: bool,
    /// Claim this IP address in forged replies instead of our own
    /// (impersonation attack).
    pub impersonate: Option<manet_wire::Ipv6Addr>,
    /// Record overheard AREP/RREP messages and replay them later.
    pub replay: bool,
    /// Send a spurious signed RERR after forwarding each data packet
    /// (RERR spam / route disruption).
    pub rerr_spam: bool,
    /// Answer DAD AREQs for *any* address as if it were ours (address
    /// squatting / bootstrap denial attempt).
    pub squat_dad: bool,
    /// Answer DNS queries with a forged reply pointing at ourselves
    /// (DNS impersonation).
    pub forge_dns: bool,
    /// A sophisticated dropper: forward (and acknowledge) route probes
    /// while still dropping data — evades probe localization, degrading
    /// the defense to the credit mechanism.
    pub evade_probes: bool,
}

impl Behavior {
    /// True if every switch is off.
    pub fn is_honest(&self) -> bool {
        self.data_drop_prob == 0.0
            && !self.forge_rrep
            && self.impersonate.is_none()
            && !self.replay
            && !self.rerr_spam
            && !self.squat_dad
            && !self.forge_dns
            && !self.evade_probes
    }
}

/// All protocol tunables.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// RSA modulus size for host identities.
    pub key_bits: u32,
    /// How long a joining host waits for AREP/DREP before concluding its
    /// address and name are unique (Section 3.1's "predefined period").
    pub dad_timeout: SimDuration,
    /// AREQ transmissions per DAD attempt, spread across the window.
    /// Flooding is lossy; the extended-DAD drafts retransmit the probe so
    /// one lost broadcast does not miss a genuine duplicate.
    pub dad_probes: u32,
    /// DAD attempts before giving up entirely.
    pub dad_max_attempts: u32,
    /// How long the DNS holds a pending (DN, IP) registration open for
    /// warning AREPs before committing it.
    pub dns_pending_window: SimDuration,
    /// Route discovery timeout before retrying.
    pub rreq_timeout: SimDuration,
    /// Route discovery attempts per destination before failing buffered
    /// traffic.
    pub rreq_retries: u32,
    /// End-to-end ack timeout for a data packet.
    pub ack_timeout: SimDuration,
    /// Retransmissions of a data packet (over alternate routes) before
    /// declaring it failed.
    pub data_retries: u32,
    /// Answer RREQs from cache with CREP when we hold a destination-signed
    /// route (toggled off by the `ablation_crep` bench).
    pub crep_enabled: bool,
    /// Route cache entry lifetime.
    pub route_ttl: SimDuration,
    /// Maximum cached routes per destination; inserting past the cap
    /// evicts the oldest-learned (soonest-to-expire) route.
    pub route_cache_per_dest: usize,
    /// Maximum destinations in the route cache; a new destination past
    /// the cap evicts the stalest one (oldest newest-route).
    pub route_cache_dests: usize,
    /// Memoize signature-verification verdicts (see
    /// `node::verify`). Pure-function caching: verdicts are identical
    /// with or without it, only the CPU cost changes. Disable to measure
    /// the uncached baseline (the V1 exhibit does).
    pub verify_cache: bool,
    /// Verdicts retained by the verify cache (LRU bound).
    pub verify_cache_capacity: usize,
    /// Signature backend for everything this node signs and verifies.
    /// The default honors the `MANET_CRYPTO` env knob (RSA when unset).
    /// Backends emit different signature bytes, so two backends are two
    /// different — each internally deterministic — simulation universes;
    /// tests pinning RSA semantics must set this explicitly.
    pub crypto_backend: BackendKind,
    /// Network-wide deferred batch verification (scenario builds only):
    /// a speculative prefetch pass enqueues the triples a tick's frames
    /// will check, one drain verifies each unique triple once, dispatch
    /// reads the shared verdicts. Observationally invisible — verdicts
    /// are pure — so this is a perf knob, never a semantics knob.
    pub batch_verify: bool,
    /// The destination answers up to this many copies of the same RREQ
    /// (arriving over different paths), giving the source route diversity
    /// — the raw material the credit system selects from.
    pub rrep_multi: u32,
    /// Verify SRR hop identities at the destination. Always on in the
    /// real protocol; the `ablation_srr` bench turns it off to measure
    /// the cost/benefit of per-hop verification.
    pub verify_srr: bool,
    /// Credit management.
    pub credit: CreditConfig,
    /// Maximum buffered packets awaiting a route, per node.
    pub max_send_buffer: usize,
    /// Route probing (Section 3.4's "traverse the route and test the
    /// integrality of each host"). Off by default — it is the paper's
    /// suggested extension, evaluated separately (ablation A5).
    pub probe_enabled: bool,
    /// End-to-end ack timeouts toward one destination before a probe is
    /// launched. 1 (the default) probes on the first sign of loss: a
    /// probe costs a few hundred control bytes, far less than the data
    /// it saves, and credit-based rerouting usually abandons a bad route
    /// after a single timeout — a higher threshold would rarely fire.
    pub probe_after: u32,
    /// How long to collect per-hop probe acks before judging.
    pub probe_timeout: SimDuration,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            key_bits: 512,
            dad_timeout: SimDuration::from_millis(900),
            dad_probes: 2,
            dad_max_attempts: 4,
            dns_pending_window: SimDuration::from_millis(400),
            rreq_timeout: SimDuration::from_millis(500),
            rreq_retries: 3,
            ack_timeout: SimDuration::from_millis(800),
            data_retries: 2,
            crep_enabled: true,
            route_ttl: SimDuration::from_secs(60),
            route_cache_per_dest: 8,
            route_cache_dests: 256,
            verify_cache: true,
            verify_cache_capacity: 1024,
            crypto_backend: BackendKind::default(),
            batch_verify: true,
            rrep_multi: 3,
            verify_srr: true,
            credit: CreditConfig::default(),
            max_send_buffer: 64,
            probe_enabled: false,
            probe_after: 1,
            probe_timeout: SimDuration::from_millis(600),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_behavior_is_honest() {
        assert!(Behavior::default().is_honest());
        let b = Behavior {
            data_drop_prob: 1.0,
            ..Behavior::default()
        };
        assert!(!b.is_honest());
    }

    #[test]
    fn default_config_is_consistent() {
        // The DNS commits (and emits any commit-time DREP) strictly
        // before the joining host's DAD window closes — otherwise a name
        // conflict could be reported to a host that already assumed
        // success (Section 3.1's two "predefined periods" must nest).
        let c = ProtocolConfig::default();
        assert!(
            c.dns_pending_window < c.dad_timeout,
            "DNS must commit inside DAD"
        );
        assert!(
            c.credit.slash > c.credit.reward,
            "slash must dominate reward"
        );
        assert!(c.key_bits >= 384, "modulus must admit the signature frame");
    }
}
