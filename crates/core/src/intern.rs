//! Network-wide interning of addresses and domain names.
//!
//! At S3 scale every per-node map keyed on a 16-byte [`Ipv6Addr`] (or a
//! heap-allocated [`DomainName`]) pays for the key in every node that
//! holds it. The scenario builder knows *all* addresses and names at
//! build time (plain addresses are pre-drawn, secure identities and
//! host names are generated before the engine starts), so it interns
//! them once into a shared read-only [`InternTable`] and hands every
//! node an `Arc` of it. Per-node maps then key on dense `u32` ids.
//!
//! Addresses that appear only at runtime (a secure node re-rolling its
//! CGA after a DAD collision, an IP change, traffic from outside the
//! build set) overflow into a small per-interner map with ids above the
//! shared range — distinct unknown addresses never collapse onto each
//! other, so id equality is exactly address equality.
//!
//! Ids are assigned in deterministic build order and are never compared
//! for *order* anywhere observable: tie-breaks in eviction logic keep
//! resolving through the actual addresses, so interning cannot perturb
//! a seeded run.

use crate::fxhash::FxHashMap;
use manet_wire::{DomainName, Ipv6Addr};
use std::sync::Arc;

/// Shared build-time table: address ↔ id and name ↔ id, append-only.
#[derive(Debug, Default)]
pub struct InternTable {
    addr_ids: FxHashMap<Ipv6Addr, u32>,
    addrs: Vec<Ipv6Addr>,
    name_ids: FxHashMap<DomainName, u32>,
    names: Vec<DomainName>,
}

impl InternTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `a`, returning its stable id (idempotent).
    pub fn intern_addr(&mut self, a: Ipv6Addr) -> u32 {
        if let Some(&id) = self.addr_ids.get(&a) {
            return id;
        }
        let id = u32::try_from(self.addrs.len()).expect("address count fits u32");
        self.addrs.push(a);
        self.addr_ids.insert(a, id);
        id
    }

    /// Intern `n`, returning its stable id (idempotent).
    pub fn intern_name(&mut self, n: &DomainName) -> u32 {
        if let Some(&id) = self.name_ids.get(n) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("name count fits u32");
        self.names.push(n.clone());
        self.name_ids.insert(n.clone(), id);
        id
    }

    pub fn addr_id(&self, a: &Ipv6Addr) -> Option<u32> {
        self.addr_ids.get(a).copied()
    }

    pub fn name_id(&self, n: &DomainName) -> Option<u32> {
        self.name_ids.get(n).copied()
    }

    pub fn addr(&self, id: u32) -> Option<Ipv6Addr> {
        self.addrs.get(id as usize).copied()
    }

    pub fn name(&self, id: u32) -> Option<&DomainName> {
        self.names.get(id as usize)
    }

    pub fn addr_count(&self) -> usize {
        self.addrs.len()
    }

    pub fn name_count(&self) -> usize {
        self.names.len()
    }
}

/// Per-node address interner: shared table plus a private overflow
/// range for addresses first seen at runtime.
#[derive(Debug)]
pub struct AddrInterner {
    table: Arc<InternTable>,
    extra_ids: FxHashMap<Ipv6Addr, u32>,
    extra: Vec<Ipv6Addr>,
}

impl Default for AddrInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrInterner {
    /// An interner over an empty shared table (standalone nodes, unit
    /// tests): every address lands in the overflow range.
    pub fn new() -> Self {
        Self::with_table(Arc::new(InternTable::new()))
    }

    pub fn with_table(table: Arc<InternTable>) -> Self {
        AddrInterner {
            table,
            extra_ids: FxHashMap::default(),
            extra: Vec::new(),
        }
    }

    /// Swap in the network-wide table. Only legal before any overflow
    /// interning happened (the builder calls this right after node
    /// construction), otherwise previously issued ids would be
    /// reinterpreted.
    pub fn set_table(&mut self, table: Arc<InternTable>) {
        debug_assert!(
            self.extra.is_empty(),
            "set_table after runtime interning would remap issued ids"
        );
        self.table = table;
    }

    /// Id for `a`, interning into the overflow range if unknown.
    pub fn id(&mut self, a: Ipv6Addr) -> u32 {
        if let Some(id) = self.table.addr_id(&a) {
            return id;
        }
        if let Some(&id) = self.extra_ids.get(&a) {
            return id;
        }
        let base = u32::try_from(self.table.addr_count()).expect("table size fits u32");
        let id = base
            .checked_add(u32::try_from(self.extra.len()).expect("overflow count fits u32"))
            .expect("interned id fits u32");
        self.extra.push(a);
        self.extra_ids.insert(a, id);
        id
    }

    /// Id for `a` if already interned (non-mutating — the read-side
    /// fast paths use this: unknown address ⇒ cannot be in any map).
    pub fn lookup(&self, a: &Ipv6Addr) -> Option<u32> {
        self.table
            .addr_id(a)
            .or_else(|| self.extra_ids.get(a).copied())
    }

    /// The address behind `id`.
    pub fn addr(&self, id: u32) -> Option<Ipv6Addr> {
        let base = self.table.addr_count() as u32;
        if id < base {
            self.table.addr(id)
        } else {
            self.extra.get((id - base) as usize).copied()
        }
    }
}

/// Per-holder domain-name interner (same overflow scheme as
/// [`AddrInterner`]; the DNS server keys its registry on these ids).
#[derive(Debug)]
pub struct NameInterner {
    table: Arc<InternTable>,
    extra_ids: FxHashMap<DomainName, u32>,
    extra: Vec<DomainName>,
}

impl Default for NameInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl NameInterner {
    pub fn new() -> Self {
        Self::with_table(Arc::new(InternTable::new()))
    }

    pub fn with_table(table: Arc<InternTable>) -> Self {
        NameInterner {
            table,
            extra_ids: FxHashMap::default(),
            extra: Vec::new(),
        }
    }

    /// See [`AddrInterner::set_table`].
    pub fn set_table(&mut self, table: Arc<InternTable>) {
        debug_assert!(
            self.extra.is_empty(),
            "set_table after runtime interning would remap issued ids"
        );
        self.table = table;
    }

    pub fn id(&mut self, n: &DomainName) -> u32 {
        if let Some(id) = self.table.name_id(n) {
            return id;
        }
        if let Some(&id) = self.extra_ids.get(n) {
            return id;
        }
        let base = u32::try_from(self.table.name_count()).expect("table size fits u32");
        let id = base
            .checked_add(u32::try_from(self.extra.len()).expect("overflow count fits u32"))
            .expect("interned id fits u32");
        self.extra.push(n.clone());
        self.extra_ids.insert(n.clone(), id);
        id
    }

    pub fn lookup(&self, n: &DomainName) -> Option<u32> {
        self.table
            .name_id(n)
            .or_else(|| self.extra_ids.get(n).copied())
    }

    pub fn name(&self, id: u32) -> Option<&DomainName> {
        let base = self.table.name_count() as u32;
        if id < base {
            self.table.name(id)
        } else {
            self.extra.get((id - base) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn dn(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    #[test]
    fn table_ids_are_dense_and_stable() {
        let mut t = InternTable::new();
        assert_eq!(t.intern_addr(ip(1)), 0);
        assert_eq!(t.intern_addr(ip(2)), 1);
        assert_eq!(t.intern_addr(ip(1)), 0, "idempotent");
        assert_eq!(t.addr(1), Some(ip(2)));
        assert_eq!(t.intern_name(&dn("a.manet")), 0);
        assert_eq!(t.intern_name(&dn("b.manet")), 1);
        assert_eq!(t.name(0), Some(&dn("a.manet")));
    }

    #[test]
    fn overflow_ids_start_past_table_range() {
        let mut t = InternTable::new();
        t.intern_addr(ip(1));
        t.intern_addr(ip(2));
        let mut i = AddrInterner::with_table(Arc::new(t));
        assert_eq!(i.id(ip(2)), 1, "shared range");
        assert_eq!(i.id(ip(50)), 2, "first overflow id");
        assert_eq!(i.id(ip(51)), 3);
        assert_eq!(i.id(ip(50)), 2, "overflow idempotent");
        assert_eq!(i.addr(3), Some(ip(51)));
        assert_eq!(i.lookup(&ip(60)), None, "lookup never interns");
    }

    #[test]
    fn distinct_unknowns_never_collide() {
        let mut i = AddrInterner::new();
        let ids: Vec<u32> = (0..100u16).map(|k| i.id(ip(k))).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }

    #[test]
    fn name_interner_roundtrip() {
        let mut t = InternTable::new();
        t.intern_name(&dn("h0.manet"));
        let mut i = NameInterner::with_table(Arc::new(t));
        assert_eq!(i.id(&dn("h0.manet")), 0);
        let late = i.id(&dn("late.manet"));
        assert_eq!(late, 1);
        assert_eq!(i.name(late), Some(&dn("late.manet")));
        assert_eq!(i.lookup(&dn("missing.manet")), None);
    }
}
