//! Plain DSR baseline — the comparison point for every security
//! experiment.
//!
//! Identical forwarding machinery (envelope source routes, route cache,
//! send buffer, RERR on link failure) but: no CGA, no signatures, no
//! verification anywhere, no credits. A `PlainDsrNode` believes any
//! RREP, any RERR, and any claimed address — which is exactly why the
//! Section 4 attacks succeed against it and fail against
//! [`crate::SecureNode`].

use crate::config::Behavior;
use crate::credit::CreditManager;
use crate::envelope::Envelope;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::intern::{AddrInterner, InternTable};
use crate::neighbor::NeighborCache;
use crate::routecache::{CachedRoute, RouteCache};
use crate::sendbuf::SendBuffer;
use crate::stats::NodeStats;
use manet_sim::{Ctx, Dir, NodeId, Protocol, SimDuration, SimTime};
use manet_wire::{Ack, Data, Ipv6Addr, Message, PlainRerr, PlainRrep, PlainRreq, RouteRecord, Seq};
use rand::Rng;
use std::any::Any;

const TAG_KIND_MASK: u64 = 0xff << 56;
const TAG_RREQ: u64 = 2 << 56;
const TAG_ACK: u64 = 3 << 56;

/// Baseline configuration (subset of the secure one).
#[derive(Clone, Debug)]
pub struct PlainConfig {
    pub rreq_timeout: SimDuration,
    pub rreq_retries: u32,
    pub ack_timeout: SimDuration,
    pub data_retries: u32,
    pub max_send_buffer: usize,
    /// Answer RREQs from cache (standard DSR route-cache replies).
    pub cached_replies: bool,
    /// Materialize a full [`NodeStats`] per node (default). Memory-diet
    /// runs (the S3 exhibit) turn this off: nodes then count nothing
    /// locally and harness aggregates come from the engine's streaming
    /// metrics counters instead.
    pub per_node_stats: bool,
}

impl Default for PlainConfig {
    fn default() -> Self {
        PlainConfig {
            rreq_timeout: SimDuration::from_millis(500),
            rreq_retries: 3,
            ack_timeout: SimDuration::from_millis(800),
            data_retries: 2,
            max_send_buffer: 64,
            cached_replies: true,
            per_node_stats: true,
        }
    }
}

struct PendingRreq {
    seq: Seq,
    attempts: u32,
    started: SimTime,
}

struct PendingAck {
    dip: Ipv6Addr,
    payload: Vec<u8>,
    retries: u32,
    #[allow(dead_code)]
    first_sent: SimTime,
}

/// The baseline node.
pub struct PlainDsrNode {
    cfg: PlainConfig,
    ip: Ipv6Addr,
    behavior: Behavior,
    neighbors: NeighborCache,
    route_cache: RouteCache,
    /// Credits object kept disabled — route selection is shortest-first.
    credits: CreditManager,
    /// Detailed per-node counters; `None` when `cfg.per_node_stats` is
    /// off (streaming-metrics mode — ~400 B per node saved at S3 scale).
    stats: Option<Box<NodeStats>>,
    next_seq: u64,
    /// Address interner for the id-keyed maps below (shared table set
    /// by the builder; standalone nodes intern into overflow).
    interner: AddrInterner,
    /// RREQ flood dedup, keyed on interned source ids.
    seen_rreqs: FxHashSet<(u32, u64)>,
    pending_rreqs: FxHashMap<Ipv6Addr, PendingRreq>,
    pending_acks: FxHashMap<u64, PendingAck>,
    send_buffer: SendBuffer<Seq>,
}

impl PlainDsrNode {
    /// A baseline node with the given (externally assigned, assumed
    /// unique) address.
    pub fn new(cfg: PlainConfig, ip: Ipv6Addr) -> Self {
        Self::with_behavior(cfg, ip, Behavior::default())
    }

    /// A baseline node with attacker switches.
    pub fn with_behavior(cfg: PlainConfig, ip: Ipv6Addr, behavior: Behavior) -> Self {
        let stats = cfg.per_node_stats.then(Box::default);
        PlainDsrNode {
            cfg,
            ip,
            behavior,
            neighbors: NeighborCache::default(),
            route_cache: RouteCache::default(),
            credits: CreditManager::new(crate::config::CreditConfig {
                enabled: false,
                ..crate::config::CreditConfig::default()
            }),
            stats,
            next_seq: 1,
            interner: AddrInterner::new(),
            seen_rreqs: FxHashSet::default(),
            pending_rreqs: FxHashMap::default(),
            pending_acks: FxHashMap::default(),
            send_buffer: SendBuffer::new(),
        }
    }

    /// Generate an address of the same shape the secure stack uses (a
    /// site-local with a random interface ID) — but with no key behind it.
    pub fn random_ip<R: Rng>(rng: &mut R) -> Ipv6Addr {
        let mut b = [0u8; 16];
        b[0] = 0xfe;
        b[1] = 0xc0;
        let iid: u64 = rng.gen();
        b[8..16].copy_from_slice(&iid.to_be_bytes());
        Ipv6Addr(b)
    }

    pub fn ip(&self) -> Ipv6Addr {
        self.ip
    }

    /// Adopt the network-wide intern table (builder-time only).
    pub fn set_intern_table(&mut self, table: std::sync::Arc<InternTable>) {
        self.interner.set_table(table.clone());
        self.neighbors.set_intern_table(table);
    }

    /// The node's detailed counters. With `per_node_stats` off this is
    /// a shared all-zero struct — read the engine's streaming metrics
    /// counters for aggregates instead.
    pub fn stats(&self) -> &NodeStats {
        static EMPTY: std::sync::OnceLock<NodeStats> = std::sync::OnceLock::new();
        self.stats
            .as_deref()
            .unwrap_or_else(|| EMPTY.get_or_init(NodeStats::default))
    }

    /// Is this node materializing detailed per-node counters?
    pub fn per_node_stats(&self) -> bool {
        self.stats.is_some()
    }

    #[inline]
    fn stat(&mut self, f: impl FnOnce(&mut NodeStats)) {
        if let Some(s) = self.stats.as_deref_mut() {
            f(s);
        }
    }

    pub fn cached_destinations(&self) -> usize {
        self.route_cache.len()
    }

    fn alloc_seq(&mut self) -> Seq {
        let s = Seq(self.next_seq);
        self.next_seq += 1;
        s
    }

    /// Application entry: send `payload` to `dip`.
    pub fn send_data(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, payload: Vec<u8>) {
        self.stat(|s| s.data_sent += 1);
        ctx.count("app.data_sent", 1);
        let seq = self.alloc_seq();
        if !self.try_send_data(ctx, seq, dip, payload.clone(), 0) {
            if self.send_buffer.len() >= self.cfg.max_send_buffer {
                self.send_buffer.drop_front();
                self.stat(|s| s.data_failed += 1);
                ctx.count("app.data_failed", 1);
            }
            self.send_buffer.push_back(dip, seq, &payload);
            self.ensure_route(ctx, dip);
        }
    }

    fn path_to(&self, now: SimTime, dip: &Ipv6Addr) -> Option<RouteRecord> {
        let r = self.route_cache.best(dip, &self.credits, now)?;
        Some(r.full_path(self.ip, *dip))
    }

    fn try_send_data(
        &mut self,
        ctx: &mut Ctx,
        seq: Seq,
        dip: Ipv6Addr,
        payload: Vec<u8>,
        retries: u32,
    ) -> bool {
        let Some(path) = self.path_to(ctx.now(), &dip) else {
            return false;
        };
        let msg = Message::Data(Data {
            sip: self.ip,
            dip,
            seq,
            route: path.clone(),
            payload: payload.clone(),
        });
        if !self.send_routed(ctx, path, msg) {
            self.route_cache.remove_dest(&dip);
            return false;
        }
        self.pending_acks.insert(
            seq.0,
            PendingAck {
                dip,
                payload,
                retries,
                first_sent: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.ack_timeout, TAG_ACK | seq.0);
        true
    }

    fn send_routed(&mut self, ctx: &mut Ctx, path: RouteRecord, msg: Message) -> bool {
        debug_assert!(path.len() >= 2);
        let next = path.0[1];
        let env = Envelope::routed(self.ip, path.clone(), msg);
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
            true
        } else if path.len() == 2 {
            self.tx(ctx, None, env);
            true
        } else {
            false
        }
    }

    fn tx(&mut self, ctx: &mut Ctx, to: Option<NodeId>, env: Envelope) {
        // Encode into a recycled frame buffer: steady-state transmit
        // allocates nothing (the buffer returns to the engine pool once
        // the frame's last receiver has been dispatched).
        let mut bytes = ctx.frame_buf();
        env.encode_into(&mut bytes);
        ctx.count("ctl.tx_msgs", 1);
        ctx.count("ctl.tx_bytes", bytes.len() as u64);
        if !matches!(env.msg, Message::Data(_) | Message::Ack(_)) {
            ctx.count("ctl.routing_bytes", bytes.len() as u64);
        }
        if ctx.tracing() {
            ctx.trace(Dir::Tx, env.msg.kind(), "");
        }
        match to {
            Some(node) => ctx.unicast(node, bytes),
            None => ctx.broadcast(bytes),
        }
    }

    fn ensure_route(&mut self, ctx: &mut Ctx, dip: Ipv6Addr) {
        if self.pending_rreqs.contains_key(&dip) {
            return;
        }
        let seq = self.alloc_seq();
        self.pending_rreqs.insert(
            dip,
            PendingRreq {
                seq,
                attempts: 1,
                started: ctx.now(),
            },
        );
        self.broadcast_rreq(ctx, dip, seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | seq.0);
    }

    fn broadcast_rreq(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, seq: Seq) {
        self.stat(|s| s.rreq_sent += 1);
        ctx.count("route.rreq_originated", 1);
        let rreq = PlainRreq {
            sip: self.ip,
            dip,
            seq,
            rr: RouteRecord::new(),
        };
        let env = Envelope::broadcast(self.ip, Message::PlainRreq(rreq));
        self.tx(ctx, None, env);
    }

    fn handle_rreq(&mut self, ctx: &mut Ctx, rreq: PlainRreq) {
        if rreq.sip == self.ip {
            return;
        }
        let sid = self.interner.id(rreq.sip);
        if !self.seen_rreqs.insert((sid, rreq.seq.0)) {
            return;
        }
        // No verification anywhere: an attacker impersonating the target
        // address simply answers (the paper's impersonation attack).
        let target = rreq.dip == self.ip || self.behavior.impersonate == Some(rreq.dip);
        if target {
            if self.behavior.impersonate == Some(rreq.dip) && rreq.dip != self.ip {
                self.stat(|s| s.atk_forged_rrep += 1);
                ctx.count("atk.impersonated_rrep", 1);
            }
            let rrep = PlainRrep {
                sip: rreq.sip,
                dip: rreq.dip,
                seq: rreq.seq,
                rr: rreq.rr.clone(),
            };
            self.stat(|s| s.rrep_sent += 1);
            ctx.count("route.rrep_sent", 1);
            let mut path = vec![rreq.dip];
            path.extend(rreq.rr.reversed().0);
            path.push(rreq.sip);
            self.send_routed(ctx, RouteRecord(path), Message::PlainRrep(rrep));
            return;
        }
        if self.behavior.forge_rrep {
            // Classic black hole: claim a one-hop route to the target.
            let mut rr = rreq.rr.clone();
            rr.push(self.ip);
            let rrep = PlainRrep {
                sip: rreq.sip,
                dip: rreq.dip,
                seq: rreq.seq,
                rr,
            };
            self.stat(|s| s.atk_forged_rrep += 1);
            ctx.count("atk.forged_rrep", 1);
            let mut path = vec![self.ip];
            path.extend(rreq.rr.reversed().0);
            path.push(rreq.sip);
            self.send_routed(ctx, RouteRecord(path), Message::PlainRrep(rrep));
            return;
        }
        if self.cfg.cached_replies {
            if let Some(cached) = self.route_cache.best(&rreq.dip, &self.credits, ctx.now()) {
                // Standard DSR cached reply: splice our cached tail onto
                // the request's recorded path. Unverifiable by design.
                let mut rr = rreq.rr.clone();
                rr.push(self.ip);
                rr.0.extend(cached.relays.iter().copied());
                let rrep = PlainRrep {
                    sip: rreq.sip,
                    dip: rreq.dip,
                    seq: rreq.seq,
                    rr,
                };
                self.stat(|s| s.crep_sent += 1);
                ctx.count("route.cached_reply", 1);
                let mut path = vec![self.ip];
                path.extend(rreq.rr.reversed().0);
                path.push(rreq.sip);
                self.send_routed(ctx, RouteRecord(path), Message::PlainRrep(rrep));
                return;
            }
        }
        let mut fwd = rreq;
        fwd.rr.push(self.ip);
        let env = Envelope::broadcast(self.ip, Message::PlainRreq(fwd));
        self.tx(ctx, None, env);
    }

    fn handle_rrep(&mut self, ctx: &mut Ctx, rrep: PlainRrep) {
        if rrep.sip != self.ip {
            return;
        }
        let Some(pending) = self.pending_rreqs.get(&rrep.dip) else {
            return;
        };
        if pending.seq != rrep.seq {
            return;
        }
        let started = pending.started;
        self.pending_rreqs.remove(&rrep.dip);
        ctx.count("route.discovered", 1);
        ctx.sample(
            "route.discovery_latency_s",
            ctx.now().since(started).as_secs_f64(),
        );
        self.route_cache.insert(
            rrep.dip,
            CachedRoute {
                relays: rrep.rr.0.clone(),
                d_proof: None,
                learned_at: ctx.now(),
            },
        );
        self.flush_buffer(ctx, rrep.dip);
    }

    fn flush_buffer(&mut self, ctx: &mut Ctx, dest: Ipv6Addr) {
        // Full-length rotation: every entry is popped once and retained
        // entries are re-pushed, so relative order is preserved exactly
        // (same observable behavior as the old take-and-requeue loop,
        // but payload spans are recycled in the buffer arena).
        for _ in 0..self.send_buffer.len() {
            let (d, seq, payload) = self.send_buffer.pop_front().expect("within len");
            if d == dest {
                if !self.try_send_data(ctx, seq, d, payload.clone(), 0) {
                    self.send_buffer.push_back(d, seq, &payload);
                }
            } else {
                self.send_buffer.push_back(d, seq, &payload);
            }
        }
    }

    fn handle_rerr(&mut self, ctx: &mut Ctx, rerr: PlainRerr) {
        // Believed unconditionally — no identity to verify (the paper's
        // forged-RERR attack surface).
        ctx.count("route.rerr_received", 1);
        self.route_cache.remove_link(self.ip, rerr.iip, rerr.i2ip);
    }

    fn handle_data(&mut self, ctx: &mut Ctx, data: Data) {
        self.stat(|s| s.data_received += 1);
        ctx.count("app.data_received", 1);
        let path = data.route.reversed();
        let ack = Ack {
            sip: data.sip,
            dip: data.dip,
            seq: data.seq,
            route: data.route,
        };
        if path.len() >= 2 {
            self.send_routed(ctx, path, Message::Ack(ack));
        }
    }

    fn handle_ack(&mut self, ctx: &mut Ctx, ack: Ack) {
        if self.pending_acks.remove(&ack.seq.0).is_some() {
            self.stat(|s| s.data_acked += 1);
            ctx.count("app.data_acked", 1);
        }
    }

    fn forward(&mut self, ctx: &mut Ctx, mut env: Envelope) {
        let idx = env.sr_index as usize;
        if let Message::Data(_) = env.msg {
            if self.behavior.data_drop_prob > 0.0
                && ctx.rng().gen::<f64>() < self.behavior.data_drop_prob
            {
                self.stat(|s| s.atk_data_dropped += 1);
                ctx.count("atk.data_dropped", 1);
                return;
            }
        }
        let path = env.source_route.as_ref().expect("routed");
        let next = path.0[idx + 1];
        let at_last_hop = idx + 1 == path.len() - 1;
        env.sr_index += 1;
        env.src_ip = self.ip;
        let is_data = matches!(env.msg, Message::Data(_));
        ctx.count("route.forwarded", 1);
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
        } else if at_last_hop {
            self.tx(ctx, None, env);
        } else {
            self.neighbors.forget(&next);
            if is_data {
                let path = env.source_route.take().expect("routed");
                self.originate_rerr(ctx, &path, idx, next);
            }
        }
    }

    fn originate_rerr(&mut self, ctx: &mut Ctx, path: &RouteRecord, my_idx: usize, next: Ipv6Addr) {
        let rerr = PlainRerr {
            iip: self.ip,
            i2ip: next,
        };
        self.stat(|s| s.rerr_sent += 1);
        ctx.count("route.rerr_sent", 1);
        let back: Vec<Ipv6Addr> = path.0[..=my_idx].iter().rev().copied().collect();
        if back.len() >= 2 {
            self.send_routed(ctx, RouteRecord(back), Message::PlainRerr(rerr));
        }
    }

    fn on_rreq_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        // lint: allow(unordered-iter) — seq is unique across pending entries; .find hits at most one
        let Some((&dip, _)) = self.pending_rreqs.iter().find(|(_, p)| p.seq.0 == seq) else {
            return;
        };
        let pending = self.pending_rreqs.get_mut(&dip).expect("found");
        if pending.attempts >= self.cfg.rreq_retries {
            self.pending_rreqs.remove(&dip);
            let dropped = self.send_buffer.remove_dest(dip) as u64;
            self.stat(|s| s.data_failed += dropped);
            ctx.count("app.data_failed", dropped);
            return;
        }
        pending.attempts += 1;
        let new_seq = Seq(self.next_seq);
        self.next_seq += 1;
        self.pending_rreqs.get_mut(&dip).expect("present").seq = new_seq;
        self.broadcast_rreq(ctx, dip, new_seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | new_seq.0);
    }

    fn on_ack_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some(pending) = self.pending_acks.remove(&seq) else {
            return;
        };
        ctx.count("app.ack_timeouts", 1);
        if pending.retries < self.cfg.data_retries {
            if self.try_send_data(
                ctx,
                Seq(seq),
                pending.dip,
                pending.payload.clone(),
                pending.retries + 1,
            ) {
                return;
            }
            let dip = pending.dip;
            self.send_buffer.push_back(dip, Seq(seq), &pending.payload);
            self.ensure_route(ctx, dip);
            return;
        }
        self.stat(|s| s.data_failed += 1);
        ctx.count("app.data_failed", 1);
    }
}

impl Protocol for PlainDsrNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // No DAD, no keys: plain DSR assumes pre-assigned unique addresses.
        self.stat(|s| s.joined_at = Some(ctx.now()));
    }

    fn on_frame(&mut self, ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
        // Duplicate-flood fast path: in a dense RREQ flood most
        // receptions are copies of a request this node already relayed
        // (or its own request echoed back). Those need the neighbor
        // learned and nothing else — skip the route-record allocation
        // the full decode would do. The peek validates the layout as
        // strictly as `decode`, so malformed frames still fall through
        // to the counting path below.
        if let Some((src_ip, h)) = Envelope::peek_broadcast_rreq(bytes) {
            // A source never interned cannot be in `seen_rreqs`, so the
            // non-mutating lookup keeps the fast path allocation-free.
            if h.sip == self.ip
                || self
                    .interner
                    .lookup(&h.sip)
                    .is_some_and(|sid| self.seen_rreqs.contains(&(sid, h.seq.0)))
            {
                self.neighbors.learn(src_ip, src, ctx.now());
                return;
            }
        }
        let Ok(env) = Envelope::decode(bytes) else {
            ctx.count("rx.malformed", 1);
            return;
        };
        self.neighbors.learn(env.src_ip, src, ctx.now());
        match env.source_route {
            Some(_) => {
                let Some(cur) = env.current_hop() else {
                    return;
                };
                // An impersonator also answers to its claimed address —
                // in plain DSR nothing stops it.
                if cur != self.ip && self.behavior.impersonate != Some(cur) {
                    return;
                }
                if env.at_final_hop() {
                    match env.msg {
                        Message::PlainRrep(r) => self.handle_rrep(ctx, r),
                        Message::PlainRerr(r) => self.handle_rerr(ctx, r),
                        Message::Data(d) => self.handle_data(ctx, d),
                        Message::Ack(a) => self.handle_ack(ctx, a),
                        _ => ctx.count("rx.unexpected_routed", 1),
                    }
                } else {
                    self.forward(ctx, env);
                }
            }
            None => match env.msg {
                Message::PlainRreq(r) => self.handle_rreq(ctx, r),
                _ => ctx.count("rx.unexpected_flood", 1),
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, tag: u64) {
        match tag & TAG_KIND_MASK {
            TAG_RREQ => self.on_rreq_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_ACK => self.on_ack_timer(ctx, tag & !TAG_KIND_MASK),
            _ => {}
        }
    }

    fn on_link_failure(&mut self, ctx: &mut Ctx, _to: NodeId, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            return;
        };
        let Some(path) = env.source_route.clone() else {
            return;
        };
        let Some(next) = env.current_hop() else {
            return;
        };
        self.neighbors.forget(&next);
        self.route_cache.remove_link(self.ip, self.ip, next);
        if matches!(env.msg, Message::Data(_)) && path.0.first() != Some(&self.ip) {
            let my_idx = (env.sr_index as usize).saturating_sub(1);
            self.originate_rerr(ctx, &path, my_idx, next);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn random_ip_is_site_local_shaped() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let a = PlainDsrNode::random_ip(&mut rng);
        let b = PlainDsrNode::random_ip(&mut rng);
        assert!(a.is_site_local());
        assert_ne!(a, b);
    }

    #[test]
    fn node_reports_its_address() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let ip = PlainDsrNode::random_ip(&mut rng);
        let n = PlainDsrNode::new(PlainConfig::default(), ip);
        assert_eq!(n.ip(), ip);
        assert_eq!(n.stats().data_sent, 0);
    }
}
