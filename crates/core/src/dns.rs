//! The DNS server role (Sections 3.1–3.2): the MANET's only security
//! infrastructure.
//!
//! The server keeps the committed name table, holds registrations from
//! AREQ floods pending for a warning window, answers resolution queries
//! with signed replies, and runs the challenge/response IP-change flow.
//! [`DnsState`] is the data; the protocol handlers live in the
//! `impl SecureNode` block below so they can reuse the node's routing
//! machinery and its security pipeline (`node::verify`).

use crate::fxhash::FxHashMap;
use crate::node::SecureNode;
use manet_sim::{Ctx, Dir, SimTime};
use manet_wire::{
    cga, sigdata, Arep, Areq, Challenge, DnsQuery, DnsReply, DomainName, Drep, IpChangeProof,
    IpChangeRequest, IpChangeResult, Ipv6Addr, Message, RouteRecord,
};
use rand::Rng;

const TAG_DNS_PENDING: u64 = 4 << 56;

/// A registration captured from an AREQ, held open for warning AREPs.
#[derive(Debug, Clone)]
pub struct PendingRegistration {
    pub id: u64,
    pub dn: Option<DomainName>,
    pub sip: Ipv6Addr,
    /// The challenge S put in its AREQ — the key to verifying any
    /// warning AREP about this address ("the DNS should keep a copy of
    /// the ch … for a while").
    pub ch: Challenge,
    /// The AREQ's route record, kept so a commit-time DREP can be routed
    /// back to the claimant.
    pub rr: manet_wire::RouteRecord,
    pub received_at: SimTime,
}

/// An outstanding IP-change challenge.
#[derive(Debug, Clone)]
struct IpChangeSession {
    ch: Challenge,
    old_ip: Ipv6Addr,
    new_ip: Ipv6Addr,
}

/// DNS server state.
#[derive(Debug, Default)]
pub struct DnsState {
    /// Committed name → address entries (pre-registered + FCFS online).
    names: FxHashMap<DomainName, Ipv6Addr>,
    /// Pending registrations by claimed address.
    pending: FxHashMap<Ipv6Addr, PendingRegistration>,
    next_pending_id: u64,
    /// IP-change sessions by domain name.
    ip_changes: FxHashMap<DomainName, IpChangeSession>,
    // Counters for harness inspection.
    pub committed_online: u64,
    pub cancelled_by_warning: u64,
    pub conflicts_rejected: u64,
    pub queries_answered: u64,
    pub ip_changes_accepted: u64,
    pub ip_changes_rejected: u64,
}

impl DnsState {
    /// Start with the pre-registered permanent entries.
    pub fn new(pre_registered: Vec<(DomainName, Ipv6Addr)>) -> Self {
        DnsState {
            names: pre_registered.into_iter().collect(),
            ..Default::default()
        }
    }

    /// Look up a committed name.
    pub fn lookup(&self, dn: &DomainName) -> Option<Ipv6Addr> {
        self.names.get(dn).copied()
    }

    /// Install a permanent entry (pre-network-formation registration).
    pub fn preregister(&mut self, dn: DomainName, ip: Ipv6Addr) {
        self.names.insert(dn, ip);
    }

    /// Number of committed entries.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// Is a registration for `sip` pending?
    pub fn is_pending(&self, sip: &Ipv6Addr) -> bool {
        self.pending.contains_key(sip)
    }

    /// The stored challenge of a pending registration, if one exists —
    /// read-only peek for the speculative prefetch pass (the warning-AREP
    /// verification payload is built from it).
    pub(crate) fn pending_challenge(&self, sip: &Ipv6Addr) -> Option<Challenge> {
        self.pending.get(sip).map(|p| p.ch)
    }

    /// Read-only peek at a live IP-change session: `(ch, old_ip,
    /// new_ip)`. Same prefetch purpose as [`Self::pending_challenge`].
    pub(crate) fn ip_change_session(
        &self,
        dn: &DomainName,
    ) -> Option<(Challenge, Ipv6Addr, Ipv6Addr)> {
        self.ip_changes.get(dn).map(|s| (s.ch, s.old_ip, s.new_ip))
    }

    /// Does `dn` already belong to a *committed* different address?
    ///
    /// Pending claims deliberately do not conflict here: concurrent
    /// pendings race to their commit timers, and the loser is rejected
    /// at commit time (first-come-first-serve by commit order). Checking
    /// pendings immediately would mis-reject a host whose first claim is
    /// about to be cancelled by a duplicate-address warning.
    fn name_conflicts(&self, dn: &DomainName, sip: &Ipv6Addr) -> bool {
        matches!(self.names.get(dn), Some(owner) if owner != sip)
    }
}

impl SecureNode {
    /// DNS-side AREQ processing (Section 3.1 + 6DNAR): reject conflicting
    /// names with a signed DREP, otherwise hold the registration pending
    /// the warning window.
    pub(crate) fn dns_on_areq(&mut self, ctx: &mut Ctx, areq: &Areq) {
        let conflicts = {
            let dns = self.dns.as_ref().expect("dns role");
            match &areq.dn {
                Some(dn) => dns.name_conflicts(dn, &areq.sip),
                None => false,
            }
        };
        if conflicts {
            let dn = areq.dn.clone().expect("conflict implies a name");
            self.send_drep(ctx, &dn, areq.ch, &areq.rr, areq.sip);
            return;
        }
        // Hold the (name, address, challenge) open for the warning window.
        let window = self.cfg.dns_pending_window;
        let now = ctx.now();
        let dns = self.dns.as_mut().expect("dns role");
        let id = dns.next_pending_id;
        dns.next_pending_id += 1;
        dns.pending.insert(
            areq.sip,
            PendingRegistration {
                id,
                dn: areq.dn.clone(),
                sip: areq.sip,
                ch: areq.ch,
                rr: areq.rr.clone(),
                received_at: now,
            },
        );
        ctx.count("dns.pending_opened", 1);
        ctx.set_timer(window, TAG_DNS_PENDING | id);
    }

    /// `DREP(SIP, RR, [DN, ch]NSK)` back to the claimant.
    fn send_drep(
        &mut self,
        ctx: &mut Ctx,
        dn: &DomainName,
        ch: manet_wire::Challenge,
        rr: &RouteRecord,
        sip: Ipv6Addr,
    ) {
        let sig = self.ident.sign(&sigdata::drep(dn, ch));
        let drep = Drep {
            sip,
            rr: rr.clone(),
            sig,
        };
        self.stats.drep_sent += 1;
        ctx.count("dns.drep_sent", 1);
        ctx.trace(Dir::Note, "DNS", format!("name {} already taken", dn));
        let mut path = vec![self.ident.ip()];
        path.extend(rr.reversed().0);
        path.push(sip);
        self.send_routed(ctx, RouteRecord(path), Message::Drep(drep));
        self.dns.as_mut().expect("dns role").conflicts_rejected += 1;
    }

    /// Commit a pending registration whose warning window elapsed. A
    /// concurrent claimant that lost the commit race gets its DREP here.
    pub(crate) fn dns_on_pending_timer(&mut self, ctx: &mut Ctx, id: u64) {
        let dns = self.dns.as_mut().expect("dns role");
        let Some(sip) = dns
            .pending
            // lint: allow(unordered-iter) — id is unique across pending entries; .find hits at most one
            .iter()
            .find(|(_, p)| p.id == id)
            .map(|(sip, _)| *sip)
        else {
            return; // cancelled by a warning AREP
        };
        let reg = dns.pending.remove(&sip).expect("just found");
        let Some(dn) = reg.dn else {
            return; // address-only registration: nothing to commit
        };
        if dns.name_conflicts(&dn, &sip) {
            // Someone else committed this name while we were pending.
            self.send_drep(ctx, &dn, reg.ch, &reg.rr, sip);
            return;
        }
        let dns = self.dns.as_mut().expect("dns role");
        dns.names.insert(dn.clone(), sip);
        dns.committed_online += 1;
        ctx.count("dns.names_committed", 1);
        ctx.trace(Dir::Note, "DNS", format!("committed {} → {}", dn, sip));
    }

    /// A warning AREP arrived (a host detected that `arep.sip` is a
    /// duplicate): verify it against the stored challenge and cancel the
    /// pending registration.
    pub(crate) fn dns_on_warning_arep(&mut self, ctx: &mut Ctx, arep: &Arep) {
        let Some(reg) = self
            .dns
            .as_ref()
            .expect("dns role")
            .pending
            .get(&arep.sip)
            .cloned()
        else {
            return; // nothing pending for that address
        };
        // Same two checks as the host side runs, against the stored ch.
        if self
            .check_proof(
                ctx,
                &arep.sip,
                &sigdata::arep(&arep.sip, reg.ch),
                &arep.proof,
            )
            .is_err()
        {
            self.stats.rejected_arep += 1;
            ctx.count("sec.dns_warning_rejected", 1);
            ctx.trace(Dir::Drop, "AREP", "invalid duplicate warning at DNS");
            return;
        }
        let sip = arep.sip;
        self.dns_cancel_pending(ctx, &sip);
    }

    /// Remove a pending registration (verified duplicate).
    pub(crate) fn dns_cancel_pending(&mut self, ctx: &mut Ctx, sip: &Ipv6Addr) {
        let dns = self.dns.as_mut().expect("dns role");
        if dns.pending.remove(sip).is_some() {
            dns.cancelled_by_warning += 1;
            ctx.count("dns.reg_cancelled", 1);
            ctx.trace(
                Dir::Note,
                "DNS",
                format!("registration for {} cancelled", sip),
            );
        }
    }

    /// Answer a resolution query with a signed reply (Section 3.2).
    pub(crate) fn dns_on_query(&mut self, ctx: &mut Ctx, q: DnsQuery, path: &RouteRecord) {
        let answer = self.dns.as_ref().expect("dns role").lookup(&q.qname);
        let sig = self
            .ident
            .sign(&sigdata::dns_reply(&q.qname, answer.as_ref(), q.ch));
        let reply = DnsReply {
            requester: q.requester,
            qname: q.qname,
            answer,
            sig,
            route: path.reversed(),
        };
        self.dns.as_mut().expect("dns role").queries_answered += 1;
        ctx.count("dns.queries_answered", 1);
        let back = path.reversed();
        if back.len() >= 2 {
            self.send_routed(ctx, back, Message::DnsReply(reply));
        }
    }

    /// Step 2 of the IP-change flow: issue a challenge (Section 3.2).
    pub(crate) fn dns_on_ip_change_request(
        &mut self,
        ctx: &mut Ctx,
        req: IpChangeRequest,
        path: &RouteRecord,
    ) {
        // Only challenge requests that could possibly succeed; anything
        // else is noise (the proof step re-checks everything anyway).
        let plausible = self
            .dns
            .as_ref()
            .expect("dns role")
            .lookup(&req.dn)
            .map(|owner| owner == req.old_ip)
            .unwrap_or(false);
        if !plausible {
            ctx.count("dns.ip_change_implausible", 1);
            return;
        }
        let ch = Challenge(ctx.rng().gen());
        self.dns.as_mut().expect("dns role").ip_changes.insert(
            req.dn.clone(),
            IpChangeSession {
                ch,
                old_ip: req.old_ip,
                new_ip: req.new_ip,
            },
        );
        let chal = Message::IpChangeChallenge(manet_wire::IpChangeChallenge {
            dn: req.dn,
            ch,
            route: path.reversed(),
        });
        let back = path.reversed();
        if back.len() >= 2 {
            self.send_routed(ctx, back, chal);
        }
    }

    /// Step 4: verify the proof and switch the mapping (Section 3.2).
    ///
    /// Accepting requires *all* of: a live session, matching addresses,
    /// CGA ownership of the old address (`H(PK, old_rn)`), CGA validity
    /// of the new one (`H(PK, new_rn)`), and the challenge signature
    /// `[XIP, X'IP, ch]XSK` under the presented key.
    pub(crate) fn dns_on_ip_change_proof(
        &mut self,
        ctx: &mut Ctx,
        proof: IpChangeProof,
        path: &RouteRecord,
    ) {
        let Some(session) = self
            .dns
            .as_ref()
            .expect("dns role")
            .ip_changes
            .get(&proof.dn)
            .cloned()
        else {
            return;
        };
        let accepted = session.old_ip == proof.old_ip
            && session.new_ip == proof.new_ip
            && cga::verify(&proof.old_ip, &proof.pk, proof.old_rn).is_ok()
            && cga::verify(&proof.new_ip, &proof.pk, proof.new_rn).is_ok()
            && self
                .check_known_key(
                    ctx,
                    &proof.pk,
                    &sigdata::ip_change(&proof.old_ip, &proof.new_ip, session.ch),
                    &proof.sig,
                )
                .is_ok();
        {
            let dns = self.dns.as_mut().expect("dns role");
            dns.ip_changes.remove(&proof.dn);
            if accepted {
                dns.names.insert(proof.dn.clone(), proof.new_ip);
                dns.ip_changes_accepted += 1;
                ctx.count("dns.ip_changes_accepted", 1);
            } else {
                dns.ip_changes_rejected += 1;
                ctx.count("dns.ip_changes_rejected", 1);
            }
        }
        let sig = self
            .ident
            .sign(&sigdata::ip_change_result(&proof.dn, accepted, session.ch));
        let res = Message::IpChangeResult(IpChangeResult {
            dn: proof.dn,
            accepted,
            sig,
            route: path.reversed(),
        });
        let back = path.reversed();
        if back.len() >= 2 {
            self.send_routed(ctx, back, res);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn dn(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    #[test]
    fn preregistered_names_resolve() {
        let st = DnsState::new(vec![(dn("server.manet"), ip(9))]);
        assert_eq!(st.lookup(&dn("server.manet")), Some(ip(9)));
        assert_eq!(st.lookup(&dn("other.manet")), None);
        assert_eq!(st.name_count(), 1);
    }

    #[test]
    fn committed_name_conflicts_for_other_address() {
        let st = DnsState::new(vec![(dn("a"), ip(1))]);
        assert!(st.name_conflicts(&dn("a"), &ip(2)));
        assert!(!st.name_conflicts(&dn("a"), &ip(1)), "re-announce is fine");
        assert!(!st.name_conflicts(&dn("b"), &ip(2)));
    }

    #[test]
    fn pending_claims_defer_conflict_to_commit_time() {
        let mut st = DnsState::new(Vec::new());
        st.pending.insert(
            ip(1),
            PendingRegistration {
                id: 0,
                dn: Some(dn("x")),
                sip: ip(1),
                ch: Challenge(5),
                rr: manet_wire::RouteRecord::new(),
                received_at: SimTime::ZERO,
            },
        );
        // Pending claims do not conflict immediately — the commit timer
        // decides first-come-first-serve (see name_conflicts docs).
        assert!(!st.name_conflicts(&dn("x"), &ip(2)));
        assert!(st.is_pending(&ip(1)));
        // Once committed, the name is taken.
        st.names.insert(dn("x"), ip(1));
        assert!(st.name_conflicts(&dn("x"), &ip(2)));
        assert!(!st.name_conflicts(&dn("x"), &ip(1)));
    }
}
