//! Attacker models — Section 4 of the paper, made executable.
//!
//! Each constructor returns a [`Behavior`] whose switches make a node
//! mount one of the attacks the paper analyses. Handing such a behavior
//! to [`crate::SecureNode::with_behavior`] or
//! [`crate::PlainDsrNode::with_behavior`] yields an attacker that speaks
//! byte-identical wire formats: whatever stops it is cryptography, not
//! incompatibility.
//!
//! | Paper's attack (§4) | Behavior | Secure-stack outcome |
//! |---|---|---|
//! | Black hole | [`black_hole`] | Forged RREPs fail CGA; drops show as ack timeouts → credits shift routes away |
//! | Impersonation | [`impersonator`] | RREPs claiming the victim's address fail the `H(PK, rn)` check |
//! | Replayed AREP/RREP | [`replayer`] | Stale challenge / sequence binding fails verification |
//! | Forged RERR | [`rerr_forger`] | Signed self-reports pass but cross the frequency threshold → slashed |
//! | DNS impersonation | [`dns_impersonator`] | Forged replies fail the known-DNS-key check |
//! | Address squatting (DAD denial) | [`dad_squatter`] | AREPs without the matching private key are rejected; the joiner keeps its address |
//! | Grey hole | [`grey_hole`] | Partial drops accumulate timeout penalties |

use crate::config::Behavior;
use manet_wire::Ipv6Addr;

/// Black hole: attract routes by forging RREPs, then swallow all data.
pub fn black_hole() -> Behavior {
    Behavior {
        data_drop_prob: 1.0,
        forge_rrep: true,
        ..Behavior::default()
    }
}

/// A quieter black hole that does not forge routes — it participates
/// honestly in the control plane (which a secure attacker *can* do, since
/// it owns a valid identity) and silently drops data it relays. This is
/// the variant the credit system exists for.
pub fn data_dropper() -> Behavior {
    Behavior {
        data_drop_prob: 1.0,
        ..Behavior::default()
    }
}

/// Grey hole: drop a fraction of relayed data.
pub fn grey_hole(drop_prob: f64) -> Behavior {
    assert!((0.0..=1.0).contains(&drop_prob));
    Behavior {
        data_drop_prob: drop_prob,
        ..Behavior::default()
    }
}

/// Impersonation: answer route requests claiming to be `victim`.
pub fn impersonator(victim: Ipv6Addr) -> Behavior {
    Behavior {
        forge_rrep: true,
        impersonate: Some(victim),
        data_drop_prob: 1.0,
        ..Behavior::default()
    }
}

/// Replay: capture AREP/RREP messages and replay them into later
/// protocol runs.
pub fn replayer() -> Behavior {
    Behavior {
        replay: true,
        ..Behavior::default()
    }
}

/// Forged/spammed RERR: report links broken after forwarding on them.
pub fn rerr_forger() -> Behavior {
    Behavior {
        rerr_spam: true,
        ..Behavior::default()
    }
}

/// DNS impersonation: answer relayed DNS queries with forged replies.
pub fn dns_impersonator() -> Behavior {
    Behavior {
        forge_dns: true,
        ..Behavior::default()
    }
}

/// Address squatting: claim every address announced in DAD, attempting
/// to deny newcomers an address.
pub fn dad_squatter() -> Behavior {
    Behavior {
        squat_dad: true,
        ..Behavior::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_flip_expected_switches() {
        assert!(black_hole().forge_rrep);
        assert_eq!(black_hole().data_drop_prob, 1.0);
        assert!(!data_dropper().forge_rrep);
        assert_eq!(grey_hole(0.5).data_drop_prob, 0.5);
        assert!(replayer().replay);
        assert!(rerr_forger().rerr_spam);
        assert!(dns_impersonator().forge_dns);
        assert!(dad_squatter().squat_dad);
    }

    #[test]
    fn impersonator_targets_victim() {
        let v = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 1]);
        let b = impersonator(v);
        assert_eq!(b.impersonate, Some(v));
        assert!(!b.is_honest());
    }

    #[test]
    #[should_panic]
    fn grey_hole_rejects_bad_probability() {
        grey_hole(1.5);
    }
}
