//! Deterministic Fx hashing for the protocol layer's hot maps.
//!
//! The canonical implementation lives in [`manet_sim::fxhash`] (the
//! lowest crate both the engine and the protocol layer can see); this
//! module re-exports it so protocol code keeps its established
//! `crate::fxhash::FxHashMap` paths, now `pub` so downstream users of
//! `manet-secure` can name the same deterministic map types.

pub use manet_sim::fxhash::{FxHashMap, FxHashSet, FxHasher};
