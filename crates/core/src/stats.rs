//! Per-node statistics, readable by harnesses after a run via
//! [`manet_sim::Engine::protocol_as`].

use crate::fxhash::FxHashMap;
use manet_sim::SimTime;
use manet_wire::{DomainName, Ipv6Addr};
use std::collections::VecDeque;

/// Default bound on the per-node resolved-name cache.
pub const RESOLVED_CACHE_CAP: usize = 256;

/// A bounded name → answer map with deterministic oldest-entry
/// eviction.
///
/// The per-node `resolved` map used to grow without bound for the life
/// of the node — at S3 scale that is one live allocation per name ever
/// resolved, per node. This caps it: inserting a fresh name past the
/// cap evicts the *oldest inserted* entry (insertion order, not hash
/// order, so eviction is identical on every run and platform).
/// Re-resolving a cached name updates the answer in place without
/// refreshing its age.
#[derive(Debug, Clone)]
pub struct ResolvedCache {
    cap: usize,
    map: FxHashMap<DomainName, Option<Ipv6Addr>>,
    /// Names in insertion order; front = oldest = next to evict.
    order: VecDeque<DomainName>,
}

impl Default for ResolvedCache {
    fn default() -> Self {
        Self::new(RESOLVED_CACHE_CAP)
    }
}

impl ResolvedCache {
    pub fn new(cap: usize) -> Self {
        ResolvedCache {
            cap: cap.max(1),
            map: FxHashMap::default(),
            order: VecDeque::new(),
        }
    }

    /// Record an answer (`None` = authenticated NXDOMAIN), evicting the
    /// oldest entry if a fresh name would exceed the cap.
    pub fn insert(&mut self, name: DomainName, answer: Option<Ipv6Addr>) {
        if let Some(slot) = self.map.get_mut(&name) {
            *slot = answer;
            return;
        }
        if self.map.len() >= self.cap {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(name.clone());
        self.map.insert(name, answer);
    }

    /// The cached answer for `name`, if still resident.
    pub fn get(&self, name: &DomainName) -> Option<&Option<Ipv6Addr>> {
        self.map.get(name)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Everything a node counts about its own behaviour.
#[derive(Debug, Default, Clone)]
pub struct NodeStats {
    // --- bootstrap ---
    /// DAD rounds run (1 = first address stuck).
    pub dad_attempts: u32,
    /// When the address was confirmed and the node became operational.
    pub joined_at: Option<SimTime>,
    /// Genuine address collisions detected (valid AREP received).
    pub collisions_detected: u32,
    /// Name conflicts reported by the DNS (valid DREP received).
    pub name_conflicts: u32,

    // --- application data ---
    pub data_sent: u64,
    pub data_acked: u64,
    pub data_failed: u64,
    /// Data packets received as final destination.
    pub data_received: u64,

    // --- control traffic originated ---
    pub areq_sent: u64,
    pub arep_sent: u64,
    pub drep_sent: u64,
    pub rreq_sent: u64,
    pub rrep_sent: u64,
    pub crep_sent: u64,
    pub rerr_sent: u64,

    // --- security verdicts (messages rejected by verification) ---
    pub rejected_arep: u64,
    pub rejected_drep: u64,
    pub rejected_rreq: u64,
    pub rejected_rrep: u64,
    pub rejected_crep: u64,
    pub rejected_rerr: u64,
    pub rejected_dns_reply: u64,

    // --- attacker-side counters (zero on honest nodes) ---
    pub atk_data_dropped: u64,
    pub atk_forged_rrep: u64,
    pub atk_forged_arep: u64,
    pub atk_replayed: u64,
    pub atk_forged_dns: u64,
    pub atk_spam_rerr: u64,

    // --- crypto pipeline (node::verify) ---
    /// RSA verifications actually executed (cache misses + uncached
    /// runs; CGA short-circuits are excluded — no RSA ran for those).
    pub crypto_verify_attempted: u64,
    /// Verification verdicts served from the verify cache.
    pub crypto_verify_cached: u64,
    /// Pipeline checks that rejected their input: bad CGA (counted only
    /// here) or bad signature (also counted under attempted/cached).
    pub crypto_verify_failed: u64,

    // --- route probing (Section 3.4 extension) ---
    /// Probes launched after persistent ack timeouts.
    pub probes_sent: u64,
    /// Per-hop probe acknowledgements we produced as a relay.
    pub probe_acks_sent: u64,
    /// Hops this node localized as packet-swallowing suspects.
    pub probe_suspects: Vec<Ipv6Addr>,
    /// Probes whose hops all acknowledged (no suspect — an evader or a
    /// transient fault).
    pub probes_inconclusive: u64,

    // --- DNS client ---
    /// Answers received for [`crate::node::SecureNode::resolve`] calls,
    /// keyed by name (`None` = authenticated NXDOMAIN). Bounded:
    /// inserting past [`RESOLVED_CACHE_CAP`] evicts the oldest entry.
    pub resolved: ResolvedCache,
    /// Outcome of the last IP-change attempt.
    pub ip_change_accepted: Option<bool>,
}

impl NodeStats {
    /// Fraction of verification verdicts served from the cache, if any
    /// verdict was produced at all.
    pub fn crypto_cache_hit_rate(&self) -> Option<f64> {
        let total = self.crypto_verify_attempted + self.crypto_verify_cached;
        (total > 0).then(|| self.crypto_verify_cached as f64 / total as f64)
    }

    /// Sum of all rejected-message counters — the node's evidence of
    /// attack traffic.
    pub fn total_rejected(&self) -> u64 {
        self.rejected_arep
            + self.rejected_drep
            + self.rejected_rreq
            + self.rejected_rrep
            + self.rejected_crep
            + self.rejected_rerr
            + self.rejected_dns_reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_rejected_sums_all_kinds() {
        let s = NodeStats {
            rejected_arep: 1,
            rejected_rrep: 2,
            rejected_dns_reply: 4,
            ..NodeStats::default()
        };
        assert_eq!(s.total_rejected(), 7);
    }

    fn dn(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    #[test]
    fn resolved_cache_evicts_oldest_insertion() {
        let mut c = ResolvedCache::new(2);
        c.insert(dn("a"), Some(ip(1)));
        c.insert(dn("b"), None);
        c.insert(dn("c"), Some(ip(3)));
        assert_eq!(c.get(&dn("a")), None, "oldest entry evicted");
        assert_eq!(c.get(&dn("b")), Some(&None));
        assert_eq!(c.get(&dn("c")), Some(&Some(ip(3))));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn resolved_cache_update_in_place_keeps_age() {
        let mut c = ResolvedCache::new(2);
        c.insert(dn("a"), None);
        c.insert(dn("b"), None);
        // Re-resolving "a" updates the answer but not its age...
        c.insert(dn("a"), Some(ip(9)));
        assert_eq!(c.get(&dn("a")), Some(&Some(ip(9))));
        // ...so it is still the first out when "c" arrives.
        c.insert(dn("c"), None);
        assert_eq!(c.get(&dn("a")), None);
        assert_eq!(c.get(&dn("b")), Some(&None));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn resolved_cache_stays_bounded_under_churn() {
        let mut c = ResolvedCache::new(4);
        for i in 0..100u32 {
            c.insert(dn(&format!("n{i}")), Some(ip(i as u16)));
        }
        assert_eq!(c.len(), 4);
        // Exactly the 4 newest survive.
        for i in 96..100u32 {
            assert!(c.get(&dn(&format!("n{i}"))).is_some());
        }
        assert_eq!(c.get(&dn("n95")), None);
    }
}
