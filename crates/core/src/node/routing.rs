//! Secure DSR route discovery and maintenance (Sections 3.3–3.4):
//! RREQ floods with per-hop identity proofs, signed RREP/CREP replies,
//! signed RERRs, and the route-integrity probe extension.

use super::{PendingProbe, PendingRreq, SecureNode, TAG_ROUTE_PROBE, TAG_RREQ};
use crate::envelope::Envelope;
use crate::fxhash::FxHashSet;
use crate::routecache::CachedRoute;
use manet_sim::{Ctx, Dir};
use manet_wire::{sigdata, Crep, Ipv6Addr, Message, Rerr, RouteRecord, Rrep, Rreq, Seq, SrrEntry};

impl SecureNode {
    /// Start (or keep) a route discovery toward `dip`.
    pub(crate) fn ensure_route(&mut self, ctx: &mut Ctx, dip: Ipv6Addr) {
        if !self.is_ready() || self.pending_rreqs.contains_key(&dip) {
            return;
        }
        let seq = self.alloc_seq();
        self.pending_rreqs.insert(
            dip,
            PendingRreq {
                seq,
                attempts: 1,
                started: ctx.now(),
            },
        );
        self.broadcast_rreq(ctx, dip, seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | seq.0);
    }

    fn broadcast_rreq(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, seq: Seq) {
        let sip = self.ident.ip();
        let src_proof = self.ident.prove(&sigdata::rreq_src(&sip, seq));
        let rreq = Rreq {
            sip,
            dip,
            seq,
            srr: manet_wire::SecureRouteRecord::new(),
            src_proof,
        };
        self.stats.rreq_sent += 1;
        ctx.count("route.rreq_originated", 1);
        let env = Envelope::broadcast(sip, Message::Rreq(rreq));
        self.tx(ctx, None, env);
    }

    pub(super) fn handle_rreq(&mut self, ctx: &mut Ctx, rreq: Rreq) {
        if !self.is_ready() {
            return;
        }
        if rreq.sip == self.ident.ip() {
            return; // our own flood echoed back
        }
        ctx.trace(
            Dir::Rx,
            "RREQ",
            format!(
                "{}→{} seq={} hops={}",
                rreq.sip,
                rreq.dip,
                rreq.seq.0,
                rreq.srr.len()
            ),
        );

        if self.is_my_addr(&rreq.dip) {
            // Answer several copies (arriving over distinct paths) so the
            // source gets route diversity to select among.
            let sid = self.interner.id(rreq.sip);
            let n = self.answered_rreqs.entry((sid, rreq.seq.0)).or_insert(0);
            if *n >= self.cfg.rrep_multi {
                return;
            }
            *n += 1;
            self.answer_rreq(ctx, rreq);
            return;
        }
        let sid = self.interner.id(rreq.sip);
        if !self.seen_rreqs.insert((sid, rreq.seq.0)) {
            return;
        }

        if self.behavior.forge_rrep {
            self.forge_rrep(ctx, &rreq);
            return; // attracts the route; no honest relaying
        }

        if self.behavior.replay {
            if let Some(old) = self
                .observed_rreps
                .iter()
                .find(|r| r.dip == rreq.dip)
                .cloned()
            {
                // Splice the captured proof onto the new request: the
                // destination signature covers (old sip, old seq, old rr)
                // so the verifier must reject it.
                self.stats.atk_replayed += 1;
                ctx.count("atk.replayed_rrep", 1);
                let forged = Rrep {
                    sip: rreq.sip,
                    dip: old.dip,
                    seq: rreq.seq,
                    rr: old.rr.clone(),
                    proof: old.proof.clone(),
                };
                let mut path = vec![self.ident.ip()];
                path.extend(rreq.srr.to_route_record().reversed().0);
                path.push(rreq.sip);
                self.send_routed(ctx, RouteRecord(path), Message::Rrep(forged));
            }
        }

        // Cached-route reply (Section 3.3, CREP) — only from routes we
        // discovered ourselves (we hold D's signed RREP for them).
        if self.cfg.crep_enabled {
            if let Some(cached) = self.route_cache.creppable(&rreq.dip, ctx.now()) {
                let cached = cached.to_owned();
                self.send_crep(ctx, &rreq, &cached);
                return;
            }
        }

        // Relay: sign and append our identity block to the SRR.
        let mut fwd = rreq;
        let entry_proof = self
            .ident
            .prove(&sigdata::srr_hop(&self.ident.ip(), fwd.seq));
        fwd.srr.0.push(SrrEntry {
            ip: self.ident.ip(),
            proof: entry_proof,
        });
        ctx.count("route.rreq_relayed", 1);
        let env = Envelope::broadcast(self.ident.ip(), Message::Rreq(fwd));
        self.tx(ctx, None, env);
    }

    /// We are the destination (or the DNS behind the anycast address):
    /// verify the whole request and answer with a signed RREP.
    fn answer_rreq(&mut self, ctx: &mut Ctx, rreq: Rreq) {
        // Check 1: source validity.
        if self
            .check_proof(
                ctx,
                &rreq.sip,
                &sigdata::rreq_src(&rreq.sip, rreq.seq),
                &rreq.src_proof,
            )
            .is_err()
        {
            self.stats.rejected_rreq += 1;
            ctx.count("sec.rreq_rejected", 1);
            ctx.trace(
                Dir::Drop,
                "RREQ",
                format!("bad source proof from {}", rreq.sip),
            );
            return;
        }
        // Check 2: every intermediate hop's identity.
        if self.cfg.verify_srr {
            for e in &rreq.srr.0 {
                if self
                    .check_proof(ctx, &e.ip, &sigdata::srr_hop(&e.ip, rreq.seq), &e.proof)
                    .is_err()
                {
                    self.stats.rejected_rreq += 1;
                    ctx.count("sec.rreq_rejected", 1);
                    ctx.trace(Dir::Drop, "RREQ", format!("bad SRR entry for {}", e.ip));
                    return;
                }
            }
        }
        let rr = rreq.srr.to_route_record();
        let payload = sigdata::rrep(&rreq.sip, rreq.seq, &rr);
        let proof = self.ident.prove(&payload);
        let rrep = Rrep {
            sip: rreq.sip,
            dip: rreq.dip,
            seq: rreq.seq,
            rr: rr.clone(),
            proof,
        };
        self.stats.rrep_sent += 1;
        ctx.count("route.rrep_sent", 1);
        let mut path = vec![rreq.dip];
        path.extend(rr.reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Rrep(rrep));
    }

    /// Black-hole route attraction: forge an RREP claiming we are one hop
    /// from the destination. The proof is signed with our own key (we do
    /// not have the destination's), so a verifying source rejects it —
    /// this is exactly the Section 4 argument made executable.
    fn forge_rrep(&mut self, ctx: &mut Ctx, rreq: &Rreq) {
        let mut rr = rreq.srr.to_route_record();
        rr.push(self.ident.ip());
        let payload = sigdata::rrep(&rreq.sip, rreq.seq, &rr);
        let claimed = self.behavior.impersonate.unwrap_or(rreq.dip);
        let proof = self.ident.prove(&payload); // our key ≠ H(...) of `claimed`
        let rrep = Rrep {
            sip: rreq.sip,
            dip: claimed,
            seq: rreq.seq,
            rr: rr.clone(),
            proof,
        };
        self.stats.atk_forged_rrep += 1;
        ctx.count("atk.forged_rrep", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(rreq.srr.to_route_record().reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Rrep(rrep));
    }

    fn send_crep(&mut self, ctx: &mut Ctx, rreq: &Rreq, cached: &CachedRoute) {
        let (orig_seq, d_proof) = cached.d_proof.clone().expect("creppable has proof");
        let rr_s2_to_s = rreq.srr.to_route_record();
        let s_proof = self.ident.prove(&sigdata::crep_cache_holder(
            &rreq.sip,
            rreq.seq,
            &rr_s2_to_s,
        ));
        let crep = Crep {
            s2ip: rreq.sip,
            sip: self.ident.ip(),
            dip: rreq.dip,
            seq2: rreq.seq,
            rr_s2_to_s: rr_s2_to_s.clone(),
            s_proof,
            orig_seq,
            rr_s_to_d: RouteRecord(cached.relays.clone()),
            d_proof,
        };
        self.stats.crep_sent += 1;
        ctx.count("route.crep_sent", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(rr_s2_to_s.reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Crep(crep));
    }

    // --- replies ------------------------------------------------------------

    pub(super) fn handle_rrep(&mut self, ctx: &mut Ctx, rrep: Rrep) {
        if rrep.sip != self.ident.ip() {
            return;
        }
        // Match against the outstanding request, or a recently satisfied
        // one (extra RREPs for the same sequence add alternate routes).
        const RECENT_WINDOW_US: u64 = 10_000_000;
        let (expected_seq, pending_started) = match self.pending_rreqs.get(&rrep.dip) {
            Some(p) => (p.seq, Some(p.started)),
            None => match self.recent_rreqs.get(&rrep.dip) {
                Some(&(seq, at))
                    if ctx.now().as_micros().saturating_sub(at.as_micros()) <= RECENT_WINDOW_US =>
                {
                    (seq, None)
                }
                _ => return, // nothing outstanding (stale or replayed)
            },
        };
        if expected_seq != rrep.seq {
            self.stats.rejected_rrep += 1;
            ctx.count("sec.rrep_rejected", 1);
            ctx.trace(Dir::Drop, "RREP", "sequence mismatch (replay?)");
            return;
        }
        // Verify the destination's proof over [SIP, seq, RR]. Routes to
        // the DNS anycast address verify against the well-known DNS key
        // (an anycast address is not a CGA); everything else runs the
        // full CGA + signature check.
        let payload = sigdata::rrep(&rrep.sip, rrep.seq, &rrep.rr);
        let ok = if rrep.dip.is_dns_well_known() {
            self.check_dns_sig(ctx, &payload, &rrep.proof.sig).is_ok()
        } else {
            self.check_proof(ctx, &rrep.dip, &payload, &rrep.proof)
                .is_ok()
        };
        if !ok {
            self.stats.rejected_rrep += 1;
            ctx.count("sec.rrep_rejected", 1);
            ctx.trace(Dir::Drop, "RREP", format!("invalid proof for {}", rrep.dip));
            return;
        }
        if let Some(started) = pending_started {
            self.pending_rreqs.remove(&rrep.dip);
            self.recent_rreqs.insert(rrep.dip, (rrep.seq, ctx.now()));
            ctx.sample(
                "route.discovery_latency_s",
                ctx.now().since(started).as_secs_f64(),
            );
            ctx.count("route.discovered", 1);
        } else {
            ctx.count("route.alternate_cached", 1);
        }
        ctx.trace(
            Dir::Note,
            "ROUTE",
            format!("to {} via {} relays", rrep.dip, rrep.rr.len()),
        );
        self.route_cache.insert(
            rrep.dip,
            CachedRoute {
                relays: rrep.rr.0.clone(),
                d_proof: Some((rrep.seq, rrep.proof.clone())),
                learned_at: ctx.now(),
            },
        );
        if self.behavior.replay {
            self.observed_rreps.push(rrep.clone());
            self.observed_rreps.truncate(32);
        }
        self.flush_buffer(ctx, rrep.dip);
    }

    pub(super) fn handle_crep(&mut self, ctx: &mut Ctx, crep: Crep) {
        if crep.s2ip != self.ident.ip() {
            return;
        }
        let (pending_seq, started) = match self.pending_rreqs.get(&crep.dip) {
            Some(p) => (p.seq, p.started),
            None => return,
        };
        if pending_seq != crep.seq2 {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            return;
        }
        // Verify the cache holder's identity over [S'IP, seq', RR_{S'→S}].
        let holder_payload = sigdata::crep_cache_holder(&crep.s2ip, crep.seq2, &crep.rr_s2_to_s);
        if self
            .check_proof(ctx, &crep.sip, &holder_payload, &crep.s_proof)
            .is_err()
        {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            ctx.trace(Dir::Drop, "CREP", "invalid cache-holder proof");
            return;
        }
        // Verify the destination's original proof over [SIP, seq, RR_{S→D}].
        let d_payload = sigdata::rrep(&crep.sip, crep.orig_seq, &crep.rr_s_to_d);
        let d_ok = if crep.dip.is_dns_well_known() {
            self.check_dns_sig(ctx, &d_payload, &crep.d_proof.sig)
                .is_ok()
        } else {
            self.check_proof(ctx, &crep.dip, &d_payload, &crep.d_proof)
                .is_ok()
        };
        if !d_ok {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            ctx.trace(Dir::Drop, "CREP", "invalid destination proof");
            return;
        }
        // Composite route: S' → (relays to S) → S → (S's relays to D) → D.
        let mut relays = crep.rr_s2_to_s.0.clone();
        relays.push(crep.sip);
        relays.extend(crep.rr_s_to_d.0.iter().copied());
        // The composite can double back through us (we may sit on S's
        // cached path to D). The proofs cover the original components, so
        // verification is done; for *forwarding* we shortcut at our last
        // occurrence. DSR's standard cached-reply loop trimming.
        if let Some(pos) = relays.iter().rposition(|r| *r == self.ident.ip()) {
            relays.drain(..=pos);
        }
        self.pending_rreqs.remove(&crep.dip);
        ctx.sample(
            "route.discovery_latency_s",
            ctx.now().since(started).as_secs_f64(),
        );
        ctx.count("route.discovered_via_crep", 1);
        self.route_cache.insert(
            crep.dip,
            CachedRoute {
                relays,
                d_proof: None, // composite: not servable as a further CREP
                learned_at: ctx.now(),
            },
        );
        self.flush_buffer(ctx, crep.dip);
    }

    pub(super) fn handle_rerr(&mut self, ctx: &mut Ctx, rerr: Rerr) {
        if self
            .check_proof(
                ctx,
                &rerr.iip,
                &sigdata::rerr(&rerr.iip, &rerr.i2ip),
                &rerr.proof,
            )
            .is_err()
        {
            self.stats.rejected_rerr += 1;
            ctx.count("sec.rerr_rejected", 1);
            ctx.trace(
                Dir::Drop,
                "RERR",
                format!("invalid proof from {}", rerr.iip),
            );
            return;
        }
        ctx.count("route.rerr_received", 1);
        let me = self.ident.ip();
        self.route_cache.remove_link(me, rerr.iip, rerr.i2ip);
        // Track the reporter; frequent reporters (and their next hops)
        // mark a hostile area (Section 3.4).
        if self.credits.record_rerr(&rerr.iip, &rerr.i2ip) {
            ctx.count("credit.hostile_marked", 1);
            ctx.trace(
                Dir::Note,
                "CREDIT",
                format!("hostile area around {} / {}", rerr.iip, rerr.i2ip),
            );
        }
    }

    /// Emit `RERR(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)` back to the
    /// source of a broken source-routed packet (Section 3.4).
    pub(super) fn originate_rerr(
        &mut self,
        ctx: &mut Ctx,
        path: &RouteRecord,
        my_idx: usize,
        next: Ipv6Addr,
    ) {
        let iip = self.ident.ip();
        let proof = self.ident.prove(&sigdata::rerr(&iip, &next));
        let rerr = Rerr {
            iip,
            i2ip: next,
            proof,
        };
        self.stats.rerr_sent += 1;
        ctx.count("route.rerr_sent", 1);
        let back: Vec<Ipv6Addr> = path.0[..=my_idx].iter().rev().copied().collect();
        if back.len() >= 2 {
            self.send_routed(ctx, RouteRecord(back), Message::Rerr(rerr));
        }
    }

    // --- route probing (Section 3.4 extension) -------------------------------

    /// Probe the route last used toward `dip`: every hop that forwards
    /// the probe returns a signed per-hop ack; the first silent hop is
    /// the suspect.
    pub(super) fn launch_probe(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, relays: &[Ipv6Addr]) {
        // lint: allow(unordered-iter) — existence check (.any); no visit-order dependence
        if self.pending_probes.values().any(|p| p.dip == dip) {
            return; // one probe at a time per destination
        }
        let seq = self.alloc_seq();
        let mut path = Vec::with_capacity(relays.len() + 2);
        path.push(self.ident.ip());
        path.extend_from_slice(relays);
        path.push(dip);
        let route = RouteRecord(path);
        if route.len() < 2 {
            return;
        }
        let mut expected = relays.to_vec();
        expected.push(dip);
        self.pending_probes.insert(
            seq.0,
            PendingProbe {
                dip,
                expected,
                acked: FxHashSet::default(),
            },
        );
        self.stats.probes_sent += 1;
        ctx.count("probe.sent", 1);
        ctx.trace(Dir::Note, "PROBE", format!("probing route to {dip}"));
        let msg = Message::Probe(manet_wire::Probe {
            sip: self.ident.ip(),
            dip,
            seq,
            route: route.clone(),
        });
        self.send_routed(ctx, route, msg);
        ctx.set_timer(self.cfg.probe_timeout, TAG_ROUTE_PROBE | seq.0);
    }

    /// Sign and return a per-hop probe acknowledgement toward the source.
    pub(super) fn send_probe_ack(
        &mut self,
        ctx: &mut Ctx,
        probe: &manet_wire::Probe,
        back: Vec<Ipv6Addr>,
    ) {
        let hop = self.ident.ip();
        let proof = self
            .ident
            .prove(&sigdata::probe_ack(&probe.sip, probe.seq, &hop));
        let ack = Message::ProbeAck(manet_wire::ProbeAck {
            sip: probe.sip,
            probe_seq: probe.seq,
            hop,
            proof,
        });
        self.stats.probe_acks_sent += 1;
        ctx.count("probe.acks_sent", 1);
        if back.len() >= 2 {
            self.send_routed(ctx, RouteRecord(back), ack);
        }
    }

    pub(super) fn handle_probe_ack(&mut self, ctx: &mut Ctx, ack: manet_wire::ProbeAck) {
        let Some(pending) = self.pending_probes.get(&ack.probe_seq.0) else {
            return; // expired or unsolicited
        };
        if !pending.expected.contains(&ack.hop) {
            ctx.count("probe.ack_offroute", 1);
            return;
        }
        // Same identity checks as everything else: the CGA must belong
        // to the claimed hop and the signature must cover this probe.
        if self
            .check_proof(
                ctx,
                &ack.hop,
                &sigdata::probe_ack(&ack.sip, ack.probe_seq, &ack.hop),
                &ack.proof,
            )
            .is_err()
        {
            ctx.count("sec.probe_ack_rejected", 1);
            return;
        }
        if let Some(pending) = self.pending_probes.get_mut(&ack.probe_seq.0) {
            pending.acked.insert(ack.hop);
        }
    }

    /// The collection window closed: judge the probed route.
    pub(super) fn on_route_probe_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some(pending) = self.pending_probes.remove(&seq) else {
            return;
        };
        let first_silent = pending
            .expected
            .iter()
            .position(|h| !pending.acked.contains(h));
        match first_silent {
            None => {
                // Everyone answered: an evading dropper or a transient
                // fault. Credits remain the fallback.
                self.stats.probes_inconclusive += 1;
                ctx.count("probe.inconclusive", 1);
                ctx.trace(Dir::Note, "PROBE", "all hops acked — inconclusive");
            }
            Some(i) => {
                let suspect = pending.expected[i];
                // The suspect either swallowed the probe or swallowed the
                // acks of everyone behind it — in both cases the paper's
                // "very large amount" slash applies. Its predecessor gets
                // only the weak timeout-grade penalty (it might be the
                // ack-dropper's victim, not an accomplice).
                self.credits.slash(&suspect);
                if i > 0 {
                    self.credits.penalize_route(&pending.expected[i - 1..i]);
                }
                self.stats.probe_suspects.push(suspect);
                ctx.count("probe.localized", 1);
                ctx.trace(Dir::Note, "PROBE", format!("suspect localized: {suspect}"));
            }
        }
    }

    // --- timers --------------------------------------------------------------

    pub(super) fn on_rreq_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        // lint: allow(unordered-iter) — seq is unique across pending entries; .find hits at most one
        let Some((&dip, _)) = self.pending_rreqs.iter().find(|(_, p)| p.seq.0 == seq) else {
            return; // answered in time
        };
        let pending = self.pending_rreqs.get_mut(&dip).expect("just found");
        if pending.attempts >= self.cfg.rreq_retries {
            self.pending_rreqs.remove(&dip);
            ctx.count("route.discovery_gave_up", 1);
            self.fail_buffer(ctx, dip);
            return;
        }
        pending.attempts += 1;
        // Fresh sequence number per retry: replayed answers to the old
        // one stay rejectable.
        let new_seq = Seq(self.next_seq);
        self.next_seq += 1;
        self.pending_rreqs.get_mut(&dip).expect("present").seq = new_seq;
        ctx.count("route.rreq_retries", 1);
        self.broadcast_rreq(ctx, dip, new_seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | new_seq.0);
    }
}
