//! The speculative prefetch pass: mirror every handler's verification
//! gates *read-only* and enqueue the signature triples the frame will
//! demand, so the engine's per-tick batch drain can verify each unique
//! triple once network-wide before dispatch.
//!
//! This is the supply side of the batch pipeline (`node::verify` is the
//! demand side). The contract is [`manet_sim::Protocol::prefetch_frame`]'s:
//! `&self`, no observable protocol effect, wrong or missing prefetches
//! cost only performance. Each gate below is an *approximation* of the
//! handler it shadows — state may change between prefetch and dispatch
//! (an earlier frame in the same tick can satisfy a pending entry), and
//! some dispatch-time gates (flood dedup, answer quotas) need `&mut`
//! interner access, so they are deliberately skipped. A spurious enqueue
//! wastes one backend op in the drain; a missed one falls back to an
//! inline execution at dispatch. Verdict purity makes both invisible.
//!
//! CGA checks are mirrored exactly (they are cheap SHA-256s): the
//! dispatch path short-circuits on a CGA failure *before* any signature
//! work, so prefetching a CGA-failing proof would execute a backend op
//! the inline run never pays.

use super::{NodeState, SecureNode};
use crate::envelope::Envelope;
use manet_crypto::{BatchVerifier, PublicKey, Signature, VerifyKey};
use manet_sim::NodeId;
use manet_wire::{cga, sigdata, IdentityProof, Message, Rreq};

impl SecureNode {
    pub(super) fn prefetch_frame_impl(&self, _src: NodeId, bytes: &[u8]) {
        let Some(batch) = self.batch.as_deref() else {
            return; // inline-only node: nothing to feed
        };
        // Kind gate before the frame decode: the bulk of traffic (data,
        // acks, AREQ floods, probes) can carry nothing the receiver
        // verifies, and skipping a verifiable kind here would only cost
        // an inline execution at dispatch — never correctness. `None`
        // from the offset peek means the strict decode would fail too.
        let Some(off) = Envelope::peek_msg_offset(bytes) else {
            return;
        };
        if !Message::peek_may_verify(&bytes[off..]) {
            return;
        }
        let Ok(env) = Envelope::decode(bytes) else {
            return;
        };
        match &env.source_route {
            Some(_) => {
                let Some(cur) = env.current_hop() else {
                    return;
                };
                if !self.accepts_addr(&cur) {
                    return; // overheard fallback broadcast — not ours
                }
                if env.at_final_hop() {
                    self.prefetch_local(batch, &env);
                }
                // Forwarding verifies nothing: no triples to feed.
            }
            None => {
                if let Message::Rreq(rreq) = &env.msg {
                    self.prefetch_rreq(batch, rreq);
                }
                // AREQs carry no signature; other flooded kinds are
                // dropped unverified at dispatch.
            }
        }
    }

    /// Flooded RREQ: only the destination verifies (source proof, then
    /// every SRR hop). The `answered_rreqs` quota needs `&mut` interner
    /// access, so late extra copies past `rrep_multi` prefetch
    /// spuriously — their triples are already in the verdict table from
    /// the first copy, making the waste a dedup lookup, not an op.
    fn prefetch_rreq(&self, batch: &BatchVerifier, rreq: &Rreq) {
        if !self.is_ready() || rreq.sip == self.ident.ip() || !self.is_my_addr(&rreq.dip) {
            return;
        }
        self.enqueue_proof(
            batch,
            &rreq.sip,
            &sigdata::rreq_src(&rreq.sip, rreq.seq),
            &rreq.src_proof,
        );
        if self.cfg.verify_srr {
            for e in &rreq.srr.0 {
                self.enqueue_proof(batch, &e.ip, &sigdata::srr_hop(&e.ip, rreq.seq), &e.proof);
            }
        }
    }

    /// A source-routed frame at its final hop: shadow `deliver_local`'s
    /// dispatch and each handler's checks.
    fn prefetch_local(&self, batch: &BatchVerifier, env: &Envelope) {
        match &env.msg {
            Message::Arep(arep) => {
                let dns_past_dad = self
                    .dns
                    .as_ref()
                    .filter(|_| !matches!(self.state, NodeState::Dad { .. }));
                if let Some(dns) = dns_past_dad {
                    // DNS warning path: verified against the stored
                    // challenge of the pending registration.
                    if let Some(ch) = dns.pending_challenge(&arep.sip) {
                        self.enqueue_proof(
                            batch,
                            &arep.sip,
                            &sigdata::arep(&arep.sip, ch),
                            &arep.proof,
                        );
                    }
                } else if let NodeState::Dad { ch, .. } = self.state {
                    if arep.sip == self.ident.ip() {
                        self.enqueue_proof(
                            batch,
                            &arep.sip,
                            &sigdata::arep(&arep.sip, ch),
                            &arep.proof,
                        );
                    }
                }
            }
            Message::Drep(drep) => {
                if let NodeState::Dad { ch, .. } = self.state {
                    if drep.sip == self.ident.ip() {
                        if let Some(dn) = &self.desired_dn {
                            self.enqueue_sig(
                                batch,
                                &self.dns_pk,
                                &sigdata::drep(dn, ch),
                                &drep.sig,
                            );
                        }
                    }
                }
            }
            Message::Rrep(rrep) => {
                if rrep.sip != self.ident.ip() {
                    return;
                }
                // Pending or recently satisfied discovery with the same
                // sequence (the dispatch-time recency *window* needs
                // `now`, unavailable here — a stale match is spurious).
                let seq_matches = self
                    .pending_rreqs
                    .get(&rrep.dip)
                    .map(|p| p.seq)
                    .or_else(|| self.recent_rreqs.get(&rrep.dip).map(|&(seq, _)| seq))
                    == Some(rrep.seq);
                if !seq_matches {
                    return;
                }
                let payload = sigdata::rrep(&rrep.sip, rrep.seq, &rrep.rr);
                if rrep.dip.is_dns_well_known() {
                    self.enqueue_sig(batch, &self.dns_pk, &payload, &rrep.proof.sig);
                } else {
                    self.enqueue_proof(batch, &rrep.dip, &payload, &rrep.proof);
                }
            }
            Message::Crep(crep) => {
                if crep.s2ip != self.ident.ip() {
                    return;
                }
                if self.pending_rreqs.get(&crep.dip).map(|p| p.seq) != Some(crep.seq2) {
                    return;
                }
                self.enqueue_proof(
                    batch,
                    &crep.sip,
                    &sigdata::crep_cache_holder(&crep.s2ip, crep.seq2, &crep.rr_s2_to_s),
                    &crep.s_proof,
                );
                let d_payload = sigdata::rrep(&crep.sip, crep.orig_seq, &crep.rr_s_to_d);
                if crep.dip.is_dns_well_known() {
                    self.enqueue_sig(batch, &self.dns_pk, &d_payload, &crep.d_proof.sig);
                } else {
                    self.enqueue_proof(batch, &crep.dip, &d_payload, &crep.d_proof);
                }
            }
            Message::Rerr(rerr) => {
                // handle_rerr verifies unconditionally.
                self.enqueue_proof(
                    batch,
                    &rerr.iip,
                    &sigdata::rerr(&rerr.iip, &rerr.i2ip),
                    &rerr.proof,
                );
            }
            Message::ProbeAck(ack) => {
                let Some(pending) = self.pending_probes.get(&ack.probe_seq.0) else {
                    return;
                };
                if !pending.expected.contains(&ack.hop) {
                    return;
                }
                self.enqueue_proof(
                    batch,
                    &ack.hop,
                    &sigdata::probe_ack(&ack.sip, ack.probe_seq, &ack.hop),
                    &ack.proof,
                );
            }
            Message::DnsReply(reply) => {
                let Some(ch) = self.pending_resolves.get(&reply.qname).copied() else {
                    return;
                };
                let payload = sigdata::dns_reply(&reply.qname, reply.answer.as_ref(), ch);
                self.enqueue_sig(batch, &self.dns_pk, &payload, &reply.sig);
            }
            Message::IpChangeResult(res) => {
                // Peek — dispatch *takes* the pending entry; prefetch
                // must not.
                let Some(pending) = self.pending_ip_change.as_ref() else {
                    return;
                };
                let Some(ch) = pending.ch else {
                    return;
                };
                let payload = sigdata::ip_change_result(&res.dn, res.accepted, ch);
                self.enqueue_sig(batch, &self.dns_pk, &payload, &res.sig);
            }
            Message::IpChangeProof(proof) => {
                let Some(dns) = self.dns.as_ref() else {
                    return;
                };
                let Some((ch, old_ip, new_ip)) = dns.ip_change_session(&proof.dn) else {
                    return;
                };
                // Dispatch short-circuits on address or CGA mismatch
                // before the signature — mirror all four checks.
                if old_ip != proof.old_ip
                    || new_ip != proof.new_ip
                    || cga::verify(&proof.old_ip, &proof.pk, proof.old_rn).is_err()
                    || cga::verify(&proof.new_ip, &proof.pk, proof.new_rn).is_err()
                {
                    return;
                }
                let payload = sigdata::ip_change(&proof.old_ip, &proof.new_ip, ch);
                self.enqueue_sig(batch, &proof.pk, &payload, &proof.sig);
            }
            // Data, Ack, Probe, DnsQuery, IpChangeRequest and
            // IpChangeChallenge carry nothing the receiver verifies.
            _ => {}
        }
    }

    /// Enqueue an identity proof's signature half, mirroring the
    /// dispatch pipeline's CGA-first short-circuit.
    fn enqueue_proof(
        &self,
        batch: &BatchVerifier,
        claimed: &manet_wire::Ipv6Addr,
        payload: &[u8],
        proof: &IdentityProof,
    ) {
        if cga::verify(claimed, &proof.pk, proof.rn).is_err() {
            return; // dispatch never reaches the signature
        }
        self.enqueue_sig(batch, &proof.pk, payload, &proof.sig);
    }

    /// Enqueue a bare triple unless this node's own cache already holds
    /// its verdict (then dispatch never consults the batch table).
    /// `VerifyCache::peek` is non-mutating: no LRU promotion, no
    /// counters — the observable cache state stays untouched.
    fn enqueue_sig(&self, batch: &BatchVerifier, pk: &PublicKey, payload: &[u8], sig: &Signature) {
        let cached = self
            .verify_cache
            .as_ref()
            .is_some_and(|c| c.peek(&VerifyKey::for_triple(pk, payload, sig)).is_some());
        if !cached {
            batch.enqueue(pk, payload, sig);
        }
    }
}
