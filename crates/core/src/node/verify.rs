//! The security pipeline: the single choke point through which every
//! inbound message's cryptographic material passes.
//!
//! Handlers never call the raw verification primitives; they call
//! [`SecureNode::check_proof`] / [`SecureNode::check_known_key`] /
//! [`SecureNode::check_dns_sig`], which
//!
//! 1. run the two-step CGA + signature check (or the known-key check)
//!    via [`crate::identity`],
//! 2. consult the node's [`manet_crypto::VerifyCache`] so an identical
//!    `(key, payload, signature)` triple is verified once per node, not
//!    once per delivery — an RREQ flood arriving over three paths
//!    re-proves the shared SRR prefix for free, and a signed-RERR
//!    spammer pays RSA once and hash-lookups thereafter; on a node-cache
//!    miss the network-wide [`manet_crypto::BatchVerifier`] table is
//!    consulted before any inline execution (see `node::prefetch`),
//! 3. account every verdict in [`NodeStats`]
//!    (`crypto_verify_attempted` / `_cached` / `_failed`) and the engine
//!    metrics (`sec.verify_rsa` / `sec.verify_cached` /
//!    `sec.verify_failed`).
//!
//! Memoization is observationally invisible: the verdict is a pure
//! function of the triple, the cache key digests the *whole* triple
//! (so a forged signature over a cached-valid payload can never alias
//! the valid entry), and no RNG draw or timer is involved — same-seed
//! traces are bit-identical with the cache on, off, or thrashing.

use super::SecureNode;
use crate::identity::{verify_known_key_pipeline, verify_proof_pipeline, ProofError};
use crate::stats::NodeStats;
use manet_crypto::{Provenance, PublicKey, Signature};
use manet_sim::Ctx;
use manet_wire::{IdentityProof, Ipv6Addr};

/// Account one pipeline verdict in the node stats and engine metrics.
fn record(
    stats: &mut NodeStats,
    ctx: &mut Ctx,
    outcome: (Result<(), ProofError>, Provenance),
) -> Result<(), ProofError> {
    let (result, provenance) = outcome;
    if matches!(result, Err(ProofError::Cga(_))) {
        // The CGA check short-circuited before any RSA ran (one SHA-256
        // of work, nothing cacheable): a failed verdict, not an executed
        // verification — `crypto_verify_attempted` stays an exact count
        // of RSA operations.
        stats.crypto_verify_failed += 1;
        ctx.count("sec.verify_failed", 1);
        return result;
    }
    match provenance {
        Provenance::Cached => {
            stats.crypto_verify_cached += 1;
            ctx.count("sec.verify_cached", 1);
        }
        Provenance::Computed => {
            stats.crypto_verify_attempted += 1;
            ctx.count("sec.verify_rsa", 1);
        }
    }
    if result.is_err() {
        stats.crypto_verify_failed += 1;
        ctx.count("sec.verify_failed", 1);
    }
    result
}

impl SecureNode {
    /// Verify an identity proof for `claimed`: CGA ownership plus the
    /// signature over `payload`, memoized and counted.
    pub(crate) fn check_proof(
        &mut self,
        ctx: &mut Ctx,
        claimed: &Ipv6Addr,
        payload: &[u8],
        proof: &IdentityProof,
    ) -> Result<(), ProofError> {
        // Split borrow: cache, backend and batch handle all live on self.
        let SecureNode {
            crypto,
            batch,
            verify_cache,
            stats,
            ..
        } = self;
        let outcome = verify_proof_pipeline(
            claimed,
            payload,
            proof,
            verify_cache.as_mut(),
            crypto.as_ref(),
            batch.as_deref(),
        );
        record(stats, ctx, outcome)
    }

    /// Verify a signature under a key carried by the message itself
    /// (e.g. the IP-change proof's `XPK`), memoized and counted.
    pub(crate) fn check_known_key(
        &mut self,
        ctx: &mut Ctx,
        pk: &PublicKey,
        payload: &[u8],
        sig: &Signature,
    ) -> Result<(), ProofError> {
        let SecureNode {
            crypto,
            batch,
            verify_cache,
            stats,
            ..
        } = self;
        let outcome = verify_known_key_pipeline(
            pk,
            payload,
            sig,
            verify_cache.as_mut(),
            crypto.as_ref(),
            batch.as_deref(),
        );
        record(stats, ctx, outcome)
    }

    /// Verify a signature under the pre-configured DNS public key —
    /// everything the DNS signs (DREP, DNS replies, IP-change results,
    /// routes to the anycast address).
    pub(crate) fn check_dns_sig(
        &mut self,
        ctx: &mut Ctx,
        payload: &[u8],
        sig: &Signature,
    ) -> Result<(), ProofError> {
        // Split borrow: the key lives on self alongside the cache.
        let SecureNode {
            dns_pk,
            crypto,
            batch,
            verify_cache,
            stats,
            ..
        } = self;
        let outcome = verify_known_key_pipeline(
            dns_pk,
            payload,
            sig,
            verify_cache.as_mut(),
            crypto.as_ref(),
            batch.as_deref(),
        );
        record(stats, ctx, outcome)
    }
}
