//! Secure duplicate address detection (Section 3.1): the AREQ flood, the
//! AREP/DREP replies, and the DAD state machine that turns a candidate
//! CGA into a confirmed address.

use super::{NodeState, Queued, SecureNode, TAG_DAD, TAG_DAD_PROBE};
use crate::envelope::Envelope;
use manet_sim::{Ctx, Dir};
use manet_wire::Ipv6Addr;
use manet_wire::{
    sigdata, Arep, Areq, Challenge, DomainName, Drep, Message, RouteRecord, Seq, DNS_WELL_KNOWN,
    UNSPECIFIED,
};
use rand::Rng;

impl SecureNode {
    pub(super) fn begin_dad(&mut self, ctx: &mut Ctx) {
        self.stats.dad_attempts += 1;
        ctx.count("dad.attempts", 1);
        // A restarted attempt invalidates the previous one's probe plan.
        for h in self.dad_probe_timers.drain(..) {
            ctx.cancel_timer(h);
        }
        let seq = self.alloc_seq();
        let ch = Challenge(ctx.rng().gen());
        self.state = NodeState::Dad { seq, ch };
        self.send_dad_probe(ctx, seq, ch);
        // Retransmit the probe across the window so a single lost
        // broadcast cannot hide a duplicate.
        let probes = self.cfg.dad_probes.max(1);
        for i in 1..probes {
            let delay = manet_sim::SimDuration::from_micros(
                self.cfg.dad_timeout.as_micros() * i as u64 / probes as u64,
            );
            let h = ctx.set_timer(delay, TAG_DAD_PROBE);
            self.dad_probe_timers.push(h);
        }
        ctx.set_timer(self.cfg.dad_timeout, TAG_DAD);
    }

    /// One AREQ flood of the current DAD attempt (fresh `seq`, so relays
    /// do not dedup the retransmission; same `ch`, which identifies the
    /// attempt to verifiers).
    fn send_dad_probe(&mut self, ctx: &mut Ctx, seq: Seq, ch: Challenge) {
        self.my_dad_probes.insert((seq.0, ch.0));
        let areq = Areq {
            sip: self.ident.ip(),
            seq,
            dn: self.desired_dn.clone(),
            ch,
            rr: RouteRecord::new(),
        };
        self.stats.areq_sent += 1;
        let env = Envelope::broadcast(UNSPECIFIED, Message::Areq(areq));
        self.tx(ctx, None, env);
    }

    pub(super) fn on_dad_probe_timer(&mut self, ctx: &mut Ctx) {
        if let NodeState::Dad { ch, .. } = self.state {
            let seq = self.alloc_seq();
            self.send_dad_probe(ctx, seq, ch);
        }
    }

    pub(super) fn on_dad_timer(&mut self, ctx: &mut Ctx) {
        if matches!(self.state, NodeState::Dad { .. }) {
            // Silence means uniqueness (Section 3.1).
            self.dad_confirmed(ctx);
        }
    }

    fn dad_confirmed(&mut self, ctx: &mut Ctx) {
        self.state = NodeState::Ready;
        self.stats.joined_at = Some(ctx.now());
        ctx.count("dad.confirmed", 1);
        ctx.sample("dad.latency_s", ctx.now().as_secs_f64());
        ctx.trace(
            Dir::Note,
            "DAD",
            format!("address {} confirmed", self.ident.ip()),
        );
        // Kick route discovery for everything queued while bootstrapping
        // — in address order, deduplicated: the send buffer yields its
        // destinations in storage order, which must not pick the RREQ
        // emission order.
        let mut dests: Vec<Ipv6Addr> = self.send_buffer.dests().collect();
        dests.sort_unstable();
        dests.dedup();
        for d in dests {
            self.ensure_route(ctx, d);
        }
    }

    fn restart_dad(&mut self, ctx: &mut Ctx) {
        if self.stats.dad_attempts >= self.cfg.dad_max_attempts {
            ctx.count("dad.gave_up", 1);
            self.state = NodeState::Boot;
            return;
        }
        self.ident.reroll(ctx.rng());
        self.begin_dad(ctx);
    }

    // --- flood handling ----------------------------------------------------

    pub(super) fn handle_areq(&mut self, ctx: &mut Ctx, areq: Areq) {
        if self.my_dad_probes.contains(&(areq.seq.0, areq.ch.0)) {
            return; // an echo of our own probe
        }
        let sid = self.interner.id(areq.sip);
        if !self.seen_areqs.insert((sid, areq.seq.0, areq.ch.0)) {
            return;
        }
        if let NodeState::Dad { seq, .. } = self.state {
            // Our own flood coming back — or another joining host; either
            // way a mid-DAD node neither answers nor relays.
            let _ = seq;
            return;
        }
        if self.state != NodeState::Ready {
            return;
        }
        ctx.trace(
            Dir::Rx,
            "AREQ",
            format!(
                "for {} dn={:?}",
                areq.sip,
                areq.dn.as_ref().map(|d| d.as_str())
            ),
        );

        // DNS server: name bookkeeping (conflict DREP / pending commit).
        if self.dns.is_some() {
            self.dns_on_areq(ctx, &areq);
        }

        let collision = areq.sip == self.ident.ip();
        if collision || self.behavior.squat_dad {
            if !collision {
                self.stats.atk_forged_arep += 1;
                ctx.count("atk.forged_arep", 1);
            }
            self.send_arep(ctx, &areq);
            if collision {
                self.warn_dns(ctx, &areq);
            }
            // "Every host should … properly rebroadcast the AREQ": the
            // flood continues past the collision holder so the DNS hears
            // the request and holds/cancels the registration.
        }

        // Replay attacker: answer with a previously captured AREP for
        // this address if we have one (its challenge is stale).
        if self.behavior.replay {
            if let Some(old) = self
                .observed_areps
                .iter()
                .find(|a| a.sip == areq.sip)
                .cloned()
            {
                self.stats.atk_replayed += 1;
                ctx.count("atk.replayed_arep", 1);
                let mut path = vec![self.ident.ip()];
                path.extend(areq.rr.reversed().0);
                path.push(areq.sip);
                self.send_routed(ctx, RouteRecord(path), Message::Arep(old));
            }
        }

        // Relay: append our address to the route record and rebroadcast.
        let mut fwd = areq;
        fwd.rr.push(self.ident.ip());
        let env = Envelope::broadcast(self.ident.ip(), Message::Areq(fwd));
        self.tx(ctx, None, env);
    }

    /// Answer an AREQ whose address collides with ours (Section 3.1):
    /// `AREP(SIP, RR, [SIP, ch]RSK, RPK, Rrn)` unicast along the reverse
    /// route record.
    fn send_arep(&mut self, ctx: &mut Ctx, areq: &Areq) {
        let proof = self.ident.prove(&sigdata::arep(&areq.sip, areq.ch));
        let arep = Arep {
            sip: areq.sip,
            rr: areq.rr.clone(),
            proof,
        };
        self.stats.arep_sent += 1;
        ctx.count("dad.arep_sent", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(areq.rr.reversed().0);
        path.push(areq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Arep(arep));
    }

    /// Warn the DNS that `areq.sip` is a duplicate so it never commits a
    /// name for it (Section 3.1). Routed over the normal secure-routing
    /// machinery toward the well-known DNS address.
    fn warn_dns(&mut self, ctx: &mut Ctx, areq: &Areq) {
        if self.dns.is_some() {
            // We *are* the DNS; cancel locally.
            let sip = areq.sip;
            self.dns_cancel_pending(ctx, &sip);
            return;
        }
        let proof = self.ident.prove(&sigdata::arep(&areq.sip, areq.ch));
        let warning = Arep {
            sip: areq.sip,
            rr: RouteRecord::new(),
            proof,
        };
        let dns_ip = DNS_WELL_KNOWN[0];
        if let Some(path) = self.path_to(ctx.now(), &dns_ip) {
            self.send_routed(ctx, path, Message::Arep(warning));
        } else {
            self.enqueue(ctx, dns_ip, Queued::ArepWarning { arep: warning }, &[]);
            self.ensure_route(ctx, dns_ip);
        }
    }

    // --- replies -----------------------------------------------------------

    pub(super) fn handle_arep(&mut self, ctx: &mut Ctx, arep: Arep) {
        // DNS warning path (Section 3.1's "unicast an AREP to DNS").
        if self.dns.is_some() && !matches!(self.state, NodeState::Dad { .. }) {
            self.dns_on_warning_arep(ctx, &arep);
            return;
        }
        let NodeState::Dad { ch, .. } = self.state else {
            return;
        };
        if arep.sip != self.ident.ip() {
            return; // not about our candidate
        }
        // The two checks of Section 3.1: CGA ownership of SIP by (RPK,
        // Rrn), and the challenge response under RSK.
        match self.check_proof(ctx, &arep.sip, &sigdata::arep(&arep.sip, ch), &arep.proof) {
            Ok(()) => {
                self.stats.collisions_detected += 1;
                ctx.count("dad.collisions", 1);
                ctx.trace(
                    Dir::Note,
                    "DAD",
                    "valid AREP: address collision, rerolling rn",
                );
                self.restart_dad(ctx);
            }
            Err(_) => {
                self.stats.rejected_arep += 1;
                ctx.count("sec.arep_rejected", 1);
                ctx.trace(Dir::Drop, "AREP", "invalid proof (squat/replay attempt?)");
            }
        }
    }

    pub(super) fn handle_drep(&mut self, ctx: &mut Ctx, drep: Drep) {
        let NodeState::Dad { ch, .. } = self.state else {
            return;
        };
        if drep.sip != self.ident.ip() {
            return;
        }
        let Some(dn) = self.desired_dn.clone() else {
            return; // we registered no name; a DREP for us is bogus
        };
        match self.check_dns_sig(ctx, &sigdata::drep(&dn, ch), &drep.sig) {
            Ok(()) => {
                self.stats.name_conflicts += 1;
                ctx.count("dad.name_conflicts", 1);
                // First-come-first-serve lost: pick a decorated fallback
                // name and retry the DAD round (Section 3.1).
                let fallback = format!("{}-{}", dn.as_str(), self.stats.dad_attempts + 1);
                self.desired_dn = DomainName::new(&fallback).ok();
                ctx.trace(
                    Dir::Note,
                    "DAD",
                    format!("name conflict; retrying as {fallback}"),
                );
                self.restart_dad(ctx);
            }
            Err(_) => {
                self.stats.rejected_drep += 1;
                ctx.count("sec.drep_rejected", 1);
            }
        }
    }
}
