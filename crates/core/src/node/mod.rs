//! The secure MANET node: the paper's Section 3 as a layered protocol
//! stack.
//!
//! One struct covers every role, but the behaviour is split by protocol
//! layer:
//!
//! * [`bootstrap`] — CGA identity, the secure-DAD state machine
//!   (AREQ/AREP/DREP floods and timers, Section 3.1);
//! * [`routing`] — secure DSR discovery and maintenance
//!   (RREQ/RREP/CREP/RERR plus route probing, Sections 3.3–3.4);
//! * [`forwarding`] — the data plane: source-routed transmission,
//!   Data/Ack retries, the pre-route send buffer;
//! * [`dnsclient`] — the host side of the DNS services (resolution and
//!   IP change, Section 3.2); the *server* side lives in [`crate::dns`];
//! * [`verify`] — the security pipeline every inbound proof passes
//!   through, backed by a [`manet_crypto::VerifyCache`] that memoizes
//!   signature verdicts.
//!
//! A node constructed with [`SecureNode::new_dns`] additionally runs the
//! DNS server state; a node constructed with a non-default
//! [`crate::config::Behavior`] misbehaves in the configured ways
//! (Section 4's attacker models). Keeping attackers inside the same
//! implementation guarantees they speak byte-identical wire formats —
//! their packets are rejected by *cryptography*, not by accidental
//! incompatibility.

mod bootstrap;
mod dnsclient;
mod forwarding;
mod prefetch;
mod routing;
mod verify;

use crate::config::{Behavior, ProtocolConfig};
use crate::credit::CreditManager;
use crate::dns::DnsState;
use crate::envelope::Envelope;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::identity::HostIdentity;
use crate::intern::{AddrInterner, InternTable};
use crate::neighbor::NeighborCache;
use crate::routecache::RouteCache;
use crate::sendbuf::SendBuffer;
use crate::stats::NodeStats;
use manet_crypto::{backend_for, BatchVerifier, CryptoBackend, PublicKey, VerifyCache};
use manet_sim::{Ctx, Dir, NodeId, Protocol, SimTime};
use manet_wire::{Arep, Challenge, DomainName, Ipv6Addr, Message, RouteRecord, Rrep, Seq};
use std::any::Any;
use std::sync::Arc;

// Timer tag layout: kind in the top byte, payload below.
const TAG_KIND_MASK: u64 = 0xff << 56;
const TAG_DAD: u64 = 1 << 56;
const TAG_RREQ: u64 = 2 << 56;
const TAG_ACK: u64 = 3 << 56;
const TAG_DNS_PENDING: u64 = 4 << 56;
const TAG_DAD_PROBE: u64 = 5 << 56;
const TAG_ROUTE_PROBE: u64 = 6 << 56;

/// Bootstrap state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    /// Waiting for `on_start`.
    Boot,
    /// Flooded an AREQ, waiting out the DAD window.
    Dad { seq: Seq, ch: Challenge },
    /// Address confirmed; fully operational.
    Ready,
}

/// An outstanding route discovery.
#[derive(Debug)]
struct PendingRreq {
    seq: Seq,
    attempts: u32,
    started: SimTime,
}

/// A data packet awaiting its end-to-end ACK.
#[derive(Debug)]
struct PendingAck {
    dip: Ipv6Addr,
    payload: Vec<u8>,
    relays: Vec<Ipv6Addr>,
    retries: u32,
    first_sent: SimTime,
}

/// Work queued until a route to `dest` exists. Payload bytes (only the
/// `Data` variant has any) live in the send buffer's arena, not here.
#[derive(Debug)]
enum Queued {
    Data { seq: Seq },
    DnsQuery { qname: DomainName, ch: Challenge },
    ArepWarning { arep: Arep },
    IpChangeRequest { dn: DomainName },
}

/// An outstanding route-integrity probe (Section 3.4).
#[derive(Debug)]
struct PendingProbe {
    dip: Ipv6Addr,
    /// Hops expected to acknowledge: the relays, then the destination.
    expected: Vec<Ipv6Addr>,
    acked: FxHashSet<Ipv6Addr>,
}

/// State of an in-flight IP change (Section 3.2).
#[derive(Debug)]
struct PendingIpChange {
    dn: DomainName,
    old_rn: u64,
    new_rn: u64,
    old_ip: Ipv6Addr,
    new_ip: Ipv6Addr,
    /// Challenge received from the DNS (None until the challenge arrives).
    ch: Option<Challenge>,
}

/// The secure node.
pub struct SecureNode {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) ident: HostIdentity,
    pub(crate) dns_pk: PublicKey,
    /// Domain name to register during bootstrap, if any.
    pub(crate) desired_dn: Option<DomainName>,
    pub(crate) behavior: Behavior,
    pub(crate) dns: Option<DnsState>,

    state: NodeState,
    next_seq: u64,
    pub(crate) neighbors: NeighborCache,
    pub(crate) route_cache: RouteCache,
    pub(crate) credits: CreditManager,
    pub(crate) stats: NodeStats,
    /// Memoized signature-verification verdicts (None = cache disabled);
    /// consulted exclusively through the [`verify`] pipeline.
    pub(crate) verify_cache: Option<VerifyCache>,
    /// The signature backend every sign/verify runs on (one shared
    /// instance network-wide when built by the scenario layer, so its op
    /// counters aggregate; never part of a run fingerprint).
    pub(crate) crypto: Arc<dyn CryptoBackend>,
    /// Network-wide deferred-verification handle (None = inline only);
    /// fed by [`prefetch`], consulted by the [`verify`] pipeline.
    pub(crate) batch: Option<Arc<BatchVerifier>>,

    /// Address interner for the id-keyed flood-dedup maps below
    /// (shared table set by the builder; overflow catches re-rolled
    /// CGAs and foreign addresses).
    interner: AddrInterner,
    /// Flood dedup for AREQs. The challenge is part of the key: `seq` is
    /// only unique *per initiator*, and the interesting DAD case is two
    /// initiators claiming the same SIP — their floods must not collapse.
    seen_areqs: FxHashSet<(u32, u64, u64)>,
    /// `(seq, ch)` of every AREQ we ourselves flooded, so a late echo of
    /// our own probe is never mistaken for a foreign claim on our address.
    my_dad_probes: FxHashSet<(u64, u64)>,
    seen_rreqs: FxHashSet<(u32, u64)>,
    /// As destination: how many copies of each RREQ we already answered
    /// (up to `cfg.rrep_multi` for route diversity).
    answered_rreqs: FxHashMap<(u32, u64), u32>,
    /// Recently satisfied discoveries, so late extra RREPs for the same
    /// sequence can still be cached as alternate routes.
    recent_rreqs: FxHashMap<Ipv6Addr, (Seq, SimTime)>,
    pending_rreqs: FxHashMap<Ipv6Addr, PendingRreq>,
    pending_acks: FxHashMap<u64, PendingAck>,
    send_buffer: SendBuffer<Queued>,
    /// Challenges of our outstanding DNS resolutions, by name.
    pending_resolves: FxHashMap<DomainName, Challenge>,
    pending_ip_change: Option<PendingIpChange>,
    /// Route probes awaiting per-hop acks, by probe sequence number.
    pending_probes: FxHashMap<u64, PendingProbe>,
    /// Consecutive end-to-end ack timeouts per destination (probe trigger).
    consecutive_timeouts: FxHashMap<Ipv6Addr, u32>,

    /// Probe-retransmission timers of the current DAD attempt, cancelled
    /// when the attempt restarts.
    dad_probe_timers: Vec<manet_sim::TimerHandle>,

    /// Replay attacker's capture buffers.
    observed_areps: Vec<Arep>,
    observed_rreps: Vec<Rrep>,
}

impl SecureNode {
    /// An ordinary (honest) host. `dns_pk` is the one piece of
    /// pre-configuration the paper allows: "a host only needs to know the
    /// public key of the DNS server prior to entering the MANET".
    pub fn new<R: rand::Rng>(
        cfg: ProtocolConfig,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        rng: &mut R,
    ) -> Self {
        Self::with_behavior(cfg, dns_pk, desired_dn, Behavior::default(), rng)
    }

    /// A host with attacker switches.
    pub fn with_behavior<R: rand::Rng>(
        cfg: ProtocolConfig,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
        rng: &mut R,
    ) -> Self {
        let ident = HostIdentity::generate(cfg.key_bits, rng);
        Self::assemble(cfg, ident, dns_pk, desired_dn, behavior, None)
    }

    /// A host with a caller-supplied identity. This is how tests inject
    /// address collisions (two hosts sharing a key pair and `rn` generate
    /// the same CGA) and how a deployment would load a persisted key.
    pub fn with_identity(
        cfg: ProtocolConfig,
        ident: HostIdentity,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
    ) -> Self {
        Self::assemble(cfg, ident, dns_pk, desired_dn, behavior, None)
    }

    /// The DNS server node. Its identity *is* the DNS key pair; its
    /// public half must be handed to every other node. `pre_registered`
    /// holds the permanent (name, address) entries established "before
    /// the network is formed".
    pub fn new_dns<R: rand::Rng>(
        cfg: ProtocolConfig,
        pre_registered: Vec<(DomainName, Ipv6Addr)>,
        rng: &mut R,
    ) -> Self {
        let keypair = manet_crypto::KeyPair::generate(cfg.key_bits, rng);
        let ident = HostIdentity::from_keypair(keypair, rng);
        let dns_pk = ident.public().clone();
        Self::assemble(
            cfg,
            ident,
            dns_pk,
            None,
            Behavior::default(),
            Some(DnsState::new(pre_registered)),
        )
    }

    fn assemble(
        cfg: ProtocolConfig,
        ident: HostIdentity,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
        dns: Option<DnsState>,
    ) -> Self {
        let credits = CreditManager::new(cfg.credit.clone());
        let route_cache = RouteCache::with_caps(
            cfg.route_ttl,
            cfg.route_cache_per_dest,
            cfg.route_cache_dests,
        );
        let verify_cache = cfg
            .verify_cache
            .then(|| VerifyCache::new(cfg.verify_cache_capacity));
        // A standalone node gets its own backend instance; scenario
        // builds replace it with the network-shared one.
        let crypto = backend_for(cfg.crypto_backend);
        let mut ident = ident;
        ident.set_backend(Arc::clone(&crypto));
        SecureNode {
            cfg,
            ident,
            crypto,
            batch: None,
            dns_pk,
            desired_dn,
            behavior,
            dns,
            state: NodeState::Boot,
            next_seq: 1,
            neighbors: NeighborCache::default(),
            route_cache,
            credits,
            stats: NodeStats::default(),
            verify_cache,
            interner: AddrInterner::new(),
            seen_areqs: FxHashSet::default(),
            my_dad_probes: FxHashSet::default(),
            seen_rreqs: FxHashSet::default(),
            answered_rreqs: FxHashMap::default(),
            recent_rreqs: FxHashMap::default(),
            pending_rreqs: FxHashMap::default(),
            pending_acks: FxHashMap::default(),
            send_buffer: SendBuffer::new(),
            pending_resolves: FxHashMap::default(),
            pending_ip_change: None,
            pending_probes: FxHashMap::default(),
            consecutive_timeouts: FxHashMap::default(),
            dad_probe_timers: Vec::new(),
            observed_areps: Vec::new(),
            observed_rreps: Vec::new(),
        }
    }

    // --- public accessors -------------------------------------------------

    /// Current IPv6 address (candidate until [`Self::is_ready`]).
    pub fn ip(&self) -> Ipv6Addr {
        self.ident.ip()
    }

    /// Adopt the network-wide intern table (builder-time only).
    pub fn set_intern_table(&mut self, table: std::sync::Arc<InternTable>) {
        self.interner.set_table(table.clone());
        self.neighbors.set_intern_table(table);
    }

    /// The public key behind this node's CGA.
    pub fn public_key(&self) -> &PublicKey {
        self.ident.public()
    }

    /// Address confirmed and node operational?
    pub fn is_ready(&self) -> bool {
        self.state == NodeState::Ready
    }

    /// Is this node the DNS server?
    pub fn is_dns(&self) -> bool {
        self.dns.is_some()
    }

    /// Per-node statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The credit table (Section 3.4), for inspection.
    pub fn credits(&self) -> &CreditManager {
        &self.credits
    }

    /// The DNS server state, if this node is the DNS.
    pub fn dns_state(&self) -> Option<&DnsState> {
        self.dns.as_ref()
    }

    /// The verify cache, for inspection (None when disabled).
    pub fn verify_cache(&self) -> Option<&VerifyCache> {
        self.verify_cache.as_ref()
    }

    /// Adopt the network-shared crypto runtime (builder-time only): one
    /// backend instance so execution counters aggregate network-wide,
    /// plus the batch-verification handle when deferred verification is
    /// on. Must run before the node signs or verifies anything.
    pub fn set_crypto_runtime(
        &mut self,
        backend: Arc<dyn CryptoBackend>,
        batch: Option<Arc<BatchVerifier>>,
    ) {
        self.ident.set_backend(Arc::clone(&backend));
        self.crypto = backend;
        self.batch = batch;
    }

    /// The signature backend this node runs on.
    pub fn crypto_backend(&self) -> &Arc<dyn CryptoBackend> {
        &self.crypto
    }

    /// Number of destinations with a cached route.
    pub fn cached_destinations(&self) -> usize {
        self.route_cache.len()
    }

    /// The relay list of the best cached route to `dip` at time `now`
    /// (empty = direct), if any survives credit filtering.
    pub fn cached_route(&self, dip: &Ipv6Addr, now: SimTime) -> Option<Vec<Ipv6Addr>> {
        self.route_cache
            .best(dip, &self.credits, now)
            .map(|r| r.relays.to_vec())
    }

    /// Test-support: transmit an arbitrary routed message. Integration
    /// tests use this to inject forged or malformed control traffic that
    /// the honest API would never produce.
    #[doc(hidden)]
    pub fn inject_routed(&mut self, ctx: &mut Ctx, path: RouteRecord, msg: Message) -> bool {
        self.send_routed(ctx, path, msg)
    }

    // --- shared internals -------------------------------------------------

    fn alloc_seq(&mut self) -> Seq {
        let s = Seq(self.next_seq);
        self.next_seq += 1;
        s
    }

    fn is_my_addr(&self, ip: &Ipv6Addr) -> bool {
        *ip == self.ident.ip() || (self.dns.is_some() && ip.is_dns_well_known())
    }

    /// An impersonator also listens on its claimed address — the point of
    /// the CGA checks is that nothing is ever *sent* there, because its
    /// forged replies are rejected upstream.
    fn accepts_addr(&self, ip: &Ipv6Addr) -> bool {
        self.is_my_addr(ip) || self.behavior.impersonate == Some(*ip)
    }

    /// The replay attacker records everything verifiable it overhears.
    fn observe_for_replay(&mut self, env: &Envelope) {
        match &env.msg {
            Message::Arep(a) => {
                self.observed_areps.push(a.clone());
                self.observed_areps.truncate(32);
            }
            Message::Rrep(r) => {
                self.observed_rreps.push(r.clone());
                self.observed_rreps.truncate(32);
            }
            _ => {}
        }
    }
}

impl Protocol for SecureNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.dns.is_some() {
            // The DNS server is pre-deployed infrastructure: it owns its
            // address and name table before the MANET forms (Section 3).
            self.state = NodeState::Ready;
            self.stats.joined_at = Some(ctx.now());
            ctx.count("dad.confirmed", 1);
            return;
        }
        self.begin_dad(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            ctx.count("rx.malformed", 1);
            return;
        };
        self.neighbors.learn(env.src_ip, src, ctx.now());
        if self.behavior.replay {
            self.observe_for_replay(&env);
        }
        match env.source_route {
            Some(_) => {
                let Some(cur) = env.current_hop() else {
                    return;
                };
                if !self.accepts_addr(&cur) {
                    return; // overheard fallback broadcast — not ours
                }
                if env.at_final_hop() {
                    if ctx.tracing() {
                        ctx.trace(Dir::Rx, env.msg.kind(), format!("from {}", env.src_ip));
                    }
                    self.deliver_local(ctx, env);
                } else {
                    self.forward(ctx, env);
                }
            }
            None => match env.msg {
                Message::Areq(areq) => self.handle_areq(ctx, areq),
                Message::Rreq(rreq) => self.handle_rreq(ctx, rreq),
                // Broadcast-fallback deliveries carry a source route and
                // are handled above; other flooded kinds are not part of
                // the protocol.
                _ => ctx.count("rx.unexpected_flood", 1),
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, tag: u64) {
        match tag & TAG_KIND_MASK {
            TAG_DAD => self.on_dad_timer(ctx),
            TAG_RREQ => self.on_rreq_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_ACK => self.on_ack_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_DNS_PENDING => self.dns_on_pending_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_DAD_PROBE => self.on_dad_probe_timer(ctx),
            TAG_ROUTE_PROBE => self.on_route_probe_timer(ctx, tag & !TAG_KIND_MASK),
            _ => {}
        }
    }

    fn on_link_failure(&mut self, ctx: &mut Ctx, _to: NodeId, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            return;
        };
        let Some(path) = env.source_route.clone() else {
            return;
        };
        let Some(next) = env.current_hop() else {
            return;
        };
        self.neighbors.forget(&next);
        let me = self.ident.ip();
        // The failed transmitter was us; the broken link is me → next in
        // route-cache terms only if we were the path head, otherwise it
        // is (our address) → next anyway since we were forwarding.
        self.route_cache.remove_link(me, me, next);
        if matches!(env.msg, Message::Data(_)) {
            let my_idx = (env.sr_index as usize).saturating_sub(1);
            if path.0.first() == Some(&me) {
                // We are the source: no RERR to send; the ACK timeout
                // will retry over another route.
                ctx.count("route.source_link_failures", 1);
            } else {
                self.originate_rerr(ctx, &path, my_idx, next);
            }
        }
    }

    fn prefetch_frame(&self, src: NodeId, bytes: &[u8]) {
        self.prefetch_frame_impl(src, bytes);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_wire::{Rerr, DNS_WELL_KNOWN, UNSPECIFIED};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn mk_node(seed: u64) -> SecureNode {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let dns_kp = manet_crypto::KeyPair::generate(512, &mut rng);
        SecureNode::new(
            ProtocolConfig::default(),
            dns_kp.public().clone(),
            Some(DomainName::new("node").unwrap()),
            &mut rng,
        )
    }

    #[test]
    fn fresh_node_is_not_ready() {
        let n = mk_node(1);
        assert!(!n.is_ready());
        assert!(!n.is_dns());
        assert!(n.ip().is_site_local());
        assert_eq!(n.stats().dad_attempts, 0);
    }

    #[test]
    fn dns_node_knows_its_own_key() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        assert!(dns.is_dns());
        assert_eq!(dns.dns_pk, *dns.ident.public());
    }

    #[test]
    fn timer_tags_partition() {
        assert_eq!(TAG_DAD & TAG_KIND_MASK, TAG_DAD);
        assert_eq!((TAG_RREQ | 12345) & TAG_KIND_MASK, TAG_RREQ);
        assert_eq!((TAG_ACK | 12345) & !TAG_KIND_MASK, 12345);
        assert_ne!(TAG_RREQ, TAG_ACK);
        assert_ne!(TAG_ACK, TAG_DNS_PENDING);
    }

    #[test]
    fn seq_allocation_is_monotonic() {
        let mut n = mk_node(3);
        let a = n.alloc_seq();
        let b = n.alloc_seq();
        assert!(b.0 > a.0);
    }

    #[test]
    fn final_hop_broadcast_rule_covers_dad_replies_only() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let id = crate::identity::HostIdentity::generate(512, &mut rng);
        let sip = id.ip();
        let other = crate::identity::HostIdentity::generate(512, &mut rng).ip();
        let proof = manet_wire::IdentityProof {
            pk: id.public().clone(),
            rn: id.rn(),
            sig: id.sign(b"x"),
        };
        let arep = Message::Arep(Arep {
            sip,
            rr: RouteRecord::new(),
            proof: proof.clone(),
        });
        // AREP toward the disputed (mid-DAD, link-layer-ambiguous)
        // address: always broadcast.
        assert!(SecureNode::final_hop_must_broadcast(&arep, &sip));
        // AREP toward anyone else (the DNS warning copy): normal unicast.
        assert!(!SecureNode::final_hop_must_broadcast(&arep, &other));
        // Other message kinds never force a broadcast.
        let rerr = Message::Rerr(Rerr {
            iip: sip,
            i2ip: other,
            proof,
        });
        assert!(!SecureNode::final_hop_must_broadcast(&rerr, &sip));
    }

    #[test]
    fn probe_state_defaults_off() {
        let n = mk_node(8);
        assert!(!n.cfg.probe_enabled);
        assert!(n.pending_probes.is_empty());
        assert_eq!(n.stats().probes_sent, 0);
    }

    #[test]
    fn tx_src_is_unspecified_until_ready() {
        let n = mk_node(10);
        assert_eq!(n.tx_src_ip(), UNSPECIFIED, "Boot state sends as ::");
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        // The DNS starts Ready only after on_start; in Boot it is :: too.
        assert_eq!(dns.tx_src_ip(), UNSPECIFIED);
    }

    #[test]
    fn is_my_addr_covers_anycast_only_for_dns() {
        let n = mk_node(4);
        assert!(n.is_my_addr(&n.ip()));
        assert!(!n.is_my_addr(&DNS_WELL_KNOWN[0]));
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        assert!(dns.is_my_addr(&DNS_WELL_KNOWN[0]));
        assert!(dns.is_my_addr(&dns.ip()));
    }

    #[test]
    fn verify_cache_present_by_default_and_togglable() {
        let n = mk_node(12);
        let cache = n.verify_cache().expect("default config enables the cache");
        assert_eq!(
            cache.capacity(),
            ProtocolConfig::default().verify_cache_capacity
        );
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let dns_kp = manet_crypto::KeyPair::generate(512, &mut rng);
        let off = SecureNode::new(
            ProtocolConfig {
                verify_cache: false,
                ..ProtocolConfig::default()
            },
            dns_kp.public().clone(),
            None,
            &mut rng,
        );
        assert!(off.verify_cache().is_none());
    }
}
