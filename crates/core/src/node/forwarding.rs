//! The data plane: source-routed transmission, per-hop forwarding with
//! the paper's broadcast-fallback footnote, Data/Ack end-to-end retries,
//! and the pre-route send buffer.

use super::{PendingAck, Queued, SecureNode, TAG_ACK};
use crate::envelope::Envelope;
use manet_sim::{Ctx, Dir, NodeId, SimTime};
use manet_wire::{
    sigdata, Ack, Data, DnsQuery, IpChangeRequest, Ipv6Addr, Message, RouteRecord, Seq, UNSPECIFIED,
};
use rand::Rng;

impl SecureNode {
    // --- application API (call via `Engine::with_protocol`) ---------------

    /// Send `payload` to `dip`, discovering a route if needed.
    pub fn send_data(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, payload: Vec<u8>) {
        self.stats.data_sent += 1;
        ctx.count("app.data_sent", 1);
        let seq = self.alloc_seq();
        if !self.is_ready() {
            self.enqueue(ctx, dip, Queued::Data { seq }, &payload);
            return;
        }
        if !self.try_send_data(ctx, seq, dip, payload.clone(), 0) {
            self.enqueue(ctx, dip, Queued::Data { seq }, &payload);
            self.ensure_route(ctx, dip);
        }
    }

    // --- transmission plumbing --------------------------------------------

    /// Queue `q` for `dest`; `payload` is the data bytes for a
    /// [`Queued::Data`] entry (empty for control variants) and is
    /// copied into the buffer arena.
    pub(super) fn enqueue(&mut self, ctx: &mut Ctx, dest: Ipv6Addr, q: Queued, payload: &[u8]) {
        if self.send_buffer.len() >= self.cfg.max_send_buffer {
            // Oldest-first drop; count the casualty if it was data.
            if let Some((_, Queued::Data { .. })) = self.send_buffer.drop_front() {
                self.stats.data_failed += 1;
                ctx.count("app.data_failed", 1);
            }
        }
        self.send_buffer.push_back(dest, q, payload);
    }

    /// Full forwarding path to `dip` from the route cache.
    pub(super) fn path_to(&self, now: SimTime, dip: &Ipv6Addr) -> Option<RouteRecord> {
        let r = self.route_cache.best(dip, &self.credits, now)?;
        Some(r.full_path(self.ident.ip(), *dip))
    }

    /// The paper's footnote: the last hop of an AREP (or DREP) toward a
    /// mid-DAD host must be a link broadcast — the claimed address is not
    /// yet legal, and during a genuine collision it is *ambiguous* (the
    /// owner's transmissions map it to the owner in neighbor caches, so a
    /// unicast would deliver the collision notice back to the owner).
    pub(super) fn final_hop_must_broadcast(msg: &Message, final_dst: &Ipv6Addr) -> bool {
        match msg {
            Message::Arep(a) => a.sip == *final_dst,
            Message::Drep(d) => d.sip == *final_dst,
            _ => false,
        }
    }

    /// Transmit `msg` along `path` (this node must be `path[0]`). Returns
    /// false when the first hop is unresolvable and no broadcast fallback
    /// applies.
    pub(crate) fn send_routed(&mut self, ctx: &mut Ctx, path: RouteRecord, msg: Message) -> bool {
        debug_assert!(path.len() >= 2);
        let next = path.0[1];
        let at_final = path.len() == 2;
        if at_final && Self::final_hop_must_broadcast(&msg, &next) {
            let env = Envelope::routed(self.tx_src_ip(), path, msg);
            self.tx(ctx, None, env);
            return true;
        }
        let env = Envelope::routed(self.tx_src_ip(), path.clone(), msg);
        let kind = env.msg.kind();
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
            return true;
        }
        // Unknown next hop: legal only for a final hop to an address-less
        // (mid-DAD) or silent host — fall back to link broadcast.
        if at_final {
            self.tx(ctx, None, env);
            return true;
        }
        ctx.count("route.first_hop_unresolved", 1);
        ctx.trace(
            Dir::Drop,
            "ROUTE",
            format!("{kind}: first hop {next} unresolved"),
        );
        false
    }

    /// Source address for outgoing frames (`::` while in DAD, like real
    /// IPv6 DAD probes).
    pub(super) fn tx_src_ip(&self) -> Ipv6Addr {
        if self.is_ready() {
            self.ident.ip()
        } else {
            UNSPECIFIED
        }
    }

    pub(super) fn tx(&mut self, ctx: &mut Ctx, to: Option<NodeId>, env: Envelope) {
        let kind = env.msg.kind();
        // Recycled frame buffer: see the plain stack's `tx` — same
        // zero-alloc steady-state transmit path.
        let mut bytes = ctx.frame_buf();
        env.encode_into(&mut bytes);
        ctx.count("ctl.tx_msgs", 1);
        ctx.count("ctl.tx_bytes", bytes.len() as u64);
        if env.msg.is_table1_control() {
            ctx.count("ctl.table1_bytes", bytes.len() as u64);
        }
        if !matches!(env.msg, Message::Data(_) | Message::Ack(_)) {
            ctx.count("ctl.routing_bytes", bytes.len() as u64);
        }
        if ctx.tracing() {
            let detail = match &env.source_route {
                Some(p) => format!("→{} ({} hops)", p.0.last().expect("nonempty"), p.len() - 1),
                None => "flood".to_owned(),
            };
            ctx.trace(Dir::Tx, kind, detail);
        }
        match to {
            Some(node) => ctx.unicast(node, bytes),
            None => ctx.broadcast(bytes),
        }
    }

    fn try_send_data(
        &mut self,
        ctx: &mut Ctx,
        seq: Seq,
        dip: Ipv6Addr,
        payload: Vec<u8>,
        retries: u32,
    ) -> bool {
        let Some(path) = self.path_to(ctx.now(), &dip) else {
            return false;
        };
        let relays = path.0[1..path.len() - 1].to_vec();
        let msg = Message::Data(Data {
            sip: self.ident.ip(),
            dip,
            seq,
            route: path.clone(),
            payload: payload.clone(),
        });
        if !self.send_routed(ctx, path, msg) {
            // First hop gone: scrub the stale route and report failure so
            // the caller can rediscover.
            let me = self.ident.ip();
            self.route_cache.remove_link(me, me, dip);
            return false;
        }
        self.pending_acks.insert(
            seq.0,
            PendingAck {
                dip,
                payload,
                relays,
                retries,
                first_sent: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.ack_timeout, TAG_ACK | seq.0);
        true
    }

    /// Flush queued work for `dest` after a route appeared.
    pub(super) fn flush_buffer(&mut self, ctx: &mut Ctx, dest: Ipv6Addr) {
        // Full-length rotation over the arena-backed buffer: identical
        // entry order and retry behavior to the old take-and-requeue
        // loop, with payload spans recycled in place.
        for _ in 0..self.send_buffer.len() {
            let (d, q, payload) = self.send_buffer.pop_front().expect("within len");
            if d != dest {
                self.send_buffer.push_back(d, q, &payload);
                continue;
            }
            match q {
                Queued::Data { seq } => {
                    if !self.try_send_data(ctx, seq, d, payload.clone(), 0) {
                        self.send_buffer
                            .push_back(d, Queued::Data { seq }, &payload);
                    }
                }
                Queued::DnsQuery { qname, ch } => {
                    if let Some(path) = self.path_to(ctx.now(), &d) {
                        let msg = Message::DnsQuery(DnsQuery {
                            requester: self.ident.ip(),
                            qname,
                            ch,
                            route: path.clone(),
                        });
                        self.send_routed(ctx, path, msg);
                    } else {
                        self.send_buffer
                            .push_back(d, Queued::DnsQuery { qname, ch }, &[]);
                    }
                }
                Queued::ArepWarning { arep } => {
                    if let Some(path) = self.path_to(ctx.now(), &d) {
                        self.send_routed(ctx, path, Message::Arep(arep));
                    } else {
                        self.send_buffer
                            .push_back(d, Queued::ArepWarning { arep }, &[]);
                    }
                }
                Queued::IpChangeRequest { dn } => {
                    if let (Some(pending), Some(path)) =
                        (&self.pending_ip_change, self.path_to(ctx.now(), &d))
                    {
                        let msg = Message::IpChangeRequest(IpChangeRequest {
                            dn,
                            old_ip: pending.old_ip,
                            new_ip: pending.new_ip,
                            route: path.clone(),
                        });
                        self.send_routed(ctx, path, msg);
                    }
                }
            }
        }
    }

    /// Fail everything queued for `dest` (route discovery exhausted).
    pub(super) fn fail_buffer(&mut self, ctx: &mut Ctx, dest: Ipv6Addr) {
        let dropped = self.send_buffer.remove_dest(dest) as u64;
        if dropped > 0 {
            self.stats.data_failed += dropped;
            ctx.count("app.data_failed", dropped);
            ctx.count("route.discovery_failed", 1);
        }
    }

    // --- routed delivery ----------------------------------------------------

    pub(super) fn deliver_local(&mut self, ctx: &mut Ctx, env: Envelope) {
        let path = env.source_route.clone().unwrap_or_default();
        match env.msg {
            Message::Arep(arep) => self.handle_arep(ctx, arep),
            Message::Drep(drep) => self.handle_drep(ctx, drep),
            Message::Rrep(rrep) => self.handle_rrep(ctx, rrep),
            Message::Crep(crep) => self.handle_crep(ctx, crep),
            Message::Rerr(rerr) => self.handle_rerr(ctx, rerr),
            Message::Data(data) => self.handle_data(ctx, data),
            Message::Ack(ack) => self.handle_ack(ctx, ack),
            Message::Probe(probe) => {
                // We are the probed destination: acknowledge.
                let back: Vec<Ipv6Addr> = probe.route.reversed().0;
                self.send_probe_ack(ctx, &probe, back);
            }
            Message::ProbeAck(ack) => self.handle_probe_ack(ctx, ack),
            Message::DnsQuery(q) => {
                if self.dns.is_some() {
                    self.dns_on_query(ctx, q, &path);
                }
            }
            Message::DnsReply(r) => self.handle_dns_reply(ctx, r),
            Message::IpChangeRequest(r) => {
                if self.dns.is_some() {
                    self.dns_on_ip_change_request(ctx, r, &path);
                }
            }
            Message::IpChangeChallenge(c) => self.handle_ip_change_challenge(ctx, c, &path),
            Message::IpChangeProof(p) => {
                if self.dns.is_some() {
                    self.dns_on_ip_change_proof(ctx, p, &path);
                }
            }
            Message::IpChangeResult(r) => self.handle_ip_change_result(ctx, r),
            // Floods never arrive source-routed; plain-DSR messages are
            // not spoken by secure nodes.
            _ => ctx.count("rx.unexpected_routed", 1),
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx, data: Data) {
        self.stats.data_received += 1;
        ctx.count("app.data_received", 1);
        ctx.sample("app.data_bytes", data.payload.len() as f64);
        // End-to-end acknowledgement drives the credit system.
        let ack = Ack {
            sip: data.sip,
            dip: data.dip,
            seq: data.seq,
            route: data.route.clone(),
        };
        let path = data.route.reversed();
        if path.len() >= 2 {
            self.send_routed(ctx, path, Message::Ack(ack));
        }
    }

    fn handle_ack(&mut self, ctx: &mut Ctx, ack: Ack) {
        let Some(pending) = self.pending_acks.remove(&ack.seq.0) else {
            return;
        };
        self.consecutive_timeouts.remove(&pending.dip);
        self.stats.data_acked += 1;
        ctx.count("app.data_acked", 1);
        ctx.sample(
            "app.e2e_latency_s",
            ctx.now().since(pending.first_sent).as_secs_f64(),
        );
        // "Whenever a data packet is correctly acknowledged by D, the
        // credit of each host in the route is increased by one."
        self.credits.reward_route(&pending.relays);
    }

    // --- forwarding ----------------------------------------------------------

    pub(super) fn forward(&mut self, ctx: &mut Ctx, mut env: Envelope) {
        let path = env.source_route.clone().expect("routed");
        let idx = env.sr_index as usize;

        if let Message::Data(_) = env.msg {
            // Black/grey hole: accept and discard (Section 4's black hole).
            if self.behavior.data_drop_prob > 0.0
                && ctx.rng().gen::<f64>() < self.behavior.data_drop_prob
            {
                self.stats.atk_data_dropped += 1;
                ctx.count("atk.data_dropped", 1);
                ctx.trace(Dir::Drop, "DATA", "black hole: swallowing packet");
                return;
            }
        }

        if let Message::Probe(probe) = &env.msg {
            // A naive dropper swallows probes like everything else and is
            // localized; an evader acknowledges and forwards.
            if self.behavior.data_drop_prob > 0.0
                && !self.behavior.evade_probes
                && ctx.rng().gen::<f64>() < self.behavior.data_drop_prob
            {
                self.stats.atk_data_dropped += 1;
                ctx.count("atk.probe_dropped", 1);
                return;
            }
            let probe = probe.clone();
            let back: Vec<Ipv6Addr> = path.0[..=idx].iter().rev().copied().collect();
            self.send_probe_ack(ctx, &probe, back);
            // …and fall through to normal forwarding below.
        }

        // DNS impersonation: a malicious relay answers the query itself
        // with a forged signature (and suppresses the real one).
        if self.behavior.forge_dns {
            if let Message::DnsQuery(q) = &env.msg {
                let forged_sig =
                    self.ident
                        .sign(&sigdata::dns_reply(&q.qname, Some(&self.ident.ip()), q.ch));
                let reply = Message::DnsReply(manet_wire::DnsReply {
                    requester: q.requester,
                    qname: q.qname.clone(),
                    answer: Some(self.ident.ip()),
                    sig: forged_sig,
                    route: RouteRecord::new(),
                });
                self.stats.atk_forged_dns += 1;
                ctx.count("atk.forged_dns", 1);
                let back: Vec<Ipv6Addr> = path.0[..=idx].iter().rev().copied().collect();
                if back.len() >= 2 {
                    self.send_routed(ctx, RouteRecord(back), reply);
                }
                return; // swallow the query
            }
        }

        let next = path.0[idx + 1];
        env.sr_index += 1;
        env.src_ip = self.ident.ip();
        let is_data = matches!(env.msg, Message::Data(_));
        ctx.count("route.forwarded", 1);
        let final_next = idx + 1 == path.len() - 1;
        if final_next && Self::final_hop_must_broadcast(&env.msg, &next) {
            // Footnote broadcast: see final_hop_must_broadcast.
            ctx.count("route.broadcast_fallback", 1);
            self.tx(ctx, None, env);
            return;
        }
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
            // RERR spam: after dutifully forwarding, falsely report the
            // link broken to poison the source's cache (Section 4's
            // forged-RERR case — the report is *signed honestly* by us,
            // so it passes verification; the defense is frequency
            // tracking + credits).
            if self.behavior.rerr_spam && is_data {
                self.stats.atk_spam_rerr += 1;
                ctx.count("atk.rerr_spam", 1);
                self.originate_rerr(ctx, &path, idx, next);
            }
        } else if idx + 1 == path.len() - 1 {
            // Last hop to a host we cannot resolve (mid-DAD joiner or
            // silent neighbor): link-layer broadcast, per the paper's
            // footnote on the final AREP hop.
            ctx.count("route.broadcast_fallback", 1);
            self.tx(ctx, None, env);
        } else {
            // Broken link with no cached neighbor: report it.
            self.neighbors.forget(&next);
            let me = self.ident.ip();
            self.route_cache.remove_link(me, me, next);
            if is_data {
                self.originate_rerr(ctx, &path, idx, next);
            }
        }
    }

    // --- timers ---------------------------------------------------------------

    pub(super) fn on_ack_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some(pending) = self.pending_acks.remove(&seq) else {
            return; // acked in time
        };
        // Weak evidence against every relay: a black hole accrues it from
        // every flow it swallows (Section 3.4).
        self.credits.penalize_route(&pending.relays);
        ctx.count("app.ack_timeouts", 1);
        // Persistent loss toward one destination triggers a route probe
        // ("test the integrality of each host") when enabled.
        let misses = self
            .consecutive_timeouts
            .entry(pending.dip)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        if self.cfg.probe_enabled && *misses >= self.cfg.probe_after {
            self.launch_probe(ctx, pending.dip, &pending.relays);
        }
        if pending.retries < self.cfg.data_retries {
            // Retry — possibly over a different route now that credits
            // shifted. If the same route is still chosen, that is what the
            // credit experiment measures.
            if self.try_send_data(
                ctx,
                Seq(seq),
                pending.dip,
                pending.payload.clone(),
                pending.retries + 1,
            ) {
                return;
            }
            // No usable route: rediscover and queue.
            let dip = pending.dip;
            self.enqueue(ctx, dip, Queued::Data { seq: Seq(seq) }, &pending.payload);
            self.ensure_route(ctx, dip);
            return;
        }
        self.stats.data_failed += 1;
        ctx.count("app.data_failed", 1);
    }
}
