//! Whole-network scenario construction and measurement.
//!
//! Everything downstream — integration tests, examples, the bench
//! harness — builds networks through this module so topology, staggered
//! bootstrap, attacker placement, and metric extraction live in one
//! place.
//!
//! A note on cold boots: extended DAD relies on already-joined hosts to
//! relay AREQ floods, so simultaneous joins only probe one hop (the same
//! is true of the draft the paper builds on). Scenarios therefore stagger
//! joins by [`NetworkParams::join_stagger`], which also gives the DNS a
//! serialized stream of registrations.

use crate::config::{Behavior, ProtocolConfig};
use crate::node::SecureNode;
use crate::plain::{PlainConfig, PlainDsrNode};
use manet_sim::{
    placement, ChannelMode, Engine, EngineConfig, Field, Mobility, NodeId, Pos, RadioConfig,
    SimDuration, SimTime,
};
use manet_wire::{DomainName, Ipv6Addr};

/// Node placement shapes.
#[derive(Clone, Debug)]
pub enum Placement {
    /// A line with the given spacing; with default radio range (250 m)
    /// use 150–240 m for a strict multi-hop chain.
    Chain { spacing: f64 },
    /// A grid with `cols` columns.
    Grid { cols: usize, spacing: f64 },
    /// Uniformly random on the engine's field.
    Uniform,
    /// Explicit positions; index 0 is the DNS, the rest are hosts in
    /// order. Must supply `n_hosts + 1` entries.
    Custom(Vec<Pos>),
}

/// The canonical "bypass" topology for credit experiments: the shortest
/// S→D path runs through one relay (host index [`BYPASS_ATTACKER`]),
/// and a two-relay detour exists around it. Use with `n_hosts = 5`;
/// host 0 is S, host 2 is D.
pub fn bypass_positions() -> Vec<Pos> {
    vec![
        Pos::new(0.0, 200.0),   // DNS, near S
        Pos::new(0.0, 0.0),     // h0 = S
        Pos::new(200.0, 0.0),   // h1 = the on-path relay (attacker slot)
        Pos::new(400.0, 0.0),   // h2 = D
        Pos::new(100.0, 170.0), // h3 = detour relay 1
        Pos::new(300.0, 170.0), // h4 = detour relay 2
    ]
}

/// The host index sitting on the shortest path of [`bypass_positions`].
pub const BYPASS_ATTACKER: usize = 1;

/// Everything that defines a secure-network scenario.
#[derive(Clone, Debug)]
pub struct NetworkParams {
    /// Number of hosts, excluding the DNS server node.
    pub n_hosts: usize,
    pub placement: Placement,
    pub mobility: Mobility,
    pub field: Field,
    pub radio: RadioConfig,
    pub proto: ProtocolConfig,
    pub seed: u64,
    pub trace: bool,
    /// Delay between consecutive host joins (see module docs).
    pub join_stagger: SimDuration,
    /// `(host index, behavior)` pairs for attacker nodes.
    pub attackers: Vec<(usize, Behavior)>,
    /// Register a domain name (`h<i>.manet`) for every host during DAD.
    pub register_names: bool,
    /// Host indices whose names are pre-registered at the DNS before
    /// network formation (the paper's permanent servers).
    pub pre_register: Vec<usize>,
    /// Per-host overrides of the registered name (defaults to `h<i>.manet`).
    pub name_overrides: Vec<(usize, String)>,
    /// Receiver lookup strategy; `Grid` unless a differential test or
    /// baseline measurement wants the linear scan.
    pub channel: ChannelMode,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            n_hosts: 8,
            placement: Placement::Chain { spacing: 180.0 },
            mobility: Mobility::Static,
            field: Field::new(2000.0, 2000.0),
            radio: RadioConfig {
                loss: 0.0,
                ..RadioConfig::default()
            },
            proto: ProtocolConfig::default(),
            seed: 1,
            trace: false,
            // Must exceed ProtocolConfig::dad_timeout: the previous
            // joiner has to be Ready (relaying) before the next AREQ
            // floods.
            join_stagger: SimDuration::from_millis(1_100),
            attackers: Vec::new(),
            register_names: true,
            pre_register: Vec::new(),
            name_overrides: Vec::new(),
            channel: ChannelMode::Grid,
        }
    }
}

/// A built secure network: engine + node handles.
pub struct SecureNetwork {
    pub engine: Engine,
    /// The DNS server node (always placed first).
    pub dns: NodeId,
    /// Host nodes in construction order.
    pub hosts: Vec<NodeId>,
    /// When the last host joins (bootstrap completes some time after).
    pub last_join: SimTime,
}

/// The host's registered name for index `i`.
pub fn host_name(i: usize) -> DomainName {
    DomainName::new(&format!("h{i}.manet")).expect("static name is valid")
}

/// Build a secure network per `params`. Node 0 of the engine is the DNS;
/// hosts join staggered starting at `join_stagger`.
pub fn build_secure(params: &NetworkParams) -> SecureNetwork {
    let n_total = params.n_hosts + 1;
    let positions = positions_for(&params.placement, n_total, &params.field, params.seed);

    let engine_cfg = EngineConfig {
        field: params.field,
        radio: params.radio.clone(),
        seed: params.seed,
        trace: params.trace,
        channel: params.channel,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg);

    // Build every host identity first so pre-registration can know their
    // addresses; the DNS node is constructed from the same RNG stream.
    let mut dns_node = SecureNode::new_dns(params.proto.clone(), Vec::new(), engine.rng());
    let dns_pk = dns_node.public_key().clone();

    let mut host_nodes = Vec::with_capacity(params.n_hosts);
    for i in 0..params.n_hosts {
        let behavior = params
            .attackers
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, b)| b.clone())
            .unwrap_or_default();
        let dn = params.register_names.then(|| {
            params
                .name_overrides
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, name)| DomainName::new(name).expect("valid override name"))
                .unwrap_or_else(|| host_name(i))
        });
        let node = SecureNode::with_behavior(
            params.proto.clone(),
            dns_pk.clone(),
            dn,
            behavior,
            engine.rng(),
        );
        host_nodes.push(node);
    }
    for &i in &params.pre_register {
        dns_node.dns_preregister(host_name(i), host_nodes[i].ip());
    }

    let dns = engine.add_node(Box::new(dns_node), positions[0], Mobility::Static);
    let mut hosts = Vec::with_capacity(params.n_hosts);
    let mut last_join = SimTime::ZERO;
    for (i, node) in host_nodes.into_iter().enumerate() {
        let join_at = SimTime(params.join_stagger.as_micros() * (i as u64 + 1));
        last_join = join_at;
        let id = engine.add_node_at(
            Box::new(node),
            positions[i + 1],
            params.mobility.clone(),
            join_at,
        );
        hosts.push(id);
    }
    SecureNetwork {
        engine,
        dns,
        hosts,
        last_join,
    }
}

fn positions_for(placement: &Placement, n: usize, field: &Field, seed: u64) -> Vec<Pos> {
    use rand::SeedableRng;
    match placement {
        Placement::Chain { spacing } => placement::chain(n, *spacing, field.height / 2.0),
        Placement::Grid { cols, spacing } => placement::grid(n, *cols, *spacing),
        Placement::Uniform => {
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            placement::uniform(n, field, &mut rng)
        }
        Placement::Custom(positions) => {
            assert_eq!(positions.len(), n, "custom placement size mismatch");
            positions.clone()
        }
    }
}

impl SecureNetwork {
    /// Run long enough for every host to finish DAD (and the DNS to
    /// commit their names). Returns whether all hosts are ready.
    pub fn bootstrap(&mut self) -> bool {
        let margin = SimDuration::from_secs(3);
        let until = self.last_join + margin;
        self.engine.run_until(until);
        self.all_ready()
    }

    /// Are all hosts out of DAD?
    pub fn all_ready(&self) -> bool {
        self.hosts
            .iter()
            .all(|&h| self.engine.protocol_as::<SecureNode>(h).is_ready())
    }

    /// A host's current address.
    pub fn host_ip(&self, i: usize) -> Ipv6Addr {
        self.engine.protocol_as::<SecureNode>(self.hosts[i]).ip()
    }

    /// Borrow a host's protocol.
    pub fn host(&self, i: usize) -> &SecureNode {
        self.engine.protocol_as::<SecureNode>(self.hosts[i])
    }

    /// Borrow the DNS node's protocol.
    pub fn dns_node(&self) -> &SecureNode {
        self.engine.protocol_as::<SecureNode>(self.dns)
    }

    /// Have host `from` send `payload` to host `to` right now.
    pub fn send(&mut self, from: usize, to: usize, payload: Vec<u8>) {
        let dst = self.host_ip(to);
        let id = self.hosts[from];
        self.engine.with_protocol::<SecureNode, _>(id, |n, ctx| {
            n.send_data(ctx, dst, payload);
        });
    }

    /// Run `packets` rounds of one packet per flow, spaced by `interval`,
    /// then drain for acks.
    pub fn run_flows(
        &mut self,
        flows: &[(usize, usize)],
        packets: usize,
        interval: SimDuration,
    ) {
        for _ in 0..packets {
            for &(from, to) in flows {
                self.send(from, to, vec![0xda; 64]);
            }
            let next = self.engine.now() + interval;
            self.engine.run_until(next);
        }
        let drain = self.engine.now() + SimDuration::from_secs(5);
        self.engine.run_until(drain);
    }

    /// Network-wide crypto-pipeline totals `(executed, cached, failed)`
    /// summed over every host and the DNS: RSA verifications actually
    /// run, verdicts served from the verify cache, and rejected checks.
    pub fn crypto_totals(&self) -> (u64, u64, u64) {
        let mut totals = (0u64, 0u64, 0u64);
        for &id in self.hosts.iter().chain(std::iter::once(&self.dns)) {
            let s = self.engine.protocol_as::<SecureNode>(id).stats();
            totals.0 += s.crypto_verify_attempted;
            totals.1 += s.crypto_verify_cached;
            totals.2 += s.crypto_verify_failed;
        }
        totals
    }

    /// Fraction of sent data packets that were end-to-end acknowledged,
    /// across all honest hosts.
    pub fn delivery_ratio(&self) -> f64 {
        let (mut sent, mut acked) = (0u64, 0u64);
        for &h in &self.hosts {
            let n = self.engine.protocol_as::<SecureNode>(h);
            sent += n.stats().data_sent;
            acked += n.stats().data_acked;
        }
        if sent == 0 {
            return f64::NAN;
        }
        acked as f64 / sent as f64
    }
}

impl SecureNode {
    /// Pre-register a (name, address) pair at this DNS node — only
    /// meaningful before the network starts (Section 3's permanent
    /// entries).
    pub fn dns_preregister(&mut self, dn: DomainName, ip: Ipv6Addr) {
        if let Some(dns) = &mut self.dns {
            dns.preregister(dn, ip);
        }
    }
}

// ---------------------------------------------------------------------------
// Plain-DSR baseline network
// ---------------------------------------------------------------------------

/// Parameters for a plain-DSR network (no DNS node, no DAD).
#[derive(Clone, Debug)]
pub struct PlainParams {
    pub n_hosts: usize,
    pub placement: Placement,
    pub mobility: Mobility,
    pub field: Field,
    pub radio: RadioConfig,
    pub proto: PlainConfig,
    pub seed: u64,
    pub trace: bool,
    pub attackers: Vec<(usize, Behavior)>,
    pub channel: ChannelMode,
}

impl Default for PlainParams {
    fn default() -> Self {
        PlainParams {
            n_hosts: 8,
            placement: Placement::Chain { spacing: 180.0 },
            mobility: Mobility::Static,
            field: Field::new(2000.0, 2000.0),
            radio: RadioConfig {
                loss: 0.0,
                ..RadioConfig::default()
            },
            proto: PlainConfig::default(),
            seed: 1,
            trace: false,
            attackers: Vec::new(),
            channel: ChannelMode::Grid,
        }
    }
}

/// A built plain-DSR network.
pub struct PlainNetwork {
    pub engine: Engine,
    pub hosts: Vec<NodeId>,
    ips: Vec<Ipv6Addr>,
}

/// Build the baseline network. Addresses are assigned up front (plain
/// DSR has no autoconfiguration story — that asymmetry *is* the paper's
/// bootstrap contribution).
pub fn build_plain(params: &PlainParams) -> PlainNetwork {
    let positions = positions_for(&params.placement, params.n_hosts, &params.field, params.seed);
    let engine_cfg = EngineConfig {
        field: params.field,
        radio: params.radio.clone(),
        seed: params.seed,
        trace: params.trace,
        channel: params.channel,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg);
    let ips: Vec<Ipv6Addr> = (0..params.n_hosts)
        .map(|_| PlainDsrNode::random_ip(engine.rng()))
        .collect();
    let mut hosts = Vec::with_capacity(params.n_hosts);
    for i in 0..params.n_hosts {
        let behavior = params
            .attackers
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, b)| b.clone())
            .unwrap_or_default();
        let node = PlainDsrNode::with_behavior(params.proto.clone(), ips[i], behavior);
        let id = engine.add_node(Box::new(node), positions[i], params.mobility.clone());
        hosts.push(id);
    }
    PlainNetwork { engine, hosts, ips }
}

impl PlainNetwork {
    pub fn host_ip(&self, i: usize) -> Ipv6Addr {
        self.ips[i]
    }

    pub fn host(&self, i: usize) -> &PlainDsrNode {
        self.engine.protocol_as::<PlainDsrNode>(self.hosts[i])
    }

    pub fn send(&mut self, from: usize, to: usize, payload: Vec<u8>) {
        let dst = self.ips[to];
        let id = self.hosts[from];
        self.engine.with_protocol::<PlainDsrNode, _>(id, |n, ctx| {
            n.send_data(ctx, dst, payload);
        });
    }

    pub fn run_flows(
        &mut self,
        flows: &[(usize, usize)],
        packets: usize,
        interval: SimDuration,
    ) {
        // Give the static network a beat so neighbor caches can form from
        // the first floods.
        for _ in 0..packets {
            for &(from, to) in flows {
                self.send(from, to, vec![0xda; 64]);
            }
            let next = self.engine.now() + interval;
            self.engine.run_until(next);
        }
        let drain = self.engine.now() + SimDuration::from_secs(5);
        self.engine.run_until(drain);
    }

    pub fn delivery_ratio(&self) -> f64 {
        let (mut sent, mut acked) = (0u64, 0u64);
        for &h in &self.hosts {
            let n = self.engine.protocol_as::<PlainDsrNode>(h);
            sent += n.stats().data_sent;
            acked += n.stats().data_acked;
        }
        if sent == 0 {
            return f64::NAN;
        }
        acked as f64 / sent as f64
    }

    /// Mean link-layer degree over alive hosts — the density check for
    /// randomly placed scale scenarios. Allocation-free per host via
    /// [`Engine::neighbors_into`].
    pub fn mean_degree(&self) -> f64 {
        let mut nbrs = Vec::new();
        let (mut total, mut alive) = (0usize, 0usize);
        for &h in &self.hosts {
            if !self.engine.is_alive(h) {
                continue;
            }
            self.engine.neighbors_into(h, &mut nbrs);
            total += nbrs.len();
            alive += 1;
        }
        if alive == 0 {
            return f64::NAN;
        }
        total as f64 / alive as f64
    }
}

// ---------------------------------------------------------------------------
// Scale scenario family
// ---------------------------------------------------------------------------

/// The `scale` family: thousands of plain-DSR nodes uniformly placed on
/// a field sized for a target radio density, with background mobility
/// and node-failure churn. This is the workload the spatial-index
/// channel exists for — at these sizes the linear receiver scan makes
/// flooding O(n²) per discovery and dominates wall time.
///
/// Plain DSR (no RSA, no DAD) keeps per-node cost flat so the channel
/// layer — not key generation — is what's being measured.
#[derive(Clone, Debug)]
pub struct ScaleParams {
    pub n_hosts: usize,
    pub field: Field,
    pub radio: RadioConfig,
    pub mobility: Mobility,
    pub proto: PlainConfig,
    pub seed: u64,
    pub channel: ChannelMode,
    /// Nodes killed at deterministic random times in `churn_window`.
    pub churn_kills: usize,
    /// `(start, end)` of the kill window.
    pub churn_window: (SimTime, SimTime),
}

impl ScaleParams {
    /// Field edge that gives `n` uniformly placed nodes an expected
    /// radio degree of `target`: solve `n·πr²/A = target` for a square.
    pub fn field_for_density(n: usize, range: f64, target: f64) -> Field {
        let area = n as f64 * std::f64::consts::PI * range * range / target;
        let edge = area.sqrt();
        Field::new(edge, edge)
    }

    /// The S1 exhibit shape: 2,000 nodes at expected degree ~15, slow
    /// random-waypoint mobility, 2% of the population failing mid-run.
    pub fn s1(seed: u64) -> Self {
        let radio = RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        };
        let n = 2000;
        ScaleParams {
            n_hosts: n,
            field: Self::field_for_density(n, radio.range, 15.0),
            radio,
            mobility: Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            },
            proto: PlainConfig::default(),
            seed,
            channel: ChannelMode::Grid,
            churn_kills: 40,
            churn_window: (SimTime(4_000_000), SimTime(10_000_000)),
        }
    }

    /// A scaled-down variant for tests and micro-benches.
    pub fn small(n_hosts: usize, seed: u64) -> Self {
        let mut p = Self::s1(seed);
        p.field = Self::field_for_density(n_hosts, p.radio.range, 15.0);
        p.n_hosts = n_hosts;
        p.churn_kills = n_hosts / 50;
        p
    }
}

/// Build a scale network: uniform placement, simultaneous joins (plain
/// DSR needs no staggered DAD), churn kills pre-scheduled from the
/// engine's own RNG so the whole run stays a pure function of the seed.
pub fn build_scale(params: &ScaleParams) -> PlainNetwork {
    use rand::Rng;
    let mut net = build_plain(&PlainParams {
        n_hosts: params.n_hosts,
        placement: Placement::Uniform,
        mobility: params.mobility.clone(),
        field: params.field,
        radio: params.radio.clone(),
        proto: params.proto.clone(),
        seed: params.seed,
        trace: false,
        attackers: Vec::new(),
        channel: params.channel,
    });
    let (start, end) = params.churn_window;
    // Distinct victims: a duplicate pick would double-count in
    // `sim.nodes_killed` and overstate the real churn level.
    let mut victims = std::collections::HashSet::new();
    while victims.len() < params.churn_kills.min(params.n_hosts) {
        victims.insert(net.engine.rng().gen_range(0..params.n_hosts));
    }
    let mut victims: Vec<usize> = victims.into_iter().collect();
    victims.sort_unstable(); // HashSet order must not leak into the schedule
    for v in victims {
        let at = SimTime(net.engine.rng().gen_range(start.0..=end.0));
        net.engine.kill_at(net.hosts[v], at);
    }
    net
}

/// Deterministically pick `n_flows` source→destination pairs from the
/// largest radio component reachable from a few probe hosts, so scale
/// runs measure routing rather than unreachable-by-construction pairs.
/// Draws from the engine RNG (stays inside the seeded universe).
pub fn scale_flows(net: &mut PlainNetwork, n_flows: usize) -> Vec<(usize, usize)> {
    use rand::Rng;
    let probes: Vec<usize> = [0usize, 1, 2, 3]
        .iter()
        .map(|&i| i * net.hosts.len() / 4)
        .collect();
    let component = probes
        .into_iter()
        .map(|i| net.engine.connected_component(net.hosts[i]))
        .max_by_key(|c| c.len())
        .unwrap_or_default();
    // Map engine ids back to host indices (hosts are added in order, so
    // NodeId(i) is host i in a plain network).
    let pool: Vec<usize> = component.into_iter().map(|id| id.0).collect();
    if pool.len() < 2 {
        return Vec::new();
    }
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let a = pool[net.engine.rng().gen_range(0..pool.len())];
        let b = pool[net.engine.rng().gen_range(0..pool.len())];
        if a != b {
            flows.push((a, b));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(n: usize, seed: u64) -> NetworkParams {
        NetworkParams {
            n_hosts: n,
            seed,
            ..NetworkParams::default()
        }
    }

    #[test]
    fn secure_chain_bootstraps_all_hosts() {
        let mut net = build_secure(&small_params(4, 7));
        assert!(net.bootstrap(), "every host must finish DAD");
        for i in 0..4 {
            let n = net.host(i);
            assert!(n.is_ready());
            assert_eq!(n.stats().dad_attempts, 1, "no collisions expected");
            assert!(n.ip().is_site_local());
        }
        // All addresses distinct.
        let mut ips: Vec<_> = (0..4).map(|i| net.host_ip(i)).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 4);
    }

    #[test]
    fn dns_commits_host_names_during_bootstrap() {
        let mut net = build_secure(&small_params(3, 8));
        assert!(net.bootstrap());
        let dns = net.dns_node().dns_state().expect("dns role");
        for i in 0..3 {
            assert_eq!(
                dns.lookup(&host_name(i)),
                Some(net.host_ip(i)),
                "h{i} must be committed"
            );
        }
    }

    #[test]
    fn data_flows_end_to_end_over_multiple_hops() {
        let mut net = build_secure(&small_params(5, 9));
        assert!(net.bootstrap());
        net.run_flows(&[(0, 4)], 10, SimDuration::from_millis(300));
        let ratio = net.delivery_ratio();
        assert!(ratio > 0.9, "delivery ratio {ratio} too low");
        // The receiving host actually saw the packets.
        assert!(net.host(4).stats().data_received >= 9);
    }

    #[test]
    fn plain_network_delivers_without_security() {
        let mut net = build_plain(&PlainParams {
            n_hosts: 5,
            seed: 10,
            ..PlainParams::default()
        });
        net.run_flows(&[(0, 4)], 10, SimDuration::from_millis(300));
        let ratio = net.delivery_ratio();
        assert!(ratio > 0.9, "plain delivery ratio {ratio} too low");
    }

    #[test]
    fn host_names_are_valid_and_distinct() {
        assert_ne!(host_name(0), host_name(1));
        assert_eq!(host_name(3).as_str(), "h3.manet");
    }
}
