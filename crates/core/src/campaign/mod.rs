//! The declarative campaign layer: JSON scenarios, parameter sweeps,
//! and deterministic reports.
//!
//! The paper's claims are parameter studies — delivery and overhead as
//! functions of density, mobility, adversary mix, and key strength.
//! This module turns every such question into a config file instead of
//! a new Rust exhibit:
//!
//! * [`json`] — the dependency-free JSON layer (strict line-tracked
//!   parser, canonical serializer, deep merge, dotted-path writes); the
//!   workspace is offline, so no serde.
//! * [`ScenarioSpec`] — a typed scenario document mapping 1:1 onto
//!   every `ScenarioBuilder` / `SecureBuilder` / `PlainBuilder` /
//!   `Workload` knob, with strict unknown-key rejection and builder
//!   introspection (`from_plain_builder` / `from_secure_builder`) so
//!   any programmatic chain can be captured as a file.
//! * [`CampaignPlan`] — a base document plus factor grids or
//!   Latin-hypercube sampling over any knob, multi-seed repetition,
//!   and [`ToleranceSpec`] pass/fail bands.
//! * [`run_campaign`] — fans (cell × seed) jobs across cores and
//!   renders a canonical-JSON report with wall-clock fields masked
//!   exactly like `RunReport::fingerprint()`, so same plan + same
//!   seeds ⇒ byte-identical bytes.
//!
//! The `campaign` bin (`crates/bench/src/bin/campaign.rs`) is the CLI;
//! `docs/SCENARIO.md` is the complete file-format reference; worked
//! examples live in `campaigns/` and are executed by `tests/campaign.rs`.

pub mod json;
mod plan;
mod runner;
mod spec;

pub use plan::{CampaignPlan, Cell, Factor, SweepMode, ToleranceSpec};
pub use runner::{load_plan, run_campaign, CampaignReport, CellResult, CheckResult, METRICS};
pub use spec::{FieldChoice, FlowSpec, ScenarioSpec, SpecError, StackSpec, WorkloadSpec};
