//! The campaign subsystem's dependency-free JSON layer.
//!
//! The workspace is offline (no serde), so scenario and campaign files
//! go through this mini parser/serializer, in the spirit of
//! `manet-lint`'s TOML-subset reader. Two properties matter more than
//! generality:
//!
//! * **Diagnosable input**: every parsed node remembers its source
//!   line, duplicate object keys are rejected, and trailing garbage is
//!   an error — so `spec.rs` can say *which key on which line* is
//!   wrong.
//! * **Canonical output**: [`canonical`] renders any value with sorted
//!   object keys, fixed float formatting, and two-space indentation,
//!   so equal values serialize to equal bytes. Campaign reports lean on
//!   this for their byte-identity guarantee.

use std::fmt;

/// A parsed JSON value plus the source line it started on (0 for
/// programmatically built values).
#[derive(Clone, Debug, PartialEq)]
pub struct Json {
    pub line: u32,
    pub v: Val,
}

/// The value alternatives. Numbers are `f64` like real JSON; integers
/// survive exactly up to 2^53, far beyond any knob in the format.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered; duplicate keys are rejected at parse time.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn null() -> Self {
        Json {
            line: 0,
            v: Val::Null,
        }
    }
    pub fn bool(b: bool) -> Self {
        Json {
            line: 0,
            v: Val::Bool(b),
        }
    }
    pub fn num(n: f64) -> Self {
        Json {
            line: 0,
            v: Val::Num(n),
        }
    }
    pub fn str(s: impl Into<String>) -> Self {
        Json {
            line: 0,
            v: Val::Str(s.into()),
        }
    }
    pub fn arr(items: Vec<Json>) -> Self {
        Json {
            line: 0,
            v: Val::Arr(items),
        }
    }
    pub fn obj(members: Vec<(String, Json)>) -> Self {
        Json {
            line: 0,
            v: Val::Obj(members),
        }
    }

    /// Object member lookup (None on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match &self.v {
            Val::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.v {
            Val::Null => "null",
            Val::Bool(_) => "bool",
            Val::Num(_) => "number",
            Val::Str(_) => "string",
            Val::Arr(_) => "array",
            Val::Obj(_) => "object",
        }
    }
}

/// A parse failure with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: campaign documents are a few levels deep; anything
/// past this is malformed input, not a real scenario.
const MAX_DEPTH: u32 = 64;

/// Parse one JSON document. Strict: duplicate object keys, trailing
/// characters, and depth past [`MAX_DEPTH`] are errors.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(format!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format!("expected '{}', found end of input", want as char))),
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        let line = self.line;
        let v = match self.peek() {
            Some(b'{') => self.object(depth)?,
            Some(b'[') => self.array(depth)?,
            Some(b'"') => Val::Str(self.string()?),
            Some(b't' | b'f') => self.literal()?,
            Some(b'n') => self.literal()?,
            Some(b'-' | b'0'..=b'9') => self.number()?,
            Some(b) => return Err(self.err(format!("unexpected character '{}'", b as char))),
            None => return Err(self.err("unexpected end of input")),
        };
        Ok(Json { line, v })
    }

    fn object(&mut self, depth: u32) -> Result<Val, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Val::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a '\"'-quoted object key"));
            }
            let key_line = self.line;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    line: key_line,
                    col: self.col,
                    msg: format!("duplicate key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Val::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Val, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Val::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Val::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn literal(&mut self) -> Result<Val, JsonError> {
        for (word, val) in [
            ("true", Val::Bool(true)),
            ("false", Val::Bool(false)),
            ("null", Val::Null),
        ] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                for _ in 0..word.len() {
                    self.bump();
                }
                return Ok(val);
            }
        }
        Err(self.err("expected true, false, or null"))
    }

    fn number(&mut self) -> Result<Val, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| self.err(format!("malformed number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        if (0xd800..0xdc00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate escape"));
                            }
                            let low = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid; re-decode.
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..width {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }
}

/// Render a value canonically: object keys sorted, arrays in order,
/// two-space indentation, numbers via [`canon_num`], and a trailing
/// newline. Equal values ⇒ equal bytes, on every platform.
pub fn canonical(j: &Json) -> String {
    let mut out = String::new();
    write_value(j, 0, &mut out);
    out.push('\n');
    out
}

fn write_value(j: &Json, indent: usize, out: &mut String) {
    match &j.v {
        Val::Null => out.push_str("null"),
        Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Val::Num(n) => out.push_str(&canon_num(*n)),
        Val::Str(s) => write_string(s, out),
        Val::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Val::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            let mut order: Vec<usize> = (0..members.len()).collect();
            order.sort_by(|&a, &b| members[a].0.cmp(&members[b].0));
            out.push('{');
            for (i, &e) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_string(&members[e].0, out);
                out.push_str(": ");
                write_value(&members[e].1, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The one float formatting campaign artifacts use: `null` for
/// non-finite values (mirroring `RunReport::to_json`), integer form for
/// integral values, else six decimal places with trailing zeros trimmed
/// (at least one decimal digit kept, so floats stay visually floats).
pub fn canon_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        // Integral (covers -0.0 → "0"): render without a decimal point.
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// Render a value on one line (insertion order kept) — for error
/// messages and table cells, not for canonical artifacts.
pub fn compact(j: &Json) -> String {
    match &j.v {
        Val::Null => "null".to_string(),
        Val::Bool(b) => b.to_string(),
        Val::Num(n) => canon_num(*n),
        Val::Str(s) => {
            let mut out = String::new();
            write_string(s, &mut out);
            out
        }
        Val::Arr(items) => {
            let body: Vec<String> = items.iter().map(compact).collect();
            format!("[{}]", body.join(", "))
        }
        Val::Obj(members) => {
            let body: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("\"{k}\": {}", compact(v)))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
    }
}

/// Deep-merge `over` onto `base`: objects merge key-wise recursively,
/// everything else (including arrays) is replaced wholesale. This is
/// the campaign spec/source split — a defaults document plus an
/// override document become one effective scenario.
pub fn merge(base: &Json, over: &Json) -> Json {
    match (&base.v, &over.v) {
        (Val::Obj(b), Val::Obj(o)) => {
            let mut members: Vec<(String, Json)> = b.clone();
            for (k, ov) in o {
                match members.iter_mut().find(|(ek, _)| ek == k) {
                    Some((_, ev)) => *ev = merge(ev, ov),
                    None => members.push((k.clone(), ov.clone())),
                }
            }
            Json {
                line: over.line,
                v: Val::Obj(members),
            }
        }
        _ => over.clone(),
    }
}

/// Set a dotted path (e.g. `"scenario.radio.loss"`) inside a document,
/// creating intermediate objects as needed. Errors if an intermediate
/// step exists but is not an object.
pub fn set_path(doc: &mut Json, path: &str, value: Json) -> Result<(), String> {
    let mut cur = doc;
    let parts: Vec<&str> = path.split('.').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(format!("malformed path \"{path}\""));
    }
    for (i, part) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        let members = match &mut cur.v {
            Val::Obj(members) => members,
            _ => {
                return Err(format!(
                    "path \"{path}\" crosses a non-object at \"{}\"",
                    parts[..i].join(".")
                ))
            }
        };
        let idx = match members.iter().position(|(k, _)| k == part) {
            Some(idx) => idx,
            None => {
                members.push((part.to_string(), Json::obj(Vec::new())));
                members.len() - 1
            }
        };
        if last {
            members[idx].1 = value;
            return Ok(());
        }
        cur = &mut members[idx].1;
    }
    unreachable!("paths have at least one part")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let j = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e1}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().v, Val::Num(1.0));
        match &j.get("b").unwrap().v {
            Val::Arr(items) => {
                assert_eq!(items[0].v, Val::Bool(true));
                assert_eq!(items[1].v, Val::Null);
                assert_eq!(items[2].v, Val::Str("x\n".into()));
            }
            other => panic!("not an array: {other:?}"),
        }
        assert_eq!(j.get("c").unwrap().get("d").unwrap().v, Val::Num(-25.0));
    }

    #[test]
    fn records_source_lines() {
        let j = parse("{\n  \"a\": 1,\n  \"b\": {\n    \"c\": 2\n  }\n}").unwrap();
        assert_eq!(j.line, 1);
        assert_eq!(j.get("a").unwrap().line, 2);
        assert_eq!(j.get("b").unwrap().get("c").unwrap().line, 4);
    }

    #[test]
    fn rejects_duplicates_trailing_garbage_and_bad_escapes() {
        let e = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(e.msg.contains("duplicate key \"a\""), "{e}");
        let e = parse("{} junk").unwrap_err();
        assert!(e.msg.contains("trailing"), "{e}");
        let e = parse(r#"{"a": "\q"}"#).unwrap_err();
        assert!(e.msg.contains("escape"), "{e}");
        let e = parse("{\"a\": 1,\n \"b\": tru}").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
    }

    #[test]
    fn canonical_sorts_keys_and_is_stable() {
        let a = parse(r#"{"b": 1, "a": {"z": [1, 2], "y": 0.5}}"#).unwrap();
        let b = parse(r#"{"a": {"y": 0.5, "z": [1, 2]}, "b": 1}"#).unwrap();
        assert_eq!(canonical(&a), canonical(&b));
        assert!(canonical(&a).ends_with('\n'));
        // Re-parsing the canonical form round-trips.
        let re = parse(&canonical(&a)).unwrap();
        assert_eq!(canonical(&re), canonical(&a));
    }

    #[test]
    fn canon_num_is_fixed_format() {
        assert_eq!(canon_num(3.0), "3");
        assert_eq!(canon_num(-0.0), "0");
        assert_eq!(canon_num(0.95), "0.95");
        assert_eq!(canon_num(0.123456789), "0.123457");
        assert_eq!(canon_num(f64::NAN), "null");
        assert_eq!(canon_num(f64::INFINITY), "null");
    }

    #[test]
    fn merge_is_keywise_deep() {
        let base = parse(r#"{"a": {"x": 1, "y": 2}, "b": [1], "c": 3}"#).unwrap();
        let over = parse(r#"{"a": {"y": 9}, "b": [7, 8]}"#).unwrap();
        let m = merge(&base, &over);
        assert_eq!(m.get("a").unwrap().get("x").unwrap().v, Val::Num(1.0));
        assert_eq!(m.get("a").unwrap().get("y").unwrap().v, Val::Num(9.0));
        match &m.get("b").unwrap().v {
            Val::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("arrays replace wholesale: {other:?}"),
        }
        assert_eq!(m.get("c").unwrap().v, Val::Num(3.0));
    }

    #[test]
    fn set_path_creates_and_overwrites() {
        let mut doc = Json::obj(Vec::new());
        set_path(&mut doc, "scenario.radio.loss", Json::num(0.05)).unwrap();
        assert_eq!(
            doc.get("scenario")
                .unwrap()
                .get("radio")
                .unwrap()
                .get("loss")
                .unwrap()
                .v,
            Val::Num(0.05)
        );
        set_path(&mut doc, "scenario.radio.loss", Json::num(0.1)).unwrap();
        assert_eq!(
            doc.get("scenario")
                .unwrap()
                .get("radio")
                .unwrap()
                .get("loss")
                .unwrap()
                .v,
            Val::Num(0.1)
        );
        let e = set_path(&mut doc, "scenario.radio.loss.deeper", Json::null()).unwrap_err();
        assert!(e.contains("non-object"), "{e}");
    }
}
