//! The declarative scenario format: a JSON document that maps 1:1 onto
//! every [`ScenarioBuilder`] / [`SecureBuilder`] / [`PlainBuilder`] /
//! [`Workload`] knob.
//!
//! [`ScenarioSpec`] is the typed middle: `from_json` parses a document
//! with **strict unknown-key rejection** and line/key-context errors,
//! `to_json` serializes any spec back, and `run` drives the scenario to
//! one [`RunReport`]. The builder introspection constructors
//! ([`ScenarioSpec::from_plain_builder`] /
//! [`ScenarioSpec::from_secure_builder`]) close the loop: any
//! programmatic builder chain can be captured as a document, and the
//! round-trip proptest in `tests/campaign.rs` pins that builder → JSON
//! → parse → build reproduces the identical fingerprint.
//!
//! Every key is optional; the defaults are exactly the builders'
//! defaults (`docs/SCENARIO.md` tabulates all of them), so `{}` is the
//! default 8-host chain with the plain stack and no traffic.

use super::json::{self, Json, Val};
use crate::config::{Behavior, CreditConfig, ProtocolConfig};
use crate::plain::PlainConfig;
use crate::scenario::builder::FieldSpec;
use crate::scenario::{
    Network, NodeApi, Placement, PlainBuilder, RunReport, ScenarioBuilder, SecureBuilder, Workload,
};
use manet_crypto::BackendKind;
use manet_sim::{
    ChannelMode, ExecMode, Field, Mobility, Pos, QueueImpl, RadioConfig, SimDuration, SimTime,
};
use manet_wire::Ipv6Addr;
use std::fmt;

/// A spec-level failure: which key (dotted path), which source line,
/// and what went wrong.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError {
    /// Dotted key path, e.g. `scenario.radio.loss`.
    pub path: String,
    /// Source line of the offending value (0 when synthesized).
    pub line: u32,
    pub msg: String,
}

impl SpecError {
    pub fn at(path: impl Into<String>, line: u32, msg: impl Into<String>) -> Self {
        SpecError {
            path: path.into(),
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} (line {}): {}", self.path, self.line, self.msg)
        } else {
            write!(f, "{}: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------
// Strict-object helper
// ---------------------------------------------------------------------

/// Wraps one JSON object during parsing: every key the parser asks for
/// is recorded, and [`Fields::deny_unknown`] rejects whatever remains —
/// so adding a knob to the parser automatically admits it, and typos
/// fail loudly with the full expected-key list.
struct Fields<'a> {
    path: String,
    members: &'a [(String, Json)],
    known: Vec<&'static str>,
}

impl<'a> Fields<'a> {
    fn new(j: &'a Json, path: &str) -> Result<Self, SpecError> {
        match &j.v {
            Val::Obj(members) => Ok(Fields {
                path: path.to_string(),
                members,
                known: Vec::new(),
            }),
            _ => Err(SpecError::at(
                path,
                j.line,
                format!("expected an object, found {}", j.type_name()),
            )),
        }
    }

    fn child(&self, key: &str) -> String {
        format!("{}.{}", self.path, key)
    }

    fn get(&mut self, key: &'static str) -> Option<&'a Json> {
        self.known.push(key);
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Reject any key the parser never asked for. Call after every
    /// `get` for the section.
    fn deny_unknown(&self) -> Result<(), SpecError> {
        for (k, v) in self.members {
            if !self.known.contains(&k.as_str()) {
                let mut expected: Vec<&str> = self.known.clone();
                expected.sort_unstable();
                return Err(SpecError::at(
                    &self.path,
                    v.line,
                    format!(
                        "unknown key \"{k}\"; expected one of: {}",
                        expected.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }

    // Typed, defaulted accessors. Each validates the JSON type and
    // reports errors at `<section>.<key>`.

    fn f64_or(&mut self, key: &'static str, default: f64) -> Result<f64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => as_f64(j, &self.child(key)),
        }
    }

    fn bool_or(&mut self, key: &'static str, default: bool) -> Result<bool, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => match j.v {
                Val::Bool(b) => Ok(b),
                _ => Err(SpecError::at(
                    self.child(key),
                    j.line,
                    format!("expected a bool, found {}", j.type_name()),
                )),
            },
        }
    }

    fn usize_or(&mut self, key: &'static str, default: usize) -> Result<usize, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => as_uint(j, &self.child(key)).map(|v| v as usize),
        }
    }

    fn u32_or(&mut self, key: &'static str, default: u32) -> Result<u32, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => {
                let path = self.child(key);
                let v = as_uint(j, &path)?;
                u32::try_from(v)
                    .map_err(|_| SpecError::at(path, j.line, format!("{v} does not fit in u32")))
            }
        }
    }

    fn u64_or(&mut self, key: &'static str, default: u64) -> Result<u64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => as_uint(j, &self.child(key)),
        }
    }

    fn i64_or(&mut self, key: &'static str, default: i64) -> Result<i64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => {
                let path = self.child(key);
                let v = as_f64(j, &path)?;
                if v.fract() != 0.0 || v.abs() > 9.007_199_254_740_992e15 {
                    return Err(SpecError::at(
                        path,
                        j.line,
                        format!("expected an integer, found {v}"),
                    ));
                }
                Ok(v as i64)
            }
        }
    }

    fn dur_ms_or(
        &mut self,
        key: &'static str,
        default: SimDuration,
    ) -> Result<SimDuration, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(j) => {
                let path = self.child(key);
                let ms = as_f64(j, &path)?;
                if !(0.0..=1.0e12).contains(&ms) {
                    return Err(SpecError::at(
                        path,
                        j.line,
                        format!("duration must be in [0, 1e12] ms, got {ms}"),
                    ));
                }
                Ok(SimDuration::from_micros((ms * 1000.0).round() as u64))
            }
        }
    }

    fn str_at(&mut self, key: &'static str) -> Result<Option<(&'a str, u32)>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(j) => match &j.v {
                Val::Str(s) => Ok(Some((s.as_str(), j.line))),
                _ => Err(SpecError::at(
                    self.child(key),
                    j.line,
                    format!("expected a string, found {}", j.type_name()),
                )),
            },
        }
    }
}

fn as_f64(j: &Json, path: &str) -> Result<f64, SpecError> {
    match j.v {
        Val::Num(n) => Ok(n),
        _ => Err(SpecError::at(
            path,
            j.line,
            format!("expected a number, found {}", j.type_name()),
        )),
    }
}

fn as_uint(j: &Json, path: &str) -> Result<u64, SpecError> {
    let v = as_f64(j, path)?;
    if v < 0.0 || v.fract() != 0.0 || v > 9.007_199_254_740_992e15 {
        return Err(SpecError::at(
            path,
            j.line,
            format!("expected a non-negative integer, found {v}"),
        ));
    }
    Ok(v as u64)
}

fn as_arr<'a>(j: &'a Json, path: &str) -> Result<&'a [Json], SpecError> {
    match &j.v {
        Val::Arr(items) => Ok(items),
        _ => Err(SpecError::at(
            path,
            j.line,
            format!("expected an array, found {}", j.type_name()),
        )),
    }
}

fn dur_to_ms(d: SimDuration) -> f64 {
    d.as_micros() as f64 / 1000.0
}

fn time_to_s(t: SimTime) -> f64 {
    t.0 as f64 / 1e6
}

// ---------------------------------------------------------------------
// The typed spec
// ---------------------------------------------------------------------

/// How the field is sized — the public mirror of the builder's
/// internal `FieldSpec`.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldChoice {
    Explicit {
        width: f64,
        height: f64,
    },
    /// Expected radio degree; the field edge is solved at build time.
    Density(f64),
}

/// Which protocol stack, with its full per-stack knob set.
#[derive(Clone, Debug)]
pub enum StackSpec {
    Plain(PlainConfig),
    Secure {
        proto: ProtocolConfig,
        join_stagger: SimDuration,
        register_names: bool,
        pre_register: Vec<usize>,
        name_overrides: Vec<(usize, String)>,
    },
}

impl StackSpec {
    pub fn is_secure(&self) -> bool {
        matches!(self, StackSpec::Secure { .. })
    }
}

/// How the workload's flow list is produced.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowSpec {
    /// Explicit `(source, destination)` host-index pairs.
    Pairs(Vec<(usize, usize)>),
    /// `Network::scale_flows(n)`: n pairs drawn from the engine RNG out
    /// of the largest connected component (the scale-exhibit picker).
    Scale(usize),
    /// Everyone-to-one: each source sends to `sink` every round.
    ConvergeCast { sources: Vec<usize>, sink: usize },
}

/// The workload section: [`Workload`] plus the two driver knobs that
/// precede it (formation beat, bootstrap).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    pub flows: FlowSpec,
    pub packets: usize,
    pub interval: SimDuration,
    pub warmup: SimDuration,
    pub drain: SimDuration,
    pub payload_len: usize,
    /// Run the engine to this absolute sim time before flows are picked
    /// and traffic starts (the S1 exhibit's formation beat).
    pub formation_s: f64,
    /// Drive the staggered bootstrap to completion first (defaults to
    /// true for the secure stack, false for plain).
    pub bootstrap: bool,
}

impl WorkloadSpec {
    /// The no-traffic default, mirroring `Workload::flows(vec![], 0, 0)`.
    fn default_for(secure: bool) -> Self {
        WorkloadSpec {
            flows: FlowSpec::Pairs(Vec::new()),
            packets: 0,
            interval: SimDuration::ZERO,
            warmup: SimDuration::ZERO,
            drain: SimDuration::from_secs(5),
            payload_len: crate::scenario::workload::DEFAULT_PAYLOAD.1,
            formation_s: 0.0,
            bootstrap: secure,
        }
    }
}

/// One complete declarative scenario: everything `ScenarioBuilder` and
/// its stack stages know, plus the workload.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    pub hosts: usize,
    pub seed: u64,
    pub placement: Placement,
    pub field: FieldChoice,
    pub radio: RadioConfig,
    pub mobility: Mobility,
    pub channel: ChannelMode,
    pub queue: QueueImpl,
    /// `None` defers to `ExecMode::default()` (the `MANET_EXEC` knob).
    pub exec: Option<ExecMode>,
    pub trace: bool,
    pub max_events: Option<u64>,
    pub churn_kills: usize,
    pub churn_window: (SimTime, SimTime),
    pub adversaries: Vec<(usize, Behavior)>,
    pub stack: StackSpec,
    pub workload: WorkloadSpec,
}

impl Default for ScenarioSpec {
    /// Exactly `ScenarioBuilder::default()` with the plain stack and no
    /// traffic — pinned against the builder by `defaults_mirror_the_builder`.
    fn default() -> Self {
        let b = ScenarioBuilder::new();
        ScenarioSpec {
            hosts: b.n_hosts,
            seed: b.seed,
            placement: b.placement.clone(),
            field: field_choice(&b.field),
            radio: b.radio.clone(),
            mobility: b.mobility.clone(),
            channel: b.channel,
            queue: b.queue,
            exec: None,
            trace: b.trace,
            max_events: b.max_events,
            churn_kills: b.churn_kills,
            churn_window: b.churn_window,
            adversaries: b.attackers.clone(),
            stack: StackSpec::Plain(PlainConfig::default()),
            workload: WorkloadSpec::default_for(false),
        }
    }
}

fn field_choice(f: &FieldSpec) -> FieldChoice {
    match f {
        FieldSpec::Explicit(f) => FieldChoice::Explicit {
            width: f.width,
            height: f.height,
        },
        FieldSpec::Density(d) => FieldChoice::Density(*d),
    }
}

impl ScenarioSpec {
    // -----------------------------------------------------------------
    // Builder introspection: capture a programmatic builder as a spec.
    // -----------------------------------------------------------------

    /// Capture a plain-stack builder chain. The exec mode is recorded
    /// as the builder resolved it (so the spec replays the same run
    /// even if `MANET_EXEC` changes later).
    pub fn from_plain_builder(b: &PlainBuilder) -> Self {
        let mut spec = Self::from_base(&b.base);
        spec.stack = StackSpec::Plain(b.proto.clone());
        spec.workload = WorkloadSpec::default_for(false);
        spec
    }

    /// Capture a secure-stack builder chain.
    pub fn from_secure_builder(b: &SecureBuilder) -> Self {
        let mut spec = Self::from_base(&b.base);
        spec.stack = StackSpec::Secure {
            proto: b.proto.clone(),
            join_stagger: b.join_stagger,
            register_names: b.register_names,
            pre_register: b.pre_register.clone(),
            name_overrides: b.name_overrides.clone(),
        };
        spec.workload = WorkloadSpec::default_for(true);
        spec
    }

    fn from_base(b: &ScenarioBuilder) -> Self {
        ScenarioSpec {
            hosts: b.n_hosts,
            seed: b.seed,
            placement: b.placement.clone(),
            field: field_choice(&b.field),
            radio: b.radio.clone(),
            mobility: b.mobility.clone(),
            channel: b.channel,
            queue: b.queue,
            exec: Some(b.exec),
            trace: b.trace,
            max_events: b.max_events,
            churn_kills: b.churn_kills,
            churn_window: b.churn_window,
            adversaries: b.attackers.clone(),
            stack: StackSpec::Plain(PlainConfig::default()),
            workload: WorkloadSpec::default_for(false),
        }
    }

    /// Attach a [`Workload`] (plus driver knobs) to a captured spec.
    pub fn with_workload(mut self, w: &Workload, formation_s: f64, bootstrap: bool) -> Self {
        self.workload = WorkloadSpec {
            flows: FlowSpec::Pairs(w.flows.clone()),
            packets: w.packets,
            interval: w.interval,
            warmup: w.warmup,
            drain: w.drain,
            payload_len: w.payload_len,
            formation_s,
            bootstrap,
        };
        self
    }

    // -----------------------------------------------------------------
    // Parse
    // -----------------------------------------------------------------

    /// Parse a scenario document: `{"scenario": {...}, "workload": {...}}`.
    /// Every key optional, unknown keys rejected with their source line.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let mut top = Fields::new(doc, "$")?;
        let mut spec = ScenarioSpec::default();

        let mut secure_stack = false;
        if let Some(sc) = top.get("scenario") {
            parse_scenario_section(sc, &mut spec, &mut secure_stack)?;
        }
        let workload_json = top.get("workload");
        top.deny_unknown()?;

        spec.workload = match workload_json {
            Some(w) => parse_workload(w, secure_stack)?,
            None => WorkloadSpec::default_for(secure_stack),
        };

        spec.validate(doc)?;
        Ok(spec)
    }

    /// Parse a scenario document from text.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = json::parse(text)
            .map_err(|e| SpecError::at("$", e.line, format!("JSON syntax: {}", e.msg)))?;
        Self::from_json(&doc)
    }

    /// Cross-field validation that needs the whole spec (host-index
    /// ranges, placement arity).
    fn validate(&self, doc: &Json) -> Result<(), SpecError> {
        let line = doc.line;
        let check_host = |what: &str, idx: usize| -> Result<(), SpecError> {
            if idx >= self.hosts {
                return Err(SpecError::at(
                    what,
                    line,
                    format!("host index {idx} out of range for {} hosts", self.hosts),
                ));
            }
            Ok(())
        };
        for (i, _) in &self.adversaries {
            check_host("scenario.adversaries", *i)?;
        }
        if let StackSpec::Secure {
            pre_register,
            name_overrides,
            ..
        } = &self.stack
        {
            for i in pre_register {
                check_host("scenario.stack.pre_register", *i)?;
            }
            for (i, _) in name_overrides {
                check_host("scenario.stack.name_overrides", *i)?;
            }
        }
        match &self.workload.flows {
            FlowSpec::Pairs(pairs) => {
                for (s, d) in pairs {
                    check_host("workload.flows", *s)?;
                    check_host("workload.flows", *d)?;
                }
            }
            FlowSpec::ConvergeCast { sources, sink } => {
                check_host("workload.flows.converge_cast", *sink)?;
                for s in sources {
                    check_host("workload.flows.converge_cast", *s)?;
                }
            }
            FlowSpec::Scale(_) => {}
        }
        match &self.placement {
            Placement::Bypass if self.hosts != 5 => {
                return Err(SpecError::at(
                    "scenario.placement",
                    line,
                    format!("bypass topology is fixed at 5 hosts, got {}", self.hosts),
                ));
            }
            Placement::Custom(positions) => {
                let need = self.hosts + usize::from(self.stack.is_secure());
                if positions.len() != need {
                    return Err(SpecError::at(
                        "scenario.placement.positions",
                        line,
                        format!(
                            "custom placement needs {need} positions ({} hosts{}), got {}",
                            self.hosts,
                            if self.stack.is_secure() { " + DNS" } else { "" },
                            positions.len()
                        ),
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Serialize
    // -----------------------------------------------------------------

    /// Serialize the full spec (every key explicit) as a document that
    /// `from_json` parses back to an equivalent spec.
    pub fn to_json(&self) -> Json {
        let scenario = vec![
            ("hosts".into(), Json::num(self.hosts as f64)),
            ("seed".into(), Json::num(self.seed as f64)),
            ("placement".into(), placement_json(&self.placement)),
            ("field".into(), field_json(&self.field)),
            ("radio".into(), radio_json(&self.radio)),
            ("mobility".into(), mobility_json(&self.mobility)),
            (
                "channel".into(),
                Json::str(match self.channel {
                    ChannelMode::Grid => "grid",
                    ChannelMode::Linear => "linear",
                }),
            ),
            ("queue".into(), Json::str(self.queue.name())),
            (
                "exec".into(),
                match self.exec {
                    None => Json::null(),
                    Some(ExecMode::Single) => Json::str("single"),
                    Some(ExecMode::Sharded(k)) => Json::str(format!("sharded:{k}")),
                },
            ),
            ("trace".into(), Json::bool(self.trace)),
            (
                "max_events".into(),
                self.max_events
                    .map_or(Json::null(), |v| Json::num(v as f64)),
            ),
            (
                "churn".into(),
                Json::obj(vec![
                    ("kills".into(), Json::num(self.churn_kills as f64)),
                    (
                        "window_s".into(),
                        Json::arr(vec![
                            Json::num(time_to_s(self.churn_window.0)),
                            Json::num(time_to_s(self.churn_window.1)),
                        ]),
                    ),
                ]),
            ),
            (
                "adversaries".into(),
                Json::arr(
                    self.adversaries
                        .iter()
                        .map(|(i, b)| {
                            Json::obj(vec![
                                ("host".into(), Json::num(*i as f64)),
                                ("behavior".into(), behavior_json(b)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("stack".into(), stack_json(&self.stack)),
        ];
        Json::obj(vec![
            ("scenario".into(), Json::obj(scenario)),
            ("workload".into(), workload_json(&self.workload)),
        ])
    }

    /// `to_json` rendered canonically (sorted keys, fixed floats).
    pub fn to_canonical_string(&self) -> String {
        json::canonical(&self.to_json())
    }

    // -----------------------------------------------------------------
    // Build & run
    // -----------------------------------------------------------------

    /// The stack-independent builder this spec describes.
    fn base_builder(&self) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new()
            .hosts(self.hosts)
            .seed(self.seed)
            .placement(self.placement.clone())
            .radio(self.radio.clone())
            .mobility(self.mobility.clone())
            .channel(self.channel)
            .queue(self.queue)
            .trace(self.trace)
            .adversaries(self.adversaries.clone())
            .churn(self.churn_kills, self.churn_window);
        b = match self.field {
            FieldChoice::Explicit { width, height } => b.field(Field::new(width, height)),
            FieldChoice::Density(d) => b.density(d),
        };
        if let Some(exec) = self.exec {
            b = b.exec(exec);
        }
        if let Some(cap) = self.max_events {
            b = b.max_events(cap);
        }
        b
    }

    /// Build the network and drive the workload to one report. The run
    /// is a pure function of (spec, seed): wall-derived report fields
    /// vary, everything under `RunReport::fingerprint()` does not.
    pub fn run(&self) -> Result<RunReport, SpecError> {
        match &self.stack {
            StackSpec::Plain(cfg) => {
                let mut net = self.base_builder().plain_with(cfg.clone()).build();
                Ok(drive(&mut net, &self.workload))
            }
            StackSpec::Secure {
                proto,
                join_stagger,
                register_names,
                pre_register,
                name_overrides,
            } => {
                let mut b = self
                    .base_builder()
                    .secure_with(proto.clone())
                    .join_stagger(*join_stagger)
                    .register_names(*register_names)
                    .pre_register(pre_register.clone());
                for (i, name) in name_overrides {
                    b = b.name_override(*i, name);
                }
                let mut net = b.build();
                Ok(drive(&mut net, &self.workload))
            }
        }
    }
}

/// The shared driver: bootstrap (secure), formation beat, flow
/// resolution, then the one `Network::run` path.
fn drive<P: NodeApi>(net: &mut Network<P>, w: &WorkloadSpec) -> RunReport {
    if w.bootstrap {
        let _ = net.bootstrap();
    }
    if w.formation_s > 0.0 {
        let t = SimTime((w.formation_s * 1e6).round() as u64);
        if t > net.engine.now() {
            net.engine.run_until(t);
        }
    }
    let flows = match &w.flows {
        FlowSpec::Pairs(pairs) => pairs.clone(),
        FlowSpec::Scale(n) => net.scale_flows(*n),
        FlowSpec::ConvergeCast { sources, sink } => sources.iter().map(|&s| (s, *sink)).collect(),
    };
    net.run(&Workload {
        flows,
        packets: w.packets,
        interval: w.interval,
        warmup: w.warmup,
        drain: w.drain,
        payload_len: w.payload_len,
    })
}

// ---------------------------------------------------------------------
// Section parsers
// ---------------------------------------------------------------------

fn parse_scenario_section(
    j: &Json,
    spec: &mut ScenarioSpec,
    secure_stack: &mut bool,
) -> Result<(), SpecError> {
    let mut f = Fields::new(j, "scenario")?;

    spec.hosts = f.usize_or("hosts", spec.hosts)?;
    if spec.hosts == 0 {
        return Err(SpecError::at(
            "scenario.hosts",
            j.line,
            "need at least one host",
        ));
    }
    spec.seed = f.u64_or("seed", spec.seed)?;
    if let Some(p) = f.get("placement") {
        spec.placement = parse_placement(p)?;
    }
    if let Some(fd) = f.get("field") {
        spec.field = parse_field(fd)?;
    }
    if let Some(r) = f.get("radio") {
        spec.radio = parse_radio(r, &spec.radio)?;
    }
    if let Some(m) = f.get("mobility") {
        spec.mobility = parse_mobility(m)?;
    }
    if let Some((s, line)) = f.str_at("channel")? {
        spec.channel = match s {
            "grid" => ChannelMode::Grid,
            "linear" => ChannelMode::Linear,
            other => {
                return Err(SpecError::at(
                    "scenario.channel",
                    line,
                    format!("unknown channel \"{other}\"; expected one of: grid, linear"),
                ))
            }
        };
    }
    if let Some((s, line)) = f.str_at("queue")? {
        spec.queue = match s {
            "wheel" => QueueImpl::Wheel,
            "heap" => QueueImpl::Heap,
            other => {
                return Err(SpecError::at(
                    "scenario.queue",
                    line,
                    format!("unknown queue \"{other}\"; expected one of: wheel, heap"),
                ))
            }
        };
    }
    if let Some(e) = f.get("exec") {
        spec.exec = parse_exec(e)?;
    }
    spec.trace = f.bool_or("trace", spec.trace)?;
    if let Some(me) = f.get("max_events") {
        spec.max_events = match me.v {
            Val::Null => None,
            _ => Some(as_uint(me, "scenario.max_events")?),
        };
    }
    if let Some(c) = f.get("churn") {
        let (kills, window) = parse_churn(c)?;
        spec.churn_kills = kills;
        spec.churn_window = window;
    }
    if let Some(a) = f.get("adversaries") {
        spec.adversaries = parse_adversaries(a)?;
    }
    if let Some(s) = f.get("stack") {
        spec.stack = parse_stack(s)?;
    }
    *secure_stack = spec.stack.is_secure();
    f.deny_unknown()
}

fn parse_placement(j: &Json) -> Result<Placement, SpecError> {
    let mut f = Fields::new(j, "scenario.placement")?;
    let (kind, kind_line) = f
        .str_at("kind")?
        .ok_or_else(|| SpecError::at("scenario.placement.kind", j.line, "missing \"kind\""))?;
    let placement = match kind {
        "chain" => Placement::Chain {
            spacing: positive(f.f64_or("spacing", 180.0)?, "scenario.placement.spacing", j.line)?,
        },
        "grid" => {
            let cols = f.usize_or("cols", 1)?;
            if cols == 0 {
                return Err(SpecError::at("scenario.placement.cols", j.line, "need at least one column"));
            }
            Placement::Grid {
                cols,
                spacing: positive(f.f64_or("spacing", 180.0)?, "scenario.placement.spacing", j.line)?,
            }
        }
        "uniform" => Placement::Uniform,
        "bypass" => Placement::Bypass,
        "custom" => {
            let positions = f.get("positions").ok_or_else(|| {
                SpecError::at("scenario.placement.positions", j.line, "custom placement needs \"positions\"")
            })?;
            let items = as_arr(positions, "scenario.placement.positions")?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                out.push(parse_pos(item, &format!("scenario.placement.positions[{i}]"))?);
            }
            Placement::Custom(out)
        }
        other => {
            return Err(SpecError::at(
                "scenario.placement.kind",
                kind_line,
                format!("unknown placement \"{other}\"; expected one of: bypass, chain, custom, grid, uniform"),
            ))
        }
    };
    f.deny_unknown()?;
    Ok(placement)
}

fn parse_pos(j: &Json, path: &str) -> Result<Pos, SpecError> {
    let items = as_arr(j, path)?;
    if items.len() != 2 {
        return Err(SpecError::at(path, j.line, "expected an [x, y] pair"));
    }
    Ok(Pos::new(as_f64(&items[0], path)?, as_f64(&items[1], path)?))
}

fn parse_field(j: &Json) -> Result<FieldChoice, SpecError> {
    let mut f = Fields::new(j, "scenario.field")?;
    let density = f.get("density").cloned();
    let width = f.get("width").cloned();
    let height = f.get("height").cloned();
    f.deny_unknown()?;
    match (density, width, height) {
        (Some(d), None, None) => Ok(FieldChoice::Density(positive(
            as_f64(&d, "scenario.field.density")?,
            "scenario.field.density",
            d.line,
        )?)),
        (None, Some(w), Some(h)) => Ok(FieldChoice::Explicit {
            width: positive(
                as_f64(&w, "scenario.field.width")?,
                "scenario.field.width",
                w.line,
            )?,
            height: positive(
                as_f64(&h, "scenario.field.height")?,
                "scenario.field.height",
                h.line,
            )?,
        }),
        _ => Err(SpecError::at(
            "scenario.field",
            j.line,
            "give either {\"density\": d} or {\"width\": w, \"height\": h}",
        )),
    }
}

fn parse_radio(j: &Json, defaults: &RadioConfig) -> Result<RadioConfig, SpecError> {
    let mut f = Fields::new(j, "scenario.radio")?;
    let range = positive(
        f.f64_or("range", defaults.range)?,
        "scenario.radio.range",
        j.line,
    )?;
    let loss = f.f64_or("loss", defaults.loss)?;
    if !(0.0..1.0).contains(&loss) {
        return Err(SpecError::at(
            "scenario.radio.loss",
            j.line,
            format!("loss probability must be in [0, 1), got {loss}"),
        ));
    }
    let base_delay = f.dur_ms_or("base_delay_ms", defaults.base_delay)?;
    let jitter = f.dur_ms_or("jitter_ms", defaults.jitter)?;
    let bits_per_sec = positive(
        f.f64_or("bits_per_sec", defaults.bits_per_sec)?,
        "scenario.radio.bits_per_sec",
        j.line,
    )?;
    let gray_zone = match f.get("gray_zone") {
        None => defaults.gray_zone,
        Some(g) => match g.v {
            Val::Null => None,
            _ => Some(positive(
                as_f64(g, "scenario.radio.gray_zone")?,
                "scenario.radio.gray_zone",
                g.line,
            )?),
        },
    };
    f.deny_unknown()?;
    Ok(RadioConfig {
        range,
        loss,
        base_delay,
        jitter,
        bits_per_sec,
        gray_zone,
    })
}

fn parse_mobility(j: &Json) -> Result<Mobility, SpecError> {
    let mut f = Fields::new(j, "scenario.mobility")?;
    let (kind, kind_line) = f
        .str_at("kind")?
        .ok_or_else(|| SpecError::at("scenario.mobility.kind", j.line, "missing \"kind\""))?;
    let mobility = match kind {
        "static" => Mobility::Static,
        "random_waypoint" => {
            let min_speed = f.f64_or("min_speed", 1.0)?;
            let max_speed = f.f64_or("max_speed", 4.0)?;
            let pause_s = f.f64_or("pause_s", 2.0)?;
            if !(0.0 <= min_speed && min_speed <= max_speed) {
                return Err(SpecError::at(
                    "scenario.mobility",
                    j.line,
                    format!("need 0 <= min_speed <= max_speed, got {min_speed}..{max_speed}"),
                ));
            }
            if pause_s < 0.0 {
                return Err(SpecError::at(
                    "scenario.mobility.pause_s",
                    j.line,
                    "pause must be >= 0",
                ));
            }
            Mobility::RandomWaypoint {
                min_speed,
                max_speed,
                pause_s,
            }
        }
        "scripted" => {
            let speed = positive(f.f64_or("speed", 1.0)?, "scenario.mobility.speed", j.line)?;
            let points = f.get("points").ok_or_else(|| {
                SpecError::at(
                    "scenario.mobility.points",
                    j.line,
                    "scripted mobility needs \"points\"",
                )
            })?;
            let items = as_arr(points, "scenario.mobility.points")?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                out.push(parse_pos(item, &format!("scenario.mobility.points[{i}]"))?);
            }
            Mobility::Scripted { points: out, speed }
        }
        other => {
            return Err(SpecError::at(
                "scenario.mobility.kind",
                kind_line,
                format!(
                "unknown mobility \"{other}\"; expected one of: random_waypoint, scripted, static"
            ),
            ))
        }
    };
    f.deny_unknown()?;
    Ok(mobility)
}

fn parse_exec(j: &Json) -> Result<Option<ExecMode>, SpecError> {
    match &j.v {
        Val::Null => Ok(None),
        Val::Str(s) if s == "single" => Ok(Some(ExecMode::Single)),
        Val::Str(s) => {
            if let Some(k) = s.strip_prefix("sharded:") {
                let shards: usize = k.parse().map_err(|_| {
                    SpecError::at("scenario.exec", j.line, format!("bad shard count \"{k}\""))
                })?;
                if shards == 0 {
                    return Err(SpecError::at(
                        "scenario.exec",
                        j.line,
                        "need at least one shard",
                    ));
                }
                return Ok(Some(ExecMode::Sharded(shards)));
            }
            Err(SpecError::at(
                "scenario.exec",
                j.line,
                format!("unknown exec \"{s}\"; expected null, \"single\", or \"sharded:<k>\""),
            ))
        }
        _ => Err(SpecError::at(
            "scenario.exec",
            j.line,
            format!("expected null or a string, found {}", j.type_name()),
        )),
    }
}

fn parse_churn(j: &Json) -> Result<(usize, (SimTime, SimTime)), SpecError> {
    let mut f = Fields::new(j, "scenario.churn")?;
    let kills = f.usize_or("kills", 0)?;
    let window = match f.get("window_s") {
        None => (SimTime(4_000_000), SimTime(10_000_000)),
        Some(w) => {
            let items = as_arr(w, "scenario.churn.window_s")?;
            if items.len() != 2 {
                return Err(SpecError::at(
                    "scenario.churn.window_s",
                    w.line,
                    "expected [start_s, end_s]",
                ));
            }
            let lo = as_f64(&items[0], "scenario.churn.window_s")?;
            let hi = as_f64(&items[1], "scenario.churn.window_s")?;
            if !(0.0 <= lo && lo <= hi) {
                return Err(SpecError::at(
                    "scenario.churn.window_s",
                    w.line,
                    format!("need 0 <= start <= end, got [{lo}, {hi}]"),
                ));
            }
            (
                SimTime((lo * 1e6).round() as u64),
                SimTime((hi * 1e6).round() as u64),
            )
        }
    };
    f.deny_unknown()?;
    Ok((kills, window))
}

fn parse_adversaries(j: &Json) -> Result<Vec<(usize, Behavior)>, SpecError> {
    let items = as_arr(j, "scenario.adversaries")?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("scenario.adversaries[{i}]");
        let mut f = Fields::new(item, &path)?;
        let host = f
            .get("host")
            .ok_or_else(|| SpecError::at(&path, item.line, "missing \"host\""))
            .and_then(|h| as_uint(h, &format!("{path}.host")))? as usize;
        let behavior = match f.get("behavior") {
            None => Behavior::default(),
            Some(b) => parse_behavior(b, &format!("{path}.behavior"))?,
        };
        f.deny_unknown()?;
        out.push((host, behavior));
    }
    Ok(out)
}

fn parse_behavior(j: &Json, path: &str) -> Result<Behavior, SpecError> {
    let mut f = Fields::new(j, path)?;
    let data_drop_prob = f.f64_or("data_drop_prob", 0.0)?;
    if !(0.0..=1.0).contains(&data_drop_prob) {
        return Err(SpecError::at(
            format!("{path}.data_drop_prob"),
            j.line,
            format!("drop probability must be in [0, 1], got {data_drop_prob}"),
        ));
    }
    let impersonate = match f.get("impersonate") {
        None => None,
        Some(v) => match &v.v {
            Val::Null => None,
            _ => Some(parse_ipv6(v, &format!("{path}.impersonate"))?),
        },
    };
    let b = Behavior {
        data_drop_prob,
        forge_rrep: f.bool_or("forge_rrep", false)?,
        impersonate,
        replay: f.bool_or("replay", false)?,
        rerr_spam: f.bool_or("rerr_spam", false)?,
        squat_dad: f.bool_or("squat_dad", false)?,
        forge_dns: f.bool_or("forge_dns", false)?,
        evade_probes: f.bool_or("evade_probes", false)?,
    };
    f.deny_unknown()?;
    Ok(b)
}

/// Addresses serialize as their eight 16-bit groups (the textual
/// grouping), e.g. `[65216, 0, 0, 0, 0, 0, 0, 1]` for `fec0::1`.
fn parse_ipv6(j: &Json, path: &str) -> Result<Ipv6Addr, SpecError> {
    let items = as_arr(j, path)?;
    if items.len() != 8 {
        return Err(SpecError::at(path, j.line, "expected eight 16-bit groups"));
    }
    let mut groups = [0u16; 8];
    for (i, item) in items.iter().enumerate() {
        let v = as_uint(item, path)?;
        groups[i] = u16::try_from(v).map_err(|_| {
            SpecError::at(
                path,
                item.line,
                format!("group {v} does not fit in 16 bits"),
            )
        })?;
    }
    Ok(Ipv6Addr::from_groups(groups))
}

fn parse_stack(j: &Json) -> Result<StackSpec, SpecError> {
    let mut f = Fields::new(j, "scenario.stack")?;
    let (kind, kind_line) = f
        .str_at("kind")?
        .ok_or_else(|| SpecError::at("scenario.stack.kind", j.line, "missing \"kind\""))?;
    let stack = match kind {
        "plain" => {
            let d = PlainConfig::default();
            let cfg = PlainConfig {
                rreq_timeout: f.dur_ms_or("rreq_timeout_ms", d.rreq_timeout)?,
                rreq_retries: f.u32_or("rreq_retries", d.rreq_retries)?,
                ack_timeout: f.dur_ms_or("ack_timeout_ms", d.ack_timeout)?,
                data_retries: f.u32_or("data_retries", d.data_retries)?,
                max_send_buffer: f.usize_or("max_send_buffer", d.max_send_buffer)?,
                cached_replies: f.bool_or("cached_replies", d.cached_replies)?,
                per_node_stats: f.bool_or("per_node_stats", d.per_node_stats)?,
            };
            StackSpec::Plain(cfg)
        }
        "secure" => {
            let join_stagger = f.dur_ms_or("join_stagger_ms", SimDuration::from_millis(1_100))?;
            let register_names = f.bool_or("register_names", true)?;
            let pre_register = match f.get("pre_register") {
                None => Vec::new(),
                Some(p) => {
                    let items = as_arr(p, "scenario.stack.pre_register")?;
                    items
                        .iter()
                        .map(|i| as_uint(i, "scenario.stack.pre_register").map(|v| v as usize))
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            let name_overrides = match f.get("name_overrides") {
                None => Vec::new(),
                Some(n) => {
                    let items = as_arr(n, "scenario.stack.name_overrides")?;
                    let mut out = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        let path = format!("scenario.stack.name_overrides[{i}]");
                        let mut nf = Fields::new(item, &path)?;
                        let host = nf
                            .get("host")
                            .ok_or_else(|| SpecError::at(&path, item.line, "missing \"host\""))
                            .and_then(|h| as_uint(h, &format!("{path}.host")))?
                            as usize;
                        let (name, _) = nf
                            .str_at("name")?
                            .ok_or_else(|| SpecError::at(&path, item.line, "missing \"name\""))?;
                        nf.deny_unknown()?;
                        out.push((host, name.to_string()));
                    }
                    out
                }
            };
            let proto = match f.get("proto") {
                None => ProtocolConfig::default(),
                Some(p) => parse_proto(p)?,
            };
            StackSpec::Secure {
                proto,
                join_stagger,
                register_names,
                pre_register,
                name_overrides,
            }
        }
        other => {
            return Err(SpecError::at(
                "scenario.stack.kind",
                kind_line,
                format!("unknown stack \"{other}\"; expected one of: plain, secure"),
            ))
        }
    };
    f.deny_unknown()?;
    Ok(stack)
}

fn parse_proto(j: &Json) -> Result<ProtocolConfig, SpecError> {
    let mut f = Fields::new(j, "scenario.stack.proto")?;
    let d = ProtocolConfig::default();
    let key_bits = f.u32_or("key_bits", d.key_bits)?;
    if key_bits < 384 {
        return Err(SpecError::at(
            "scenario.stack.proto.key_bits",
            j.line,
            format!(
                "modulus must be at least 384 bits to admit the signature frame, got {key_bits}"
            ),
        ));
    }
    let crypto_backend = match f.str_at("crypto_backend")? {
        None => d.crypto_backend,
        Some(("rsa", _)) => BackendKind::Rsa,
        Some(("null", _)) => BackendKind::Null,
        Some(("hashsig", _)) => BackendKind::HashSig,
        Some((other, line)) => {
            return Err(SpecError::at(
                "scenario.stack.proto.crypto_backend",
                line,
                format!("unknown backend \"{other}\"; expected one of: hashsig, null, rsa"),
            ))
        }
    };
    let credit = match f.get("credit") {
        None => CreditConfig::default(),
        Some(c) => parse_credit(c)?,
    };
    let cfg = ProtocolConfig {
        key_bits,
        dad_timeout: f.dur_ms_or("dad_timeout_ms", d.dad_timeout)?,
        dad_probes: f.u32_or("dad_probes", d.dad_probes)?,
        dad_max_attempts: f.u32_or("dad_max_attempts", d.dad_max_attempts)?,
        dns_pending_window: f.dur_ms_or("dns_pending_window_ms", d.dns_pending_window)?,
        rreq_timeout: f.dur_ms_or("rreq_timeout_ms", d.rreq_timeout)?,
        rreq_retries: f.u32_or("rreq_retries", d.rreq_retries)?,
        ack_timeout: f.dur_ms_or("ack_timeout_ms", d.ack_timeout)?,
        data_retries: f.u32_or("data_retries", d.data_retries)?,
        crep_enabled: f.bool_or("crep_enabled", d.crep_enabled)?,
        route_ttl: f.dur_ms_or("route_ttl_ms", d.route_ttl)?,
        route_cache_per_dest: f.usize_or("route_cache_per_dest", d.route_cache_per_dest)?,
        route_cache_dests: f.usize_or("route_cache_dests", d.route_cache_dests)?,
        verify_cache: f.bool_or("verify_cache", d.verify_cache)?,
        verify_cache_capacity: f.usize_or("verify_cache_capacity", d.verify_cache_capacity)?,
        crypto_backend,
        batch_verify: f.bool_or("batch_verify", d.batch_verify)?,
        rrep_multi: f.u32_or("rrep_multi", d.rrep_multi)?,
        verify_srr: f.bool_or("verify_srr", d.verify_srr)?,
        credit,
        max_send_buffer: f.usize_or("max_send_buffer", d.max_send_buffer)?,
        probe_enabled: f.bool_or("probe_enabled", d.probe_enabled)?,
        probe_after: f.u32_or("probe_after", d.probe_after)?,
        probe_timeout: f.dur_ms_or("probe_timeout_ms", d.probe_timeout)?,
    };
    f.deny_unknown()?;
    Ok(cfg)
}

fn parse_credit(j: &Json) -> Result<CreditConfig, SpecError> {
    let mut f = Fields::new(j, "scenario.stack.proto.credit")?;
    let d = CreditConfig::default();
    let cfg = CreditConfig {
        enabled: f.bool_or("enabled", d.enabled)?,
        initial: f.i64_or("initial", d.initial)?,
        reward: f.i64_or("reward", d.reward)?,
        slash: f.i64_or("slash", d.slash)?,
        timeout_penalty: f.i64_or("timeout_penalty", d.timeout_penalty)?,
        rerr_threshold: f.u32_or("rerr_threshold", d.rerr_threshold)?,
        avoid_below: f.i64_or("avoid_below", d.avoid_below)?,
    };
    f.deny_unknown()?;
    Ok(cfg)
}

fn parse_workload(j: &Json, secure: bool) -> Result<WorkloadSpec, SpecError> {
    let mut f = Fields::new(j, "workload")?;
    let d = WorkloadSpec::default_for(secure);
    let flows = match f.get("flows") {
        None => d.flows.clone(),
        Some(fl) => parse_flows(fl)?,
    };
    let formation_s = f.f64_or("formation_s", d.formation_s)?;
    if !(0.0..=1.0e9).contains(&formation_s) {
        return Err(SpecError::at(
            "workload.formation_s",
            j.line,
            format!("formation time must be in [0, 1e9] s, got {formation_s}"),
        ));
    }
    let w = WorkloadSpec {
        flows,
        packets: f.usize_or("packets", d.packets)?,
        interval: f.dur_ms_or("interval_ms", d.interval)?,
        warmup: f.dur_ms_or("warmup_ms", d.warmup)?,
        drain: f.dur_ms_or("drain_ms", d.drain)?,
        payload_len: f.usize_or("payload_len", d.payload_len)?,
        formation_s,
        bootstrap: f.bool_or("bootstrap", d.bootstrap)?,
    };
    f.deny_unknown()?;
    Ok(w)
}

fn parse_flows(j: &Json) -> Result<FlowSpec, SpecError> {
    match &j.v {
        Val::Arr(items) => {
            let mut pairs = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let path = format!("workload.flows[{i}]");
                let pair = as_arr(item, &path)?;
                if pair.len() != 2 {
                    return Err(SpecError::at(
                        &path,
                        item.line,
                        "expected a [source, destination] pair",
                    ));
                }
                pairs.push((
                    as_uint(&pair[0], &path)? as usize,
                    as_uint(&pair[1], &path)? as usize,
                ));
            }
            Ok(FlowSpec::Pairs(pairs))
        }
        Val::Obj(_) => {
            let mut f = Fields::new(j, "workload.flows")?;
            let scale = f.get("scale").cloned();
            let cc = f.get("converge_cast").cloned();
            f.deny_unknown()?;
            match (scale, cc) {
                (Some(s), None) => Ok(FlowSpec::Scale(
                    as_uint(&s, "workload.flows.scale")? as usize
                )),
                (None, Some(c)) => {
                    let mut cf = Fields::new(&c, "workload.flows.converge_cast")?;
                    let sources = cf
                        .get("sources")
                        .ok_or_else(|| {
                            SpecError::at(
                                "workload.flows.converge_cast.sources",
                                c.line,
                                "missing \"sources\"",
                            )
                        })
                        .and_then(|s| as_arr(s, "workload.flows.converge_cast.sources"))?
                        .iter()
                        .map(|i| {
                            as_uint(i, "workload.flows.converge_cast.sources").map(|v| v as usize)
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let sink = cf
                        .get("sink")
                        .ok_or_else(|| {
                            SpecError::at(
                                "workload.flows.converge_cast.sink",
                                c.line,
                                "missing \"sink\"",
                            )
                        })
                        .and_then(|s| as_uint(s, "workload.flows.converge_cast.sink"))?
                        as usize;
                    cf.deny_unknown()?;
                    Ok(FlowSpec::ConvergeCast { sources, sink })
                }
                _ => Err(SpecError::at(
                    "workload.flows",
                    j.line,
                    "give pairs [[s, d], ...], {\"scale\": n}, or {\"converge_cast\": {...}}",
                )),
            }
        }
        _ => Err(SpecError::at(
            "workload.flows",
            j.line,
            format!("expected an array or an object, found {}", j.type_name()),
        )),
    }
}

fn positive(v: f64, path: &str, line: u32) -> Result<f64, SpecError> {
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(SpecError::at(
            path,
            line,
            format!("must be a positive number, got {v}"),
        ))
    }
}

// ---------------------------------------------------------------------
// Serializers (the to_json halves)
// ---------------------------------------------------------------------

fn placement_json(p: &Placement) -> Json {
    match p {
        Placement::Chain { spacing } => Json::obj(vec![
            ("kind".into(), Json::str("chain")),
            ("spacing".into(), Json::num(*spacing)),
        ]),
        Placement::Grid { cols, spacing } => Json::obj(vec![
            ("kind".into(), Json::str("grid")),
            ("cols".into(), Json::num(*cols as f64)),
            ("spacing".into(), Json::num(*spacing)),
        ]),
        Placement::Uniform => Json::obj(vec![("kind".into(), Json::str("uniform"))]),
        Placement::Bypass => Json::obj(vec![("kind".into(), Json::str("bypass"))]),
        Placement::Custom(positions) => Json::obj(vec![
            ("kind".into(), Json::str("custom")),
            (
                "positions".into(),
                Json::arr(positions.iter().map(pos_json).collect()),
            ),
        ]),
    }
}

fn pos_json(p: &Pos) -> Json {
    Json::arr(vec![Json::num(p.x), Json::num(p.y)])
}

fn field_json(f: &FieldChoice) -> Json {
    match f {
        FieldChoice::Explicit { width, height } => Json::obj(vec![
            ("width".into(), Json::num(*width)),
            ("height".into(), Json::num(*height)),
        ]),
        FieldChoice::Density(d) => Json::obj(vec![("density".into(), Json::num(*d))]),
    }
}

fn radio_json(r: &RadioConfig) -> Json {
    Json::obj(vec![
        ("range".into(), Json::num(r.range)),
        ("loss".into(), Json::num(r.loss)),
        ("base_delay_ms".into(), Json::num(dur_to_ms(r.base_delay))),
        ("jitter_ms".into(), Json::num(dur_to_ms(r.jitter))),
        ("bits_per_sec".into(), Json::num(r.bits_per_sec)),
        (
            "gray_zone".into(),
            r.gray_zone.map_or(Json::null(), Json::num),
        ),
    ])
}

fn mobility_json(m: &Mobility) -> Json {
    match m {
        Mobility::Static => Json::obj(vec![("kind".into(), Json::str("static"))]),
        Mobility::RandomWaypoint {
            min_speed,
            max_speed,
            pause_s,
        } => Json::obj(vec![
            ("kind".into(), Json::str("random_waypoint")),
            ("min_speed".into(), Json::num(*min_speed)),
            ("max_speed".into(), Json::num(*max_speed)),
            ("pause_s".into(), Json::num(*pause_s)),
        ]),
        Mobility::Scripted { points, speed } => Json::obj(vec![
            ("kind".into(), Json::str("scripted")),
            (
                "points".into(),
                Json::arr(points.iter().map(pos_json).collect()),
            ),
            ("speed".into(), Json::num(*speed)),
        ]),
    }
}

fn behavior_json(b: &Behavior) -> Json {
    Json::obj(vec![
        ("data_drop_prob".into(), Json::num(b.data_drop_prob)),
        ("forge_rrep".into(), Json::bool(b.forge_rrep)),
        (
            "impersonate".into(),
            b.impersonate.map_or(Json::null(), |ip| {
                Json::arr(ip.groups().iter().map(|&g| Json::num(g as f64)).collect())
            }),
        ),
        ("replay".into(), Json::bool(b.replay)),
        ("rerr_spam".into(), Json::bool(b.rerr_spam)),
        ("squat_dad".into(), Json::bool(b.squat_dad)),
        ("forge_dns".into(), Json::bool(b.forge_dns)),
        ("evade_probes".into(), Json::bool(b.evade_probes)),
    ])
}

fn stack_json(s: &StackSpec) -> Json {
    match s {
        StackSpec::Plain(c) => Json::obj(vec![
            ("kind".into(), Json::str("plain")),
            (
                "rreq_timeout_ms".into(),
                Json::num(dur_to_ms(c.rreq_timeout)),
            ),
            ("rreq_retries".into(), Json::num(c.rreq_retries as f64)),
            ("ack_timeout_ms".into(), Json::num(dur_to_ms(c.ack_timeout))),
            ("data_retries".into(), Json::num(c.data_retries as f64)),
            (
                "max_send_buffer".into(),
                Json::num(c.max_send_buffer as f64),
            ),
            ("cached_replies".into(), Json::bool(c.cached_replies)),
            ("per_node_stats".into(), Json::bool(c.per_node_stats)),
        ]),
        StackSpec::Secure {
            proto,
            join_stagger,
            register_names,
            pre_register,
            name_overrides,
        } => Json::obj(vec![
            ("kind".into(), Json::str("secure")),
            (
                "join_stagger_ms".into(),
                Json::num(dur_to_ms(*join_stagger)),
            ),
            ("register_names".into(), Json::bool(*register_names)),
            (
                "pre_register".into(),
                Json::arr(pre_register.iter().map(|&i| Json::num(i as f64)).collect()),
            ),
            (
                "name_overrides".into(),
                Json::arr(
                    name_overrides
                        .iter()
                        .map(|(i, n)| {
                            Json::obj(vec![
                                ("host".into(), Json::num(*i as f64)),
                                ("name".into(), Json::str(n.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("proto".into(), proto_json(proto)),
        ]),
    }
}

fn proto_json(c: &ProtocolConfig) -> Json {
    Json::obj(vec![
        ("key_bits".into(), Json::num(c.key_bits as f64)),
        ("dad_timeout_ms".into(), Json::num(dur_to_ms(c.dad_timeout))),
        ("dad_probes".into(), Json::num(c.dad_probes as f64)),
        (
            "dad_max_attempts".into(),
            Json::num(c.dad_max_attempts as f64),
        ),
        (
            "dns_pending_window_ms".into(),
            Json::num(dur_to_ms(c.dns_pending_window)),
        ),
        (
            "rreq_timeout_ms".into(),
            Json::num(dur_to_ms(c.rreq_timeout)),
        ),
        ("rreq_retries".into(), Json::num(c.rreq_retries as f64)),
        ("ack_timeout_ms".into(), Json::num(dur_to_ms(c.ack_timeout))),
        ("data_retries".into(), Json::num(c.data_retries as f64)),
        ("crep_enabled".into(), Json::bool(c.crep_enabled)),
        ("route_ttl_ms".into(), Json::num(dur_to_ms(c.route_ttl))),
        (
            "route_cache_per_dest".into(),
            Json::num(c.route_cache_per_dest as f64),
        ),
        (
            "route_cache_dests".into(),
            Json::num(c.route_cache_dests as f64),
        ),
        ("verify_cache".into(), Json::bool(c.verify_cache)),
        (
            "verify_cache_capacity".into(),
            Json::num(c.verify_cache_capacity as f64),
        ),
        (
            "crypto_backend".into(),
            Json::str(match c.crypto_backend {
                BackendKind::Rsa => "rsa",
                BackendKind::Null => "null",
                BackendKind::HashSig => "hashsig",
            }),
        ),
        ("batch_verify".into(), Json::bool(c.batch_verify)),
        ("rrep_multi".into(), Json::num(c.rrep_multi as f64)),
        ("verify_srr".into(), Json::bool(c.verify_srr)),
        ("credit".into(), credit_json(&c.credit)),
        (
            "max_send_buffer".into(),
            Json::num(c.max_send_buffer as f64),
        ),
        ("probe_enabled".into(), Json::bool(c.probe_enabled)),
        ("probe_after".into(), Json::num(c.probe_after as f64)),
        (
            "probe_timeout_ms".into(),
            Json::num(dur_to_ms(c.probe_timeout)),
        ),
    ])
}

fn credit_json(c: &CreditConfig) -> Json {
    Json::obj(vec![
        ("enabled".into(), Json::bool(c.enabled)),
        ("initial".into(), Json::num(c.initial as f64)),
        ("reward".into(), Json::num(c.reward as f64)),
        ("slash".into(), Json::num(c.slash as f64)),
        (
            "timeout_penalty".into(),
            Json::num(c.timeout_penalty as f64),
        ),
        ("rerr_threshold".into(), Json::num(c.rerr_threshold as f64)),
        ("avoid_below".into(), Json::num(c.avoid_below as f64)),
    ])
}

fn workload_json(w: &WorkloadSpec) -> Json {
    let flows = match &w.flows {
        FlowSpec::Pairs(pairs) => Json::arr(
            pairs
                .iter()
                .map(|(s, d)| Json::arr(vec![Json::num(*s as f64), Json::num(*d as f64)]))
                .collect(),
        ),
        FlowSpec::Scale(n) => Json::obj(vec![("scale".into(), Json::num(*n as f64))]),
        FlowSpec::ConvergeCast { sources, sink } => Json::obj(vec![(
            "converge_cast".into(),
            Json::obj(vec![
                (
                    "sources".into(),
                    Json::arr(sources.iter().map(|&s| Json::num(s as f64)).collect()),
                ),
                ("sink".into(), Json::num(*sink as f64)),
            ]),
        )]),
    };
    Json::obj(vec![
        ("flows".into(), flows),
        ("packets".into(), Json::num(w.packets as f64)),
        ("interval_ms".into(), Json::num(dur_to_ms(w.interval))),
        ("warmup_ms".into(), Json::num(dur_to_ms(w.warmup))),
        ("drain_ms".into(), Json::num(dur_to_ms(w.drain))),
        ("payload_len".into(), Json::num(w.payload_len as f64)),
        ("formation_s".into(), Json::num(w.formation_s)),
        ("bootstrap".into(), Json::bool(w.bootstrap)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_the_default_scenario() {
        let spec = ScenarioSpec::parse("{}").unwrap();
        assert_eq!(spec.hosts, 8);
        assert_eq!(spec.seed, 1);
        assert!(matches!(spec.placement, Placement::Chain { spacing } if spacing == 180.0));
        assert_eq!(
            spec.radio.loss, 0.0,
            "scenario default, not RadioConfig's 1%"
        );
        assert!(matches!(spec.stack, StackSpec::Plain(_)));
        assert_eq!(spec.workload.packets, 0);
    }

    #[test]
    fn defaults_mirror_the_builder() {
        // The spec's Default must track ScenarioBuilder::default(): if a
        // builder default changes, this breaks loudly instead of the
        // file format silently meaning something else.
        let spec = ScenarioSpec::default();
        let b = ScenarioBuilder::new();
        assert_eq!(spec.hosts, b.n_hosts);
        assert_eq!(spec.seed, b.seed);
        assert_eq!(spec.radio.loss, b.radio.loss);
        assert_eq!(spec.churn_window, b.churn_window);
        assert_eq!(spec.field, super::field_choice(&b.field));
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_and_path() {
        let doc = "{\n  \"scenario\": {\n    \"radio\": {\n      \"lose\": 0.1\n    }\n  }\n}";
        let e = ScenarioSpec::parse(doc).unwrap_err();
        assert_eq!(e.path, "scenario.radio");
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("unknown key \"lose\""), "{e}");
        assert!(e.msg.contains("loss"), "should list expected keys: {e}");
    }

    #[test]
    fn wrong_types_and_ranges_are_diagnosed() {
        let e = ScenarioSpec::parse(r#"{"scenario": {"hosts": "eight"}}"#).unwrap_err();
        assert_eq!(e.path, "scenario.hosts");
        assert!(e.msg.contains("expected a number, found string"), "{e}");

        let e = ScenarioSpec::parse(r#"{"scenario": {"radio": {"loss": 1.5}}}"#).unwrap_err();
        assert_eq!(e.path, "scenario.radio.loss");
        assert!(e.msg.contains("[0, 1)"), "{e}");

        let e = ScenarioSpec::parse(r#"{"workload": {"flows": [[0, 9]]}}"#).unwrap_err();
        assert_eq!(e.path, "workload.flows");
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let doc = r#"{
            "scenario": {
                "hosts": 5, "seed": 42,
                "placement": {"kind": "bypass"},
                "radio": {"loss": 0.02, "gray_zone": 300.0},
                "mobility": {"kind": "random_waypoint", "min_speed": 0.5, "max_speed": 2.0, "pause_s": 1.0},
                "queue": "heap", "exec": "sharded:4",
                "churn": {"kills": 1, "window_s": [3.0, 8.0]},
                "adversaries": [{"host": 1, "behavior": {"forge_rrep": true}}],
                "stack": {"kind": "secure", "join_stagger_ms": 900.0,
                          "proto": {"key_bits": 512, "crypto_backend": "rsa",
                                    "credit": {"slash": 50}}}
            },
            "workload": {"flows": [[0, 2]], "packets": 3, "interval_ms": 250.0}
        }"#;
        let spec = ScenarioSpec::parse(doc).unwrap();
        let re = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        // Canonical serialization is the equality witness: every knob
        // survives the round trip byte-for-byte.
        assert_eq!(spec.to_canonical_string(), re.to_canonical_string());
        assert_eq!(spec.exec, Some(ExecMode::Sharded(4)));
        match &spec.stack {
            StackSpec::Secure {
                proto,
                join_stagger,
                ..
            } => {
                assert_eq!(proto.credit.slash, 50);
                assert_eq!(*join_stagger, SimDuration::from_millis(900));
            }
            other => panic!("wrong stack: {other:?}"),
        }
    }

    #[test]
    fn parse_run_is_deterministic() {
        let doc = r#"{"scenario": {"hosts": 4, "seed": 7},
                      "workload": {"flows": [[0, 3]], "packets": 2, "interval_ms": 200.0}}"#;
        let a = ScenarioSpec::parse(doc).unwrap().run().unwrap();
        let b = ScenarioSpec::parse(doc).unwrap().run().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.totals.data_sent, 2);
    }

    #[test]
    fn impersonate_groups_round_trip() {
        let b = Behavior {
            impersonate: Some(Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 1])),
            ..Behavior::default()
        };
        let j = behavior_json(&b);
        let re = parse_behavior(&j, "t").unwrap();
        assert_eq!(re.impersonate, b.impersonate);
    }
}
