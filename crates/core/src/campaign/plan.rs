//! Campaign plans: a base scenario document plus a sweep over any of
//! its knobs.
//!
//! A [`CampaignPlan`] names factors by **dotted path** into the
//! scenario document (`scenario.radio.loss`, `scenario.hosts`,
//! `scenario.stack.proto.key_bits`, …) with a list of levels each. The
//! sweep [`SweepMode`] expands the factors into **cells**: either the
//! full cartesian grid, or a Latin-hypercube sample that covers every
//! factor's range with far fewer runs. Each cell is repeated once per
//! seed, and per-cell [`ToleranceSpec`] assertions turn the campaign
//! into a pass/fail gate.
//!
//! Expansion is a pure function of the plan: cells come out in a
//! deterministic order (file order for grids, `lhs_seed`-derived for
//! LHS), which is half of what makes campaign reports byte-identical.

use super::json::{self, Json, Val};
use super::spec::SpecError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// How the factor space is covered.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepMode {
    /// Every combination of every factor's levels (file order).
    Grid,
    /// Latin-hypercube sampling: `samples` cells, each factor's range
    /// split into `samples` strata visited exactly once in a
    /// `lhs_seed`-shuffled order. Numeric two-level factors are treated
    /// as a continuous `[lo, hi]` range; anything else samples its
    /// discrete levels.
    Lhs { samples: usize, lhs_seed: u64 },
}

/// One swept knob: a dotted path into the scenario document and the
/// levels it takes.
#[derive(Clone, Debug)]
pub struct Factor {
    pub path: String,
    pub levels: Vec<Json>,
}

/// A pass/fail band for one report metric, applied to the per-cell mean
/// across seeds: `min <= mean <= max`, each bound slackened by
/// `abs + rel · |bound|`.
#[derive(Clone, Debug, PartialEq)]
pub struct ToleranceSpec {
    pub metric: String,
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub abs: f64,
    pub rel: f64,
}

impl ToleranceSpec {
    /// Does the observed mean satisfy the band?
    pub fn check(&self, mean: f64) -> bool {
        if !mean.is_finite() {
            return false;
        }
        if let Some(min) = self.min {
            if mean < min - (self.abs + self.rel * min.abs()) {
                return false;
            }
        }
        if let Some(max) = self.max {
            if mean > max + (self.abs + self.rel * max.abs()) {
                return false;
            }
        }
        true
    }
}

/// One expanded cell: the factor assignments to overlay on the base
/// document (paths in factor order).
pub type Cell = Vec<(String, Json)>;

/// A declarative parameter study: base scenario + factors + sweep mode
/// + seeds + tolerances.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    pub name: String,
    pub mode: SweepMode,
    /// Scenario seeds each cell is repeated over.
    pub seeds: Vec<u64>,
    /// The base scenario document (already merged with any overrides).
    pub base: Json,
    pub factors: Vec<Factor>,
    pub tolerances: Vec<ToleranceSpec>,
}

impl CampaignPlan {
    /// Parse a plan document. Keys: `campaign` (name, required), `mode`
    /// ("grid" | "lhs"), `samples` + `lhs_seed` (lhs only), `seeds`,
    /// `base`, `overrides`, `factors`, `tolerances`. Unknown keys are
    /// rejected with line context, like the scenario format.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let members = match &doc.v {
            Val::Obj(e) => e,
            _ => {
                return Err(SpecError::at(
                    "$",
                    doc.line,
                    format!("expected an object, found {}", doc.type_name()),
                ))
            }
        };
        const KNOWN: [&str; 9] = [
            "base",
            "base_file",
            "campaign",
            "factors",
            "lhs_seed",
            "mode",
            "overrides",
            "samples",
            "seeds",
        ];
        for (k, v) in members {
            if !KNOWN.contains(&k.as_str()) && k != "tolerances" {
                return Err(SpecError::at(
                    "$",
                    v.line,
                    format!("unknown key \"{k}\"; expected one of: campaign, mode, samples, lhs_seed, seeds, base, overrides, factors, tolerances"),
                ));
            }
        }
        let get = |key: &str| members.iter().find(|(k, _)| k == key).map(|(_, v)| v);

        if let Some(j) = get("base_file") {
            // The loader (runner::load_plan) resolves and removes this
            // key; seeing it here means the caller skipped the loader.
            return Err(SpecError::at(
                "base_file",
                j.line,
                "resolved by the plan loader; parse via campaign::load_plan",
            ));
        }

        let name = match get("campaign") {
            Some(Json { v: Val::Str(s), .. }) => s.clone(),
            Some(j) => {
                return Err(SpecError::at(
                    "campaign",
                    j.line,
                    format!("expected a string, found {}", j.type_name()),
                ))
            }
            None => {
                return Err(SpecError::at(
                    "campaign",
                    doc.line,
                    "missing \"campaign\" (the plan name)",
                ))
            }
        };

        let mode = match get("mode") {
            None => SweepMode::Grid,
            Some(Json {
                v: Val::Str(s),
                line,
            }) => match s.as_str() {
                "grid" => SweepMode::Grid,
                "lhs" => {
                    let samples = match get("samples") {
                        Some(j) => uint_at(j, "samples")? as usize,
                        None => {
                            return Err(SpecError::at(
                                "samples",
                                doc.line,
                                "lhs mode needs \"samples\"",
                            ))
                        }
                    };
                    if samples == 0 {
                        return Err(SpecError::at(
                            "samples",
                            doc.line,
                            "need at least one sample",
                        ));
                    }
                    let lhs_seed = match get("lhs_seed") {
                        Some(j) => uint_at(j, "lhs_seed")?,
                        None => 1,
                    };
                    SweepMode::Lhs { samples, lhs_seed }
                }
                other => {
                    return Err(SpecError::at(
                        "mode",
                        *line,
                        format!("unknown mode \"{other}\"; expected one of: grid, lhs"),
                    ))
                }
            },
            Some(j) => {
                return Err(SpecError::at(
                    "mode",
                    j.line,
                    format!("expected a string, found {}", j.type_name()),
                ))
            }
        };
        if matches!(mode, SweepMode::Grid) {
            for key in ["samples", "lhs_seed"] {
                if let Some(j) = get(key) {
                    return Err(SpecError::at(key, j.line, "only meaningful in lhs mode"));
                }
            }
        }

        let seeds = match get("seeds") {
            None => vec![1],
            Some(j) => {
                let items = arr_at(j, "seeds")?;
                if items.is_empty() {
                    return Err(SpecError::at("seeds", j.line, "need at least one seed"));
                }
                items
                    .iter()
                    .map(|i| uint_at(i, "seeds"))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let mut base = get("base").cloned().unwrap_or_else(|| Json::obj(vec![]));
        if let Some(over) = get("overrides") {
            base = json::merge(&base, over);
        }

        let factors = match get("factors") {
            None => Vec::new(),
            Some(j) => parse_factors(j)?,
        };
        let tolerances = match get("tolerances") {
            None => Vec::new(),
            Some(j) => parse_tolerances(j)?,
        };

        Ok(CampaignPlan {
            name,
            mode,
            seeds,
            base,
            factors,
            tolerances,
        })
    }

    /// Expand the sweep into its cells, in deterministic order.
    pub fn cells(&self) -> Vec<Cell> {
        if self.factors.is_empty() {
            return vec![Vec::new()];
        }
        match &self.mode {
            SweepMode::Grid => self.grid_cells(),
            SweepMode::Lhs { samples, lhs_seed } => self.lhs_cells(*samples, *lhs_seed),
        }
    }

    fn grid_cells(&self) -> Vec<Cell> {
        let mut cells: Vec<Cell> = vec![Vec::new()];
        for f in &self.factors {
            let mut next = Vec::with_capacity(cells.len() * f.levels.len());
            for cell in &cells {
                for level in &f.levels {
                    let mut c = cell.clone();
                    c.push((f.path.clone(), level.clone()));
                    next.push(c);
                }
            }
            cells = next;
        }
        cells
    }

    /// Latin-hypercube sample: for each factor, a fresh Fisher–Yates
    /// permutation of the `samples` strata; sample `i` takes stratum
    /// `perm[i]` of every factor. A factor with exactly two numeric
    /// levels `[lo, hi]` is a continuous range — the stratum picks a
    /// jittered point inside it (rounded back to an integer when both
    /// ends are integers); any other factor maps its strata onto the
    /// discrete level list.
    fn lhs_cells(&self, samples: usize, lhs_seed: u64) -> Vec<Cell> {
        let mut rng = ChaCha12Rng::seed_from_u64(lhs_seed ^ 0x4c48_5321);
        // Per-factor: permutation + per-sample jitter, drawn in factor
        // order so the expansion is a pure function of the plan.
        let mut columns: Vec<Vec<Json>> = Vec::with_capacity(self.factors.len());
        for f in &self.factors {
            let mut perm: Vec<usize> = (0..samples).collect();
            for i in (1..samples).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            let continuous =
                f.levels.len() == 2 && f.levels.iter().all(|l| matches!(l.v, Val::Num(_)));
            let column = perm
                .into_iter()
                .map(|stratum| {
                    if continuous {
                        let lo = num(&f.levels[0]);
                        let hi = num(&f.levels[1]);
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let t = (stratum as f64 + u) / samples as f64;
                        let v = lo + (hi - lo) * t;
                        if lo.fract() == 0.0 && hi.fract() == 0.0 {
                            Json::num(v.round())
                        } else {
                            Json::num(v)
                        }
                    } else {
                        // Spread strata across the discrete levels.
                        let idx = stratum * f.levels.len() / samples;
                        f.levels[idx.min(f.levels.len() - 1)].clone()
                    }
                })
                .collect();
            columns.push(column);
        }
        (0..samples)
            .map(|i| {
                self.factors
                    .iter()
                    .zip(&columns)
                    .map(|(f, col)| (f.path.clone(), col[i].clone()))
                    .collect()
            })
            .collect()
    }

    /// The scenario document for one cell: base + factor assignments.
    pub fn document_for(&self, cell: &Cell) -> Result<Json, SpecError> {
        let mut doc = self.base.clone();
        for (path, value) in cell {
            json::set_path(&mut doc, path, value.clone())
                .map_err(|e| SpecError::at(path.clone(), 0, e))?;
        }
        Ok(doc)
    }
}

fn num(j: &Json) -> f64 {
    match j.v {
        Val::Num(n) => n,
        _ => unreachable!("caller checked Val::Num"),
    }
}

fn uint_at(j: &Json, path: &str) -> Result<u64, SpecError> {
    match j.v {
        Val::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= 9.007_199_254_740_992e15 => {
            Ok(v as u64)
        }
        Val::Num(v) => Err(SpecError::at(
            path,
            j.line,
            format!("expected a non-negative integer, found {v}"),
        )),
        _ => Err(SpecError::at(
            path,
            j.line,
            format!("expected a number, found {}", j.type_name()),
        )),
    }
}

fn arr_at<'a>(j: &'a Json, path: &str) -> Result<&'a [Json], SpecError> {
    match &j.v {
        Val::Arr(items) => Ok(items),
        _ => Err(SpecError::at(
            path,
            j.line,
            format!("expected an array, found {}", j.type_name()),
        )),
    }
}

/// Factors: an object mapping dotted paths to level arrays, in file
/// order (`{"scenario.radio.loss": [0.0, 0.05], ...}`).
fn parse_factors(j: &Json) -> Result<Vec<Factor>, SpecError> {
    let members = match &j.v {
        Val::Obj(e) => e,
        _ => {
            return Err(SpecError::at(
                "factors",
                j.line,
                format!("expected an object, found {}", j.type_name()),
            ))
        }
    };
    let mut out = Vec::with_capacity(members.len());
    for (path, levels) in members {
        let fpath = format!("factors.{path}");
        if !path.starts_with("scenario.") && !path.starts_with("workload.") {
            return Err(SpecError::at(
                fpath,
                levels.line,
                "factor paths must start with \"scenario.\" or \"workload.\"",
            ));
        }
        let items = arr_at(levels, &fpath)?;
        if items.is_empty() {
            return Err(SpecError::at(fpath, levels.line, "need at least one level"));
        }
        out.push(Factor {
            path: path.clone(),
            levels: items.to_vec(),
        });
    }
    Ok(out)
}

/// Tolerances: an object mapping metric names to bands, e.g.
/// `{"delivery_ratio": {"min": 0.95, "abs": 0.02}}`.
fn parse_tolerances(j: &Json) -> Result<Vec<ToleranceSpec>, SpecError> {
    let members = match &j.v {
        Val::Obj(e) => e,
        _ => {
            return Err(SpecError::at(
                "tolerances",
                j.line,
                format!("expected an object, found {}", j.type_name()),
            ))
        }
    };
    let mut out = Vec::with_capacity(members.len());
    for (metric, band) in members {
        let path = format!("tolerances.{metric}");
        let fields = match &band.v {
            Val::Obj(e) => e,
            _ => {
                return Err(SpecError::at(
                    path,
                    band.line,
                    format!("expected an object, found {}", band.type_name()),
                ))
            }
        };
        let mut spec = ToleranceSpec {
            metric: metric.clone(),
            min: None,
            max: None,
            abs: 0.0,
            rel: 0.0,
        };
        for (k, v) in fields {
            let value = match v.v {
                Val::Num(n) => n,
                _ => {
                    return Err(SpecError::at(
                        format!("{path}.{k}"),
                        v.line,
                        format!("expected a number, found {}", v.type_name()),
                    ))
                }
            };
            match k.as_str() {
                "min" => spec.min = Some(value),
                "max" => spec.max = Some(value),
                "abs" => spec.abs = value,
                "rel" => spec.rel = value,
                other => {
                    return Err(SpecError::at(
                        path,
                        v.line,
                        format!("unknown key \"{other}\"; expected one of: abs, max, min, rel"),
                    ))
                }
            }
        }
        if spec.min.is_none() && spec.max.is_none() {
            return Err(SpecError::at(
                path,
                band.line,
                "give at least one of \"min\" / \"max\"",
            ));
        }
        out.push(spec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> CampaignPlan {
        CampaignPlan::from_json(&json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn grid_is_the_cartesian_product_in_file_order() {
        let p = plan(
            r#"{"campaign": "t",
                "factors": {"scenario.hosts": [4, 8], "scenario.radio.loss": [0.0, 0.1, 0.2]}}"#,
        );
        let cells = p.cells();
        assert_eq!(cells.len(), 6);
        // First factor varies slowest.
        assert_eq!(cells[0][0].1.v, Val::Num(4.0));
        assert_eq!(cells[0][1].1.v, Val::Num(0.0));
        assert_eq!(cells[5][0].1.v, Val::Num(8.0));
        assert_eq!(cells[5][1].1.v, Val::Num(0.2));
    }

    #[test]
    fn lhs_covers_every_stratum_once_and_reproduces() {
        let text = r#"{"campaign": "t", "mode": "lhs", "samples": 8, "lhs_seed": 3,
                       "factors": {"scenario.radio.loss": [0.0, 0.08],
                                   "scenario.queue": ["wheel", "heap"]}}"#;
        let a = plan(text).cells();
        let b = plan(text).cells();
        assert_eq!(a.len(), 8);
        // Pure function of the plan.
        for (ca, cb) in a.iter().zip(&b) {
            for ((pa, va), (pb, vb)) in ca.iter().zip(cb) {
                assert_eq!(pa, pb);
                assert_eq!(va.v, vb.v);
            }
        }
        // Continuous factor: 8 samples land in 8 distinct strata.
        let mut strata: Vec<usize> = a
            .iter()
            .map(|c| match c[0].1.v {
                Val::Num(v) => (v / 0.01).floor() as usize,
                _ => unreachable!(),
            })
            .collect();
        strata.sort_unstable();
        strata.dedup();
        assert_eq!(strata.len(), 8, "each stratum hit exactly once");
        // Discrete factor: both levels appear.
        let heaps = a
            .iter()
            .filter(|c| matches!(&c[1].1.v, Val::Str(s) if s == "heap"))
            .count();
        assert_eq!(heaps, 4, "strata spread evenly over discrete levels");
    }

    #[test]
    fn integer_ranges_stay_integers_under_lhs() {
        let p = plan(
            r#"{"campaign": "t", "mode": "lhs", "samples": 5,
                "factors": {"scenario.hosts": [10, 50]}}"#,
        );
        for cell in p.cells() {
            match cell[0].1.v {
                Val::Num(v) => assert_eq!(v.fract(), 0.0, "host count must stay integral: {v}"),
                ref other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn overrides_merge_onto_base() {
        let p = plan(
            r#"{"campaign": "t",
                "base": {"scenario": {"hosts": 8, "radio": {"loss": 0.0}}},
                "overrides": {"scenario": {"radio": {"loss": 0.05}}}}"#,
        );
        let doc = p.document_for(&p.cells()[0]).unwrap();
        let scenario = doc.get("scenario").unwrap();
        assert_eq!(scenario.get("hosts").unwrap().v, Val::Num(8.0));
        assert_eq!(
            scenario.get("radio").unwrap().get("loss").unwrap().v,
            Val::Num(0.05)
        );
    }

    #[test]
    fn bad_plans_are_rejected_with_context() {
        let e =
            CampaignPlan::from_json(&json::parse(r#"{"campaign": "t", "mode": "lhs"}"#).unwrap())
                .unwrap_err();
        assert_eq!(e.path, "samples");

        let e = CampaignPlan::from_json(
            &json::parse(r#"{"campaign": "t", "factors": {"radio.loss": [0.1]}}"#).unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("scenario."), "{e}");

        let e = CampaignPlan::from_json(
            &json::parse(r#"{"campaign": "t", "tolerances": {"delivery_ratio": {"abs": 0.1}}}"#)
                .unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("min"), "{e}");
    }

    #[test]
    fn tolerance_bands_apply_slack() {
        let t = ToleranceSpec {
            metric: "delivery_ratio".into(),
            min: Some(0.95),
            max: None,
            abs: 0.02,
            rel: 0.0,
        };
        assert!(t.check(0.96));
        assert!(t.check(0.935), "within abs slack");
        assert!(!t.check(0.91));
        assert!(!t.check(f64::NAN));
    }
}
