//! Campaign execution: expand a [`CampaignPlan`] into (cell, seed)
//! jobs, fan them across cores, aggregate per-cell statistics, apply
//! tolerance checks, and render one **canonical** JSON report.
//!
//! Determinism contract: the canonical report is a pure function of
//! (plan, seeds). Job order is fixed (cells in expansion order × seeds
//! in file order), each job's simulation is a pure function of its
//! document, the parallel fan-out only changes *when* a job runs (its
//! result lands back at its index), and every wall-clock-derived report
//! field is masked to the exact values [`RunReport::fingerprint`] uses
//! (`null` / `""` / `0`). Running the same campaign twice must produce
//! byte-identical reports — `tests/campaign.rs` and the CI
//! `campaign-smoke` step both diff-gate this.

use super::json::{self, Json};
use super::plan::{CampaignPlan, Cell, SweepMode};
use super::spec::{ScenarioSpec, SpecError};
use crate::scenario::RunReport;
use rayon::prelude::*;
use std::path::Path;
use std::time::Instant;

/// The flat metric keys every run contributes, in report order. Each
/// maps to a machine-independent `RunReport` field; the wall-derived
/// fields are *not* here — they appear in the canonical report only as
/// fingerprint-style masked constants.
pub const METRICS: [&str; 19] = [
    "delivery_ratio",
    "mean_degree",
    "events",
    "sim_s",
    "tx_bytes",
    "rx_frames",
    "nodes_killed",
    "totals.data_sent",
    "totals.data_acked",
    "totals.data_received",
    "totals.data_failed",
    "totals.rreq_sent",
    "totals.rrep_sent",
    "totals.crep_sent",
    "totals.rerr_sent",
    "totals.rejected",
    "totals.collisions_detected",
    "crypto.executed",
    "crypto.cached",
];

/// One run's machine-independent metrics, keyed like [`METRICS`]
/// (`None` = the metric's denominator was empty, serialized `null`).
fn metrics_of(r: &RunReport) -> Vec<(&'static str, Option<f64>)> {
    vec![
        ("delivery_ratio", r.delivery_ratio),
        ("mean_degree", r.mean_degree),
        ("events", Some(r.events as f64)),
        ("sim_s", Some(r.sim_s)),
        ("tx_bytes", Some(r.tx_bytes as f64)),
        ("rx_frames", Some(r.rx_frames as f64)),
        ("nodes_killed", Some(r.nodes_killed as f64)),
        ("totals.data_sent", Some(r.totals.data_sent as f64)),
        ("totals.data_acked", Some(r.totals.data_acked as f64)),
        ("totals.data_received", Some(r.totals.data_received as f64)),
        ("totals.data_failed", Some(r.totals.data_failed as f64)),
        ("totals.rreq_sent", Some(r.totals.rreq_sent as f64)),
        ("totals.rrep_sent", Some(r.totals.rrep_sent as f64)),
        ("totals.crep_sent", Some(r.totals.crep_sent as f64)),
        ("totals.rerr_sent", Some(r.totals.rerr_sent as f64)),
        ("totals.rejected", Some(r.totals.rejected as f64)),
        (
            "totals.collisions_detected",
            Some(r.totals.collisions_detected as f64),
        ),
        ("crypto.executed", Some(r.crypto.executed as f64)),
        ("crypto.cached", Some(r.crypto.cached as f64)),
    ]
}

/// One tolerance verdict on one cell.
#[derive(Clone, Debug)]
pub struct CheckResult {
    pub metric: String,
    pub mean: Option<f64>,
    pub pass: bool,
}

/// One expanded cell's outcome across its seed repetitions.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub assignments: Cell,
    /// Per-seed metric rows, one per plan seed, in seed order.
    pub per_seed: Vec<Vec<(&'static str, Option<f64>)>>,
    /// Per-metric mean across seeds (`None` if every seed was `None`).
    pub mean: Vec<(&'static str, Option<f64>)>,
    pub checks: Vec<CheckResult>,
    /// Display-only wall stats (sum of run walls, mean engine rate);
    /// never serialized canonically.
    pub wall_s: f64,
    pub engine_rate: f64,
}

impl CellResult {
    pub fn mean_of(&self, metric: &str) -> Option<f64> {
        self.mean
            .iter()
            .find(|(k, _)| *k == metric)
            .and_then(|(_, v)| *v)
    }

    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// A whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    pub name: String,
    pub mode: SweepMode,
    pub seeds: Vec<u64>,
    pub cells: Vec<CellResult>,
    /// Display-only: total wall seconds for the whole fan-out.
    pub wall_s: f64,
}

impl CampaignReport {
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellResult::passed)
    }

    /// The deterministic report document: sorted keys, fixed float
    /// format, wall-derived fields masked exactly like
    /// [`RunReport::fingerprint`]. Byte-identical across runs of the
    /// same plan.
    pub fn canonical_json(&self) -> String {
        let masked = |row: &[(&'static str, Option<f64>)]| {
            let mut members: Vec<(String, Json)> = row
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.map_or(Json::null(), Json::num)))
                .collect();
            // The fingerprint masks, spelled out so a report diff shows
            // them held constant rather than silently omitted.
            members.push(("wall_s".into(), Json::null()));
            members.push(("events_per_sec".into(), Json::null()));
            members.push(("events_per_sec_engine".into(), Json::null()));
            members.push(("queue_impl".into(), Json::str("")));
            members.push(("exec_mode".into(), Json::str("")));
            members.push(("shards".into(), Json::num(0.0)));
            members.push(("peak_rss_bytes".into(), Json::null()));
            members.push(("alloc_bytes".into(), Json::null()));
            members.push(("alloc_count".into(), Json::null()));
            Json::obj(members)
        };
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let assignments = Json::obj(
                    c.assignments
                        .iter()
                        .map(|(p, v)| (p.clone(), v.clone()))
                        .collect(),
                );
                let checks = Json::arr(
                    c.checks
                        .iter()
                        .map(|ck| {
                            Json::obj(vec![
                                ("metric".into(), Json::str(ck.metric.clone())),
                                ("mean".into(), ck.mean.map_or(Json::null(), Json::num)),
                                ("pass".into(), Json::bool(ck.pass)),
                            ])
                        })
                        .collect(),
                );
                Json::obj(vec![
                    ("assignments".into(), assignments),
                    ("mean".into(), masked(&c.mean)),
                    (
                        "per_seed".into(),
                        Json::arr(c.per_seed.iter().map(|row| masked(row)).collect()),
                    ),
                    ("checks".into(), checks),
                    ("pass".into(), Json::bool(c.passed())),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("campaign".into(), Json::str(self.name.clone())),
            (
                "mode".into(),
                match self.mode {
                    SweepMode::Grid => Json::str("grid"),
                    SweepMode::Lhs { samples, lhs_seed } => Json::obj(vec![
                        ("lhs".into(), Json::num(samples as f64)),
                        ("lhs_seed".into(), Json::num(lhs_seed as f64)),
                    ]),
                },
            ),
            (
                "seeds".into(),
                Json::arr(self.seeds.iter().map(|&s| Json::num(s as f64)).collect()),
            ),
            ("cells".into(), Json::arr(cells)),
            ("pass".into(), Json::bool(self.passed())),
        ]);
        json::canonical(&doc)
    }

    /// A human summary, one row per cell.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign {} · {} cells × {} seeds · {:.1}s wall\n",
            self.name,
            self.cells.len(),
            self.seeds.len(),
            self.wall_s
        ));
        for c in &self.cells {
            let assigns = if c.assignments.is_empty() {
                "(base)".to_string()
            } else {
                c.assignments
                    .iter()
                    .map(|(p, v)| {
                        format!("{}={}", p.rsplit('.').next().unwrap_or(p), json::compact(v))
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let delivery = c
                .mean_of("delivery_ratio")
                .map_or("  n/a".to_string(), |v| format!("{v:5.3}"));
            out.push_str(&format!(
                "  [{}] {:40} delivery {} | {:>9.0} ev/s engine | {}\n",
                if c.passed() { "ok" } else { "FAIL" },
                assigns,
                delivery,
                c.engine_rate,
                format_args!("{} runs", c.per_seed.len()),
            ));
            for ck in &c.checks {
                if !ck.pass {
                    out.push_str(&format!(
                        "       tolerance FAILED: {} mean {:?}\n",
                        ck.metric, ck.mean
                    ));
                }
            }
        }
        out
    }
}

/// Load a plan file, resolving its spec/source split: a `base_file` key
/// names a scenario document on disk (relative to the plan file) that
/// becomes the defaults layer, with the plan's inline `base` /
/// `overrides` merged on top.
pub fn load_plan(path: &Path) -> Result<CampaignPlan, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::at(path.display().to_string(), 0, format!("read failed: {e}")))?;
    let mut doc = json::parse(&text).map_err(|e| {
        SpecError::at(
            path.display().to_string(),
            e.line,
            format!("JSON syntax: {}", e.msg),
        )
    })?;

    // Spec/source split: hoist base_file's contents under "base",
    // beneath whatever inline base the plan carries.
    if let json::Val::Obj(members) = &mut doc.v {
        let base_file = members.iter().position(|(k, _)| k == "base_file");
        if let Some(idx) = base_file {
            let (_, bf) = members.remove(idx);
            let rel = match &bf.v {
                json::Val::Str(s) => s.clone(),
                _ => {
                    return Err(SpecError::at(
                        "base_file",
                        bf.line,
                        format!("expected a string path, found {}", bf.type_name()),
                    ))
                }
            };
            let base_path = path.parent().unwrap_or(Path::new(".")).join(&rel);
            let base_text = std::fs::read_to_string(&base_path).map_err(|e| {
                SpecError::at(
                    "base_file",
                    bf.line,
                    format!("read {} failed: {e}", base_path.display()),
                )
            })?;
            let defaults = json::parse(&base_text).map_err(|e| {
                SpecError::at(
                    format!("{}", base_path.display()),
                    e.line,
                    format!("JSON syntax: {}", e.msg),
                )
            })?;
            let merged = match members.iter().position(|(k, _)| k == "base") {
                Some(bidx) => {
                    let m = json::merge(&defaults, &members[bidx].1);
                    members.remove(bidx);
                    m
                }
                None => defaults,
            };
            members.push(("base".to_string(), merged));
        }
    }
    CampaignPlan::from_json(&doc)
}

/// Run every (cell × seed) job and aggregate. Validates all documents
/// and tolerance metric names **before** simulating anything, so a bad
/// cell fails in milliseconds, not after the grid.
pub fn run_campaign(plan: &CampaignPlan) -> Result<CampaignReport, SpecError> {
    for t in &plan.tolerances {
        if !METRICS.contains(&t.metric.as_str()) {
            return Err(SpecError::at(
                format!("tolerances.{}", t.metric),
                0,
                format!("unknown metric; expected one of: {}", METRICS.join(", ")),
            ));
        }
    }
    let cells = plan.cells();

    // Expand and validate every job document up front.
    struct Job {
        cell_idx: usize,
        spec: ScenarioSpec,
    }
    let mut jobs = Vec::with_capacity(cells.len() * plan.seeds.len());
    for (cell_idx, cell) in cells.iter().enumerate() {
        let mut doc = plan.document_for(cell)?;
        for &seed in &plan.seeds {
            json::set_path(&mut doc, "scenario.seed", Json::num(seed as f64))
                .map_err(|e| SpecError::at("scenario.seed", 0, e))?;
            let spec = ScenarioSpec::from_json(&doc).map_err(|e| {
                SpecError::at(
                    format!("cell {cell_idx} ({}): {}", describe_cell(cell), e.path),
                    e.line,
                    e.msg.clone(),
                )
            })?;
            jobs.push(Job { cell_idx, spec });
        }
    }

    let started = Instant::now();
    let results: Vec<Result<RunReport, SpecError>> =
        jobs.par_iter().map(|job| job.spec.run()).collect();
    let wall_s = started.elapsed().as_secs_f64();

    let mut reports: Vec<Vec<RunReport>> = vec![Vec::new(); cells.len()];
    for (job, result) in jobs.iter().zip(results) {
        reports[job.cell_idx].push(result?);
    }

    let cell_results = cells
        .into_iter()
        .zip(reports)
        .map(|(assignments, runs)| {
            let per_seed: Vec<_> = runs.iter().map(metrics_of).collect();
            let mean: Vec<(&'static str, Option<f64>)> = METRICS
                .iter()
                .map(|&metric| {
                    let vals: Vec<f64> = per_seed
                        .iter()
                        .filter_map(|row| {
                            row.iter().find(|(k, _)| *k == metric).and_then(|(_, v)| *v)
                        })
                        .collect();
                    let mean = if vals.is_empty() {
                        None
                    } else {
                        Some(vals.iter().sum::<f64>() / vals.len() as f64)
                    };
                    (metric, mean)
                })
                .collect();
            let checks = plan
                .tolerances
                .iter()
                .map(|t| {
                    let m = mean
                        .iter()
                        .find(|(k, _)| *k == t.metric)
                        .and_then(|(_, v)| *v);
                    CheckResult {
                        metric: t.metric.clone(),
                        mean: m,
                        pass: m.is_some_and(|v| t.check(v)),
                    }
                })
                .collect();
            let cell_wall: f64 = runs.iter().map(|r| r.wall_s).sum();
            let engine_rate = if runs.is_empty() {
                0.0
            } else {
                runs.iter().map(|r| r.events_per_sec_engine).sum::<f64>() / runs.len() as f64
            };
            CellResult {
                assignments,
                per_seed,
                mean,
                checks,
                wall_s: cell_wall,
                engine_rate,
            }
        })
        .collect();

    Ok(CampaignReport {
        name: plan.name.clone(),
        mode: plan.mode.clone(),
        seeds: plan.seeds.clone(),
        cells: cell_results,
        wall_s,
    })
}

fn describe_cell(cell: &Cell) -> String {
    if cell.is_empty() {
        return "base".to_string();
    }
    cell.iter()
        .map(|(p, v)| format!("{p}={}", json::compact(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> CampaignPlan {
        CampaignPlan::from_json(&json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn campaign_report_is_byte_identical_across_runs() {
        let p = plan(
            r#"{"campaign": "smoke",
                "seeds": [1, 2],
                "base": {"scenario": {"hosts": 4},
                         "workload": {"flows": [[0, 3]], "packets": 2, "interval_ms": 200.0}},
                "factors": {"scenario.radio.loss": [0.0, 0.05]},
                "tolerances": {"delivery_ratio": {"min": 0.5, "abs": 0.1}}}"#,
        );
        let a = run_campaign(&p).unwrap();
        let b = run_campaign(&p).unwrap();
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.cells.len(), 2);
        assert_eq!(a.cells[0].per_seed.len(), 2);
        // Masked exactly like the fingerprint: present, constant.
        let doc = a.canonical_json();
        assert!(doc.contains("\"wall_s\": null"), "{doc}");
        assert!(doc.contains("\"exec_mode\": \"\""), "{doc}");
        assert!(doc.contains("\"shards\": 0"), "{doc}");
        assert!(!doc.contains("NaN"), "{doc}");
    }

    #[test]
    fn seeds_actually_vary_the_runs() {
        let p = plan(
            r#"{"campaign": "t", "seeds": [1, 99],
                "base": {"scenario": {"hosts": 6, "placement": {"kind": "uniform"},
                                      "field": {"density": 12.0}},
                         "workload": {"flows": [[0, 5]], "packets": 2, "interval_ms": 200.0}}}"#,
        );
        let r = run_campaign(&p).unwrap();
        let rows = &r.cells[0].per_seed;
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0], rows[1], "different seeds, different universes");
    }

    #[test]
    fn tolerance_failure_is_reported_not_panicked() {
        let p = plan(
            r#"{"campaign": "t",
                "base": {"scenario": {"hosts": 4},
                         "workload": {"flows": [[0, 3]], "packets": 2, "interval_ms": 200.0}},
                "tolerances": {"delivery_ratio": {"min": 1.5}}}"#,
        );
        let r = run_campaign(&p).unwrap();
        assert!(!r.passed());
        assert!(r.summary_table().contains("FAIL"));
    }

    #[test]
    fn unknown_tolerance_metric_fails_before_any_run() {
        let p = plan(r#"{"campaign": "t", "tolerances": {"deliverance": {"min": 0.9}}}"#);
        let e = run_campaign(&p).unwrap_err();
        assert_eq!(e.path, "tolerances.deliverance");
        assert!(e.msg.contains("delivery_ratio"), "{e}");
    }

    #[test]
    fn bad_cell_documents_fail_fast_with_cell_context() {
        let p = plan(
            r#"{"campaign": "t",
                "base": {"scenario": {"hosts": 4}},
                "factors": {"scenario.radio.loss": [0.0, 2.0]}}"#,
        );
        let e = run_campaign(&p).unwrap_err();
        assert!(e.path.contains("scenario.radio.loss=2"), "{e}");
        assert!(e.msg.contains("[0, 1)"), "{e}");
    }
}
