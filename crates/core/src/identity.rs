//! Host identity: the key pair, the CGA modifier, and the resulting
//! address, plus the verification helpers every receiver runs.

use manet_crypto::{
    backend_for, BackendKind, BatchVerifier, CryptoBackend, KeyPair, Provenance, PublicKey,
    RsaError, Signature, VerifyCache, VerifyKey,
};
use manet_wire::{cga, CgaError, IdentityProof, Ipv6Addr};
use rand::Rng;
use std::sync::Arc;

/// A host's cryptographic identity and current CGA.
pub struct HostIdentity {
    keypair: KeyPair,
    rn: u64,
    ip: Ipv6Addr,
    /// The signature scheme every `prove`/`sign` runs on. A bare
    /// identity defaults to the RSA oracle; nodes and the scenario layer
    /// inject the configured backend (see `ProtocolConfig::crypto_backend`).
    backend: Arc<dyn CryptoBackend>,
}

impl HostIdentity {
    /// Generate a fresh identity: new key pair, random modifier, CGA.
    pub fn generate<R: Rng>(key_bits: u32, rng: &mut R) -> Self {
        let keypair = KeyPair::generate(key_bits, rng);
        let rn = rng.gen();
        let ip = cga::generate(keypair.public(), rn);
        let backend = backend_for(BackendKind::Rsa);
        HostIdentity {
            keypair,
            rn,
            ip,
            backend,
        }
    }

    /// Build from an existing key pair (e.g. the DNS server whose public
    /// key was distributed out of band).
    pub fn from_keypair<R: Rng>(keypair: KeyPair, rng: &mut R) -> Self {
        let rn = rng.gen();
        let ip = cga::generate(keypair.public(), rn);
        let backend = backend_for(BackendKind::Rsa);
        HostIdentity {
            keypair,
            rn,
            ip,
            backend,
        }
    }

    /// Route all signing through `backend`. CGA generation is
    /// backend-independent (it hashes the public key, not signatures),
    /// so the address survives a backend swap.
    pub fn set_backend(&mut self, backend: Arc<dyn CryptoBackend>) {
        self.backend = backend;
    }

    /// The signature backend this identity signs with.
    pub fn backend(&self) -> &Arc<dyn CryptoBackend> {
        &self.backend
    }

    /// Current address.
    pub fn ip(&self) -> Ipv6Addr {
        self.ip
    }

    /// Current CGA modifier.
    pub fn rn(&self) -> u64 {
        self.rn
    }

    /// Public key.
    pub fn public(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// Re-roll the modifier after a collision (Section 3.1: "generate a
    /// new IP address (with a new rn) ... while PK is kept unchanged").
    pub fn reroll<R: Rng>(&mut self, rng: &mut R) -> Ipv6Addr {
        self.rn = rng.gen();
        self.ip = cga::generate(self.keypair.public(), self.rn);
        self.ip
    }

    /// Switch to a specific modifier (IP-change flow, Section 3.2).
    pub fn set_rn(&mut self, rn: u64) -> Ipv6Addr {
        self.rn = rn;
        self.ip = cga::generate(self.keypair.public(), rn);
        self.ip
    }

    /// Sign `payload` and attach our key material: the `([…]XSK, XPK,
    /// Xrn)` triple that travels in every secure message.
    pub fn prove(&self, payload: &[u8]) -> IdentityProof {
        IdentityProof {
            pk: self.keypair.public().clone(),
            rn: self.rn,
            sig: self.backend.sign(&self.keypair, payload),
        }
    }

    /// Plain signature without the key/rn attachment (for messages
    /// verified against an out-of-band key, like everything the DNS signs).
    pub fn sign(&self, payload: &[u8]) -> Signature {
        self.backend.sign(&self.keypair, payload)
    }
}

impl std::fmt::Debug for HostIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostIdentity({}, rn={:#x})", self.ip, self.rn)
    }
}

/// Why a received identity proof was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofError {
    /// The claimed address is not the CGA of the attached key material.
    Cga(CgaError),
    /// The signature does not verify under the attached key.
    Signature,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::Cga(e) => write!(f, "CGA check failed: {e}"),
            ProofError::Signature => write!(f, "signature check failed"),
        }
    }
}

impl std::error::Error for ProofError {}

/// The two-step check from Sections 3.1/3.3: (1) the lower part of
/// `claimed_ip` equals `H(PK, rn)` for the attached key material, and
/// (2) the signature over `payload` verifies under that key.
pub fn verify_proof(
    claimed_ip: &Ipv6Addr,
    payload: &[u8],
    proof: &IdentityProof,
) -> Result<(), ProofError> {
    verify_proof_with(claimed_ip, payload, proof, None).0
}

/// Verify a signature against an out-of-band-known key (the DNS case:
/// every host knows `NPK` a priori, so no CGA check applies).
pub fn verify_known_key(pk: &PublicKey, payload: &[u8], sig: &Signature) -> Result<(), ProofError> {
    verify_known_key_with(pk, payload, sig, None).0
}

/// [`verify_proof`] with an optional verdict memo. The CGA half is a
/// single SHA-256 and is always recomputed; only the RSA half is
/// memoized. The returned [`Provenance`] says whether the RSA work
/// actually ran — a CGA rejection reports `Computed` (nothing was
/// cached, nothing was spent on RSA).
pub fn verify_proof_with(
    claimed_ip: &Ipv6Addr,
    payload: &[u8],
    proof: &IdentityProof,
    cache: Option<&mut VerifyCache>,
) -> (Result<(), ProofError>, Provenance) {
    if let Err(e) = cga::verify(claimed_ip, &proof.pk, proof.rn) {
        return (Err(ProofError::Cga(e)), Provenance::Computed);
    }
    verify_known_key_with(&proof.pk, payload, &proof.sig, cache)
}

/// [`verify_known_key`] with an optional verdict memo.
pub fn verify_known_key_with(
    pk: &PublicKey,
    payload: &[u8],
    sig: &Signature,
    cache: Option<&mut VerifyCache>,
) -> (Result<(), ProofError>, Provenance) {
    match cache {
        Some(c) => {
            let (valid, prov) = c.verify(pk, payload, sig);
            let res = if valid {
                Ok(())
            } else {
                Err(ProofError::Signature)
            };
            (res, prov)
        }
        None => (
            pk.verify(payload, sig)
                .map_err(|_: RsaError| ProofError::Signature),
            Provenance::Computed,
        ),
    }
}

/// Resolve one triple's verdict from the cheapest available source:
/// the network-wide batch table, else an inline backend execution.
/// Verdict purity makes the source invisible to protocol decisions.
fn batch_or_backend(
    pk: &PublicKey,
    payload: &[u8],
    sig: &Signature,
    backend: &dyn CryptoBackend,
    batch: Option<&BatchVerifier>,
) -> bool {
    if let Some(b) = batch {
        if let Some(v) = b.verdict(&VerifyKey::for_triple(pk, payload, sig)) {
            return v;
        }
    }
    backend.verify(pk, payload, sig)
}

/// The full node-side verification pipeline for a known key: the node's
/// own [`VerifyCache`] memo, then the shared [`BatchVerifier`] table,
/// then an inline `backend` execution.
///
/// Accounting is demand-side: a batch-table hit still reports
/// [`Provenance::Computed`] — the *node* demanded a verification it had
/// not cached, exactly as in an inline run; only where the answer came
/// from differs. This is what keeps run fingerprints byte-identical
/// between batched and inline runs (actual backend executions live in
/// the backend's own counters, outside any fingerprint).
pub fn verify_known_key_pipeline(
    pk: &PublicKey,
    payload: &[u8],
    sig: &Signature,
    cache: Option<&mut VerifyCache>,
    backend: &dyn CryptoBackend,
    batch: Option<&BatchVerifier>,
) -> (Result<(), ProofError>, Provenance) {
    let (valid, prov) = match cache {
        Some(c) => c.verify_with(pk, payload, sig, || {
            batch_or_backend(pk, payload, sig, backend, batch)
        }),
        None => (
            batch_or_backend(pk, payload, sig, backend, batch),
            Provenance::Computed,
        ),
    };
    let res = if valid {
        Ok(())
    } else {
        Err(ProofError::Signature)
    };
    (res, prov)
}

/// [`verify_proof_with`] on the full pipeline: CGA check first (always
/// recomputed — one SHA-256), then [`verify_known_key_pipeline`].
pub fn verify_proof_pipeline(
    claimed_ip: &Ipv6Addr,
    payload: &[u8],
    proof: &IdentityProof,
    cache: Option<&mut VerifyCache>,
    backend: &dyn CryptoBackend,
    batch: Option<&BatchVerifier>,
) -> (Result<(), ProofError>, Provenance) {
    if let Err(e) = cga::verify(claimed_ip, &proof.pk, proof.rn) {
        return (Err(ProofError::Cga(e)), Provenance::Computed);
    }
    verify_known_key_pipeline(&proof.pk, payload, &proof.sig, cache, backend, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn generated_identity_owns_its_address() {
        let mut r = rng(1);
        let id = HostIdentity::generate(512, &mut r);
        assert!(id.ip().is_site_local());
        let proof = id.prove(b"payload");
        assert_eq!(verify_proof(&id.ip(), b"payload", &proof), Ok(()));
    }

    #[test]
    fn proof_fails_for_wrong_payload() {
        let mut r = rng(2);
        let id = HostIdentity::generate(512, &mut r);
        let proof = id.prove(b"payload");
        assert_eq!(
            verify_proof(&id.ip(), b"other", &proof),
            Err(ProofError::Signature)
        );
    }

    #[test]
    fn proof_fails_for_wrong_address() {
        let mut r = rng(3);
        let id = HostIdentity::generate(512, &mut r);
        let victim = HostIdentity::generate(512, &mut r);
        // Attacker signs correctly with its own key but claims the
        // victim's address: the CGA check catches it.
        let proof = id.prove(b"payload");
        assert!(matches!(
            verify_proof(&victim.ip(), b"payload", &proof),
            Err(ProofError::Cga(CgaError::InterfaceIdMismatch))
        ));
    }

    #[test]
    fn reroll_changes_address_not_key() {
        let mut r = rng(4);
        let mut id = HostIdentity::generate(512, &mut r);
        let ip1 = id.ip();
        let pk1 = id.public().clone();
        let ip2 = id.reroll(&mut r);
        assert_ne!(ip1, ip2);
        assert_eq!(*id.public(), pk1);
        let proof = id.prove(b"x");
        assert_eq!(verify_proof(&ip2, b"x", &proof), Ok(()));
        assert!(verify_proof(&ip1, b"x", &proof).is_err());
    }

    #[test]
    fn set_rn_is_deterministic() {
        let mut r = rng(5);
        let mut id = HostIdentity::generate(512, &mut r);
        let a = id.set_rn(42);
        let b = id.set_rn(43);
        assert_ne!(a, b);
        assert_eq!(id.set_rn(42), a);
    }

    #[test]
    fn known_key_verification() {
        let mut r = rng(6);
        let id = HostIdentity::generate(512, &mut r);
        let sig = id.sign(b"dns says so");
        assert_eq!(verify_known_key(id.public(), b"dns says so", &sig), Ok(()));
        assert_eq!(
            verify_known_key(id.public(), b"dns says no", &sig),
            Err(ProofError::Signature)
        );
    }

    #[test]
    fn default_backend_signs_exactly_like_raw_rsa() {
        let mut r = rng(7);
        let id = HostIdentity::generate(512, &mut r);
        assert_eq!(id.backend().kind(), BackendKind::Rsa);
        // The backend-routed signature is byte-identical to the key
        // pair's own — swapping the default in is a pure refactor.
        let direct = id.keypair.sign(b"payload");
        assert_eq!(id.sign(b"payload").to_bytes(), direct.to_bytes());
        assert_eq!(id.prove(b"payload").sig.to_bytes(), direct.to_bytes());
    }

    #[test]
    fn swapped_backend_changes_signature_universe() {
        let mut r = rng(8);
        let mut id = HostIdentity::generate(512, &mut r);
        let ip_before = id.ip();
        let rsa_sig = id.sign(b"m");
        id.set_backend(backend_for(BackendKind::HashSig));
        // Same address (CGA is key-derived, not signature-derived)...
        assert_eq!(id.ip(), ip_before);
        // ...different signature bytes, verifiable only under the same
        // backend.
        let hs_sig = id.sign(b"m");
        assert_ne!(rsa_sig.to_bytes(), hs_sig.to_bytes());
        let hs = backend_for(BackendKind::HashSig);
        assert!(hs.verify(id.public(), b"m", &hs_sig));
        assert!(!hs.verify(id.public(), b"m", &rsa_sig));
    }

    #[test]
    fn pipeline_matches_plain_verify_under_rsa() {
        let mut r = rng(9);
        let id = HostIdentity::generate(512, &mut r);
        let other = HostIdentity::generate(512, &mut r);
        let backend = backend_for(BackendKind::Rsa);
        let proof = id.prove(b"p");
        for (claimed, payload) in [
            (id.ip(), b"p".as_slice()),
            (id.ip(), b"q".as_slice()),
            (other.ip(), b"p".as_slice()),
        ] {
            let plain = verify_proof(&claimed, payload, &proof);
            let (piped, _) =
                verify_proof_pipeline(&claimed, payload, &proof, None, backend.as_ref(), None);
            assert_eq!(plain, piped);
        }
    }

    #[test]
    fn pipeline_prefers_cache_then_batch_then_backend() {
        let mut r = rng(10);
        let id = HostIdentity::generate(512, &mut r);
        let backend = backend_for(BackendKind::Rsa);
        let sig = id.sign(b"m");
        let batch = BatchVerifier::new(16);

        // Batch table empty: the pipeline falls back to an inline
        // execution (one backend op).
        let (res, prov) = verify_known_key_pipeline(
            id.public(),
            b"m",
            &sig,
            None,
            backend.as_ref(),
            Some(&batch),
        );
        assert_eq!((res, prov), (Ok(()), Provenance::Computed));
        assert_eq!(backend.verifies_executed(), 1);

        // Published verdict: served from the shared table, no new
        // backend op, still *demand-side* Computed.
        batch.enqueue(id.public(), b"m", &sig);
        batch.drain(backend.as_ref());
        let executed = backend.verifies_executed();
        let (res, prov) = verify_known_key_pipeline(
            id.public(),
            b"m",
            &sig,
            None,
            backend.as_ref(),
            Some(&batch),
        );
        assert_eq!((res, prov), (Ok(()), Provenance::Computed));
        assert_eq!(backend.verifies_executed(), executed, "table hit, no op");

        // A warm node cache wins over everything: Cached provenance,
        // nothing touches table or backend.
        let mut cache = VerifyCache::new(8);
        let (_, first) = verify_known_key_pipeline(
            id.public(),
            b"m",
            &sig,
            Some(&mut cache),
            backend.as_ref(),
            Some(&batch),
        );
        assert_eq!(first, Provenance::Computed);
        let (res, prov) = verify_known_key_pipeline(
            id.public(),
            b"m",
            &sig,
            Some(&mut cache),
            backend.as_ref(),
            Some(&batch),
        );
        assert_eq!((res, prov), (Ok(()), Provenance::Cached));
    }
}
