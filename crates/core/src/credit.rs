//! Credit management (Section 3.4).
//!
//! Every source keeps a credit per host that has relayed for it: +reward
//! when a data packet is end-to-end acknowledged, a small penalty for
//! every relay of a timed-out packet, and a large slash when a host is
//! identified as misbehaving (e.g. its RERR report rate crosses the
//! threshold). Route selection prefers the route whose *minimum* credit
//! is highest — "S should try to choose a route in which all hosts
//! exhibit high credits".

use crate::config::CreditConfig;
use crate::fxhash::FxHashMap;
use manet_wire::Ipv6Addr;

/// Per-source credit table.
#[derive(Debug)]
pub struct CreditManager {
    cfg: CreditConfig,
    credits: FxHashMap<Ipv6Addr, i64>,
    /// RERR reports seen per reporting host.
    rerr_counts: FxHashMap<Ipv6Addr, u32>,
}

impl CreditManager {
    pub fn new(cfg: CreditConfig) -> Self {
        CreditManager {
            cfg,
            credits: FxHashMap::default(),
            rerr_counts: FxHashMap::default(),
        }
    }

    /// Credit of a host (the configured initial value if unseen).
    pub fn credit(&self, host: &Ipv6Addr) -> i64 {
        self.credits.get(host).copied().unwrap_or(self.cfg.initial)
    }

    /// Reward every relay of an acknowledged route ("the credit of each
    /// host in the route is increased by one").
    pub fn reward_route(&mut self, relays: &[Ipv6Addr]) {
        for r in relays {
            *self.credits.entry(*r).or_insert(self.cfg.initial) += self.cfg.reward;
        }
    }

    /// Penalize every relay of a route whose end-to-end ack timed out.
    /// Individually weak evidence; black holes accumulate it fast because
    /// every route through them times out.
    pub fn penalize_route(&mut self, relays: &[Ipv6Addr]) {
        for r in relays {
            *self.credits.entry(*r).or_insert(self.cfg.initial) -= self.cfg.timeout_penalty;
        }
    }

    /// Hard slash for identified misbehaviour ("decreased by a very large
    /// amount").
    pub fn slash(&mut self, host: &Ipv6Addr) {
        *self.credits.entry(*host).or_insert(self.cfg.initial) -= self.cfg.slash;
    }

    /// Record a RERR from `reporter` about the link to `next`. Returns
    /// true (and slashes both ends) when the reporter crosses the
    /// frequency threshold — "the RERR reporting node or the node next to
    /// the reporting node might be a hostile node".
    pub fn record_rerr(&mut self, reporter: &Ipv6Addr, next: &Ipv6Addr) -> bool {
        let n = self.rerr_counts.entry(*reporter).or_insert(0);
        *n += 1;
        if *n >= self.cfg.rerr_threshold {
            self.slash(reporter);
            self.slash(next);
            true
        } else {
            false
        }
    }

    /// The route-selection score: the minimum credit across relays
    /// (`i64::MAX` for a direct route with no relays).
    pub fn route_score(&self, relays: &[Ipv6Addr]) -> i64 {
        relays
            .iter()
            .map(|r| self.credit(r))
            .min()
            .unwrap_or(i64::MAX)
    }

    /// Should this route be avoided outright (any relay below the
    /// avoidance floor)?
    pub fn route_avoided(&self, relays: &[Ipv6Addr]) -> bool {
        self.cfg.enabled && relays.iter().any(|r| self.credit(r) < self.cfg.avoid_below)
    }

    /// Is credit-based selection on?
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Hosts currently considered hostile (below the avoidance floor).
    pub fn hostile_hosts(&self) -> Vec<Ipv6Addr> {
        let mut hosts: Vec<Ipv6Addr> = self
            .credits
            // lint: allow(unordered-iter) — visit order erased by the sort below before anything observes it
            .iter()
            .filter(|(_, &c)| c < self.cfg.avoid_below)
            .map(|(ip, _)| *ip)
            .collect();
        hosts.sort_unstable();
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn mgr() -> CreditManager {
        CreditManager::new(CreditConfig::default())
    }

    #[test]
    fn unseen_hosts_start_at_initial() {
        let m = mgr();
        assert_eq!(m.credit(&ip(1)), 0);
    }

    #[test]
    fn rewards_accumulate_per_relay() {
        let mut m = mgr();
        m.reward_route(&[ip(1), ip(2)]);
        m.reward_route(&[ip(1)]);
        assert_eq!(m.credit(&ip(1)), 2);
        assert_eq!(m.credit(&ip(2)), 1);
        assert_eq!(m.credit(&ip(3)), 0);
    }

    #[test]
    fn slash_dominates_rewards() {
        let mut m = mgr();
        for _ in 0..50 {
            m.reward_route(&[ip(1)]);
        }
        m.slash(&ip(1));
        assert!(m.credit(&ip(1)) < 0, "slash must wipe out 50 rewards");
    }

    #[test]
    fn rerr_threshold_slashes_both_ends() {
        let mut m = mgr();
        assert!(!m.record_rerr(&ip(1), &ip(2)));
        assert!(!m.record_rerr(&ip(1), &ip(2)));
        assert!(
            m.record_rerr(&ip(1), &ip(2)),
            "third report crosses threshold"
        );
        assert!(m.credit(&ip(1)) <= -100);
        assert!(m.credit(&ip(2)) <= -100);
    }

    #[test]
    fn route_score_is_min_credit() {
        let mut m = mgr();
        m.reward_route(&[ip(1), ip(1), ip(1)]); // ip1 = 3
        m.reward_route(&[ip(2)]); // ip2 = 1
        assert_eq!(m.route_score(&[ip(1), ip(2)]), 1);
        assert_eq!(m.route_score(&[]), i64::MAX, "direct route is best");
    }

    #[test]
    fn avoidance_kicks_in_below_floor() {
        let mut m = mgr();
        assert!(!m.route_avoided(&[ip(1)]));
        m.slash(&ip(1));
        assert!(m.route_avoided(&[ip(1), ip(2)]));
        assert!(!m.route_avoided(&[ip(2)]));
        assert_eq!(m.hostile_hosts(), vec![ip(1)]);
    }

    #[test]
    fn disabled_credits_never_avoid() {
        let mut m = CreditManager::new(CreditConfig {
            enabled: false,
            ..CreditConfig::default()
        });
        m.slash(&ip(1));
        assert!(!m.route_avoided(&[ip(1)]));
    }

    #[test]
    fn timeout_penalty_is_gentle() {
        let mut m = mgr();
        m.penalize_route(&[ip(1)]);
        let after_one = m.credit(&ip(1));
        assert!(after_one < 0);
        assert!(after_one > -CreditConfig::default().slash);
    }
}
