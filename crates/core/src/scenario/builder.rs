//! The fluent, typed scenario builder — the single front door for
//! constructing networks.
//!
//! [`ScenarioBuilder`] carries everything stack-independent (topology,
//! radio, mobility, churn, adversaries, seed, tracing, channel);
//! selecting a stack with [`ScenarioBuilder::secure`] or
//! [`ScenarioBuilder::plain`] moves to a typed second stage that only
//! offers the knobs that stack actually has (join staggering and name
//! registration exist for the secure stack alone), ending in `build()`.
//!
//! Construction is **the** implementation: every exhibit, test, and
//! the declarative campaign layer (`crate::campaign`) build through it,
//! and `ScenarioSpec` introspects these fields directly — which is why
//! they are `pub(crate)`.

use super::network::{Network, NodeApi};
use super::placement::{positions_for, Placement};
use crate::config::{Behavior, ProtocolConfig};
use crate::intern::InternTable;
use crate::node::SecureNode;
use crate::plain::{PlainConfig, PlainDsrNode};
use manet_crypto::{backend_for, BackendKind, BatchVerifier};
use manet_sim::{
    ChannelMode, Engine, EngineConfig, ExecMode, Field, Mobility, QueueImpl, RadioConfig,
    SimDuration, SimTime,
};
use manet_wire::DomainName;
use std::marker::PhantomData;
use std::sync::Arc;

/// Verdict-table bound for the network-wide batch verifier. Sized for
/// the largest secure exhibit (S2's 10k nodes): each entry is a 72-byte
/// key plus a bool, so the worst case is a few MiB, and overflow is a
/// deterministic full flush — a perf event, never a correctness one.
const BATCH_TABLE_CAPACITY: usize = 1 << 16;

/// The host's registered name for index `i`.
pub fn host_name(i: usize) -> DomainName {
    DomainName::new(&format!("h{i}.manet")).expect("static name is valid")
}

/// Field edge that gives `n` uniformly placed nodes an expected radio
/// degree of `target`: solve `n·πr²/A = target` for a square.
pub fn field_for_density(n: usize, range: f64, target: f64) -> Field {
    let area = n as f64 * std::f64::consts::PI * range * range / target;
    let edge = area.sqrt();
    Field::new(edge, edge)
}

/// The `scale` family preset (the S1 exhibit shape at any size): `n`
/// uniformly placed hosts at expected radio degree ~15, slow
/// random-waypoint mobility, and 2% of the population failing at
/// deterministic random times in the 4–10 s window. One definition so
/// the exhibit, the benches, and the smoke tests measure the same
/// scenario; finish with `.plain()`/`.secure…` after any overrides
/// (channel, churn count, …).
pub fn scale_family(n: usize, seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(15.0)
        .mobility(Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 4.0,
            pause_s: 2.0,
        })
        .churn(n / 50, (SimTime(4_000_000), SimTime(10_000_000)))
        .seed(seed)
}

/// How the field is sized: explicitly, or derived from a target radio
/// density at build time.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum FieldSpec {
    Explicit(Field),
    /// Expected radio degree for the built host count.
    Density(f64),
}

/// Stack-independent scenario knobs. Every setter returns `self`, so
/// specs read as one chained expression.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    pub(crate) n_hosts: usize,
    pub(crate) placement: Placement,
    pub(crate) field: FieldSpec,
    pub(crate) radio: RadioConfig,
    pub(crate) mobility: Mobility,
    pub(crate) seed: u64,
    pub(crate) trace: bool,
    pub(crate) channel: ChannelMode,
    pub(crate) queue: QueueImpl,
    pub(crate) exec: ExecMode,
    pub(crate) attackers: Vec<(usize, Behavior)>,
    pub(crate) churn_kills: usize,
    pub(crate) churn_window: (SimTime, SimTime),
    pub(crate) max_events: Option<u64>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            n_hosts: 8,
            placement: Placement::Chain { spacing: 180.0 },
            field: FieldSpec::Explicit(Field::new(2000.0, 2000.0)),
            radio: RadioConfig {
                loss: 0.0,
                ..RadioConfig::default()
            },
            mobility: Mobility::Static,
            seed: 1,
            trace: false,
            channel: ChannelMode::Grid,
            queue: QueueImpl::Wheel,
            exec: ExecMode::default(),
            attackers: Vec::new(),
            churn_kills: 0,
            churn_window: (SimTime(4_000_000), SimTime(10_000_000)),
            max_events: None,
        }
    }
}

impl ScenarioBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hosts, excluding the DNS node a secure stack adds.
    pub fn hosts(mut self, n: usize) -> Self {
        self.n_hosts = n;
        self
    }

    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    pub fn field(mut self, field: Field) -> Self {
        self.field = FieldSpec::Explicit(field);
        self
    }

    /// Size the field at build time so the host count lands at the given
    /// expected radio degree (see [`field_for_density`]).
    pub fn density(mut self, target_degree: f64) -> Self {
        self.field = FieldSpec::Density(target_degree);
        self
    }

    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    pub fn mobility(mut self, mobility: Mobility) -> Self {
        self.mobility = mobility;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Receiver lookup strategy; `Grid` unless a differential test or
    /// baseline measurement wants the linear scan.
    pub fn channel(mut self, channel: ChannelMode) -> Self {
        self.channel = channel;
        self
    }

    /// Pending-event store; `Wheel` unless a differential test or
    /// baseline measurement wants the binary-heap oracle.
    pub fn queue(mut self, queue: QueueImpl) -> Self {
        self.queue = queue;
        self
    }

    /// Executor: the single-threaded oracle or the K-band sharded
    /// engine (byte-identical by contract; `tests/determinism.rs`
    /// enforces it). Defaults to `Single`, or whatever the `MANET_EXEC`
    /// env knob says.
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Raise the engine's runaway-simulation event cap (the
    /// `EngineConfig` default suits exhibits up to ~10k nodes; the S3
    /// memory-diet scale needs room proportional to its population).
    pub fn max_events(mut self, cap: u64) -> Self {
        self.max_events = Some(cap);
        self
    }

    /// Give host `idx` an attacker behavior.
    pub fn adversary(mut self, idx: usize, behavior: Behavior) -> Self {
        self.attackers.push((idx, behavior));
        self
    }

    /// Replace the whole adversary mix at once.
    pub fn adversaries(mut self, attackers: Vec<(usize, Behavior)>) -> Self {
        self.attackers = attackers;
        self
    }

    /// Kill `kills` distinct hosts at deterministic random times inside
    /// `window`, scheduled from the engine's own RNG so the whole run
    /// stays a pure function of the seed.
    pub fn churn(mut self, kills: usize, window: (SimTime, SimTime)) -> Self {
        self.churn_kills = kills;
        self.churn_window = window;
        self
    }

    /// Select the secure stack (DNS node + CGA/DAD bootstrap) with a
    /// default protocol config.
    pub fn secure(self) -> SecureBuilder {
        self.secure_with(ProtocolConfig::default())
    }

    /// Select the secure stack with an explicit protocol config.
    pub fn secure_with(self, proto: ProtocolConfig) -> SecureBuilder {
        SecureBuilder {
            base: self,
            proto,
            join_stagger: SimDuration::from_millis(1_100),
            register_names: true,
            pre_register: Vec::new(),
            name_overrides: Vec::new(),
        }
    }

    /// Select the plain-DSR baseline stack (pre-assigned addresses, no
    /// DNS, no DAD) with a default config.
    pub fn plain(self) -> PlainBuilder {
        self.plain_with(PlainConfig::default())
    }

    /// Select the plain-DSR stack with an explicit config.
    pub fn plain_with(self, proto: PlainConfig) -> PlainBuilder {
        PlainBuilder { base: self, proto }
    }

    fn resolved_field(&self) -> Field {
        match self.field {
            FieldSpec::Explicit(f) => f,
            FieldSpec::Density(target) => field_for_density(self.n_hosts, self.radio.range, target),
        }
    }

    fn engine(&self, field: Field) -> Engine {
        let defaults = EngineConfig::default();
        Engine::new(EngineConfig {
            field,
            radio: self.radio.clone(),
            seed: self.seed,
            trace: self.trace,
            channel: self.channel,
            queue: self.queue,
            exec: self.exec,
            max_events: self.max_events.unwrap_or(defaults.max_events),
            ..defaults
        })
    }

    fn behavior_for(&self, i: usize) -> Behavior {
        self.attackers
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }

    /// Schedule the churn kills. Called after every node exists, so the
    /// RNG draws land in the same stream position the legacy
    /// `build_scale` used.
    fn schedule_churn<P: NodeApi>(&self, net: &mut Network<P>) {
        use rand::Rng;
        if self.churn_kills == 0 {
            return;
        }
        let (start, end) = self.churn_window;
        // Distinct victims: a duplicate pick would double-count in
        // `sim.nodes_killed` and overstate the real churn level.
        let mut victims = crate::fxhash::FxHashSet::default();
        while victims.len() < self.churn_kills.min(self.n_hosts) {
            victims.insert(net.engine.rng().gen_range(0..self.n_hosts));
        }
        // lint: allow(unordered-iter) — visit order erased by the sort below before anything observes it
        let mut order: Vec<usize> = victims.into_iter().collect();
        order.sort_unstable(); // set order must not leak into the schedule
        for v in order {
            let at = SimTime(net.engine.rng().gen_range(start.0..=end.0));
            net.engine.kill_at(net.hosts[v], at);
        }
    }
}

/// Second stage of the builder once the secure stack is selected: the
/// knobs only the DNS-backed bootstrap has.
#[derive(Clone, Debug)]
pub struct SecureBuilder {
    pub(crate) base: ScenarioBuilder,
    pub(crate) proto: ProtocolConfig,
    pub(crate) join_stagger: SimDuration,
    pub(crate) register_names: bool,
    pub(crate) pre_register: Vec<usize>,
    pub(crate) name_overrides: Vec<(usize, String)>,
}

impl SecureBuilder {
    /// Delay between consecutive host joins. Extended DAD relies on
    /// already-joined hosts to relay AREQ floods, so simultaneous joins
    /// only probe one hop; the default (1.1 s) exceeds
    /// `ProtocolConfig::dad_timeout` so the previous joiner is Ready
    /// (relaying) before the next AREQ floods.
    pub fn join_stagger(mut self, stagger: SimDuration) -> Self {
        self.join_stagger = stagger;
        self
    }

    /// Register a domain name (`h<i>.manet`) for every host during DAD.
    pub fn register_names(mut self, on: bool) -> Self {
        self.register_names = on;
        self
    }

    /// Host indices whose names are pre-registered at the DNS before
    /// network formation (the paper's permanent servers).
    pub fn pre_register(mut self, hosts: Vec<usize>) -> Self {
        self.pre_register = hosts;
        self
    }

    /// Override the name host `i` registers (defaults to `h<i>.manet`).
    pub fn name_override(mut self, i: usize, name: &str) -> Self {
        self.name_overrides.push((i, name.to_owned()));
        self
    }

    /// Edit the protocol config in place — for the one-flag tweaks
    /// (`credit.enabled`, `probe_enabled`, …) that don't warrant
    /// constructing a whole config up front.
    pub fn tune(mut self, f: impl FnOnce(&mut ProtocolConfig)) -> Self {
        f(&mut self.proto);
        self
    }

    /// Select the signature backend the whole network signs and verifies
    /// with (sugar over `.tune`). RSA is the oracle; `Null`/`HashSig`
    /// trade cryptographic meaning for speed in scale exhibits. Tests
    /// that assert attack rejection must pin [`BackendKind::Rsa`].
    pub fn crypto_backend(mut self, kind: BackendKind) -> Self {
        self.proto.crypto_backend = kind;
        self
    }

    /// Toggle network-wide deferred batch verification (sugar over
    /// `.tune`). Perf-only: fingerprints are identical either way.
    pub fn batch_verify(mut self, on: bool) -> Self {
        self.proto.batch_verify = on;
        self
    }

    /// Read access to the protocol config the build will use.
    pub fn proto(&self) -> &ProtocolConfig {
        &self.proto
    }

    /// The name host `i` will actually use: its override if one was
    /// given, else `h<i>.manet`. Pre-registration goes through this too,
    /// so `.pre_register` and `.name_override` on the same host agree.
    fn effective_name(&self, i: usize) -> DomainName {
        self.name_overrides
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, name)| DomainName::new(name).expect("valid override name"))
            .unwrap_or_else(|| host_name(i))
    }

    /// Build the network. Node 0 of the engine is the DNS; hosts join
    /// staggered starting at `join_stagger`.
    pub fn build(self) -> Network<SecureNode> {
        let base = &self.base;
        let n_total = base.n_hosts + 1;
        let field = base.resolved_field();
        let positions = positions_for(&base.placement, n_total, true, &field, base.seed);
        let mut engine = base.engine(field);

        // Build every host identity first so pre-registration can know
        // their addresses; the DNS node is constructed from the same RNG
        // stream.
        let mut dns_node = SecureNode::new_dns(self.proto.clone(), Vec::new(), engine.rng());
        let dns_pk = dns_node.public_key().clone();

        let mut host_nodes = Vec::with_capacity(base.n_hosts);
        for i in 0..base.n_hosts {
            let dn = self.register_names.then(|| self.effective_name(i));
            let node = SecureNode::with_behavior(
                self.proto.clone(),
                dns_pk.clone(),
                dn,
                base.behavior_for(i),
                engine.rng(),
            );
            host_nodes.push(node);
        }
        for &i in &self.pre_register {
            dns_node.dns_preregister(self.effective_name(i), host_nodes[i].ip());
        }

        // Shared intern table over every build-time identity and name.
        // Hosts that reroll their CGA after a DAD collision land in the
        // per-node overflow interner, which is fine: ids are never
        // compared across nodes, only used as compact map keys.
        let mut table = InternTable::new();
        table.intern_addr(dns_node.ip());
        for node in &host_nodes {
            table.intern_addr(node.ip());
        }
        if self.register_names {
            for i in 0..base.n_hosts {
                table.intern_name(&self.effective_name(i));
            }
        }
        let table = Arc::new(table);
        dns_node.set_intern_table(Arc::clone(&table));
        for node in &mut host_nodes {
            node.set_intern_table(Arc::clone(&table));
        }

        // One shared crypto runtime network-wide: a single backend
        // instance (so execution counters aggregate across nodes) and,
        // when enabled, the batch verifier the engine's tick hook drains
        // between collecting a tick's frames and dispatching them.
        let backend = backend_for(self.proto.crypto_backend);
        let batch = self
            .proto
            .batch_verify
            .then(|| Arc::new(BatchVerifier::new(BATCH_TABLE_CAPACITY)));
        dns_node.set_crypto_runtime(Arc::clone(&backend), batch.clone());
        for node in &mut host_nodes {
            node.set_crypto_runtime(Arc::clone(&backend), batch.clone());
        }
        if let Some(batch_handle) = &batch {
            let drain_batch = Arc::clone(batch_handle);
            let drain_backend = Arc::clone(&backend);
            engine.set_tick_hook(move || drain_batch.drain(drain_backend.as_ref()));
        }

        let dns = engine.add_node(Box::new(dns_node), positions[0], Mobility::Static);
        let mut hosts = Vec::with_capacity(base.n_hosts);
        let mut last_join = SimTime::ZERO;
        for (i, node) in host_nodes.into_iter().enumerate() {
            let join_at = SimTime(self.join_stagger.as_micros() * (i as u64 + 1));
            last_join = join_at;
            let id = engine.add_node_at(
                Box::new(node),
                positions[i + 1],
                base.mobility.clone(),
                join_at,
            );
            hosts.push(id);
        }
        let mut net = Network {
            engine,
            dns: Some(dns),
            hosts,
            last_join,
            crypto_backend: Some(backend),
            batch,
            _stack: PhantomData,
        };
        base.schedule_churn(&mut net);
        net
    }
}

/// Second stage of the builder once the plain-DSR stack is selected.
/// Addresses are assigned up front (plain DSR has no autoconfiguration
/// story — that asymmetry *is* the paper's bootstrap contribution).
#[derive(Clone, Debug)]
pub struct PlainBuilder {
    pub(crate) base: ScenarioBuilder,
    pub(crate) proto: PlainConfig,
}

impl PlainBuilder {
    /// Edit the plain config in place.
    pub fn tune(mut self, f: impl FnOnce(&mut PlainConfig)) -> Self {
        f(&mut self.proto);
        self
    }

    /// Build the network: all hosts join at t = 0 with random (assumed
    /// unique) addresses drawn from the engine RNG.
    pub fn build(self) -> Network<PlainDsrNode> {
        let base = &self.base;
        let field = base.resolved_field();
        let positions = positions_for(&base.placement, base.n_hosts, false, &field, base.seed);
        let mut engine = base.engine(field);
        let ips: Vec<manet_wire::Ipv6Addr> = (0..base.n_hosts)
            .map(|_| PlainDsrNode::random_ip(engine.rng()))
            .collect();
        // Every address in a plain universe is pre-drawn, so the shared
        // intern table is total: per-node maps key on dense u32 ids and
        // the per-node overflow interners stay empty.
        let mut table = InternTable::new();
        for ip in &ips {
            table.intern_addr(*ip);
        }
        let table = Arc::new(table);
        let mut hosts = Vec::with_capacity(base.n_hosts);
        for i in 0..base.n_hosts {
            let mut node =
                PlainDsrNode::with_behavior(self.proto.clone(), ips[i], base.behavior_for(i));
            node.set_intern_table(Arc::clone(&table));
            let id = engine.add_node(Box::new(node), positions[i], base.mobility.clone());
            hosts.push(id);
        }
        let mut net = Network {
            engine,
            dns: None,
            hosts,
            last_join: SimTime::ZERO,
            crypto_backend: None,
            batch: None,
            _stack: PhantomData,
        };
        base.schedule_churn(&mut net);
        net
    }
}
