//! Deprecated parameter-struct constructors, kept as thin shims over
//! [`ScenarioBuilder`](super::ScenarioBuilder).
//!
//! These exist so the golden-trace fixtures and the builder-parity suite
//! can pin that the API redesign did not move a single RNG draw: a shim
//! call translates field-for-field into a builder chain and must produce
//! a byte-identical same-seed universe. New code should use the builder
//! directly.

#![allow(deprecated)]

use super::builder::{field_for_density, ScenarioBuilder};
use super::network::Network;
use super::placement::Placement;
use crate::config::{Behavior, ProtocolConfig};
use crate::node::SecureNode;
use crate::plain::{PlainConfig, PlainDsrNode};
use manet_sim::{ChannelMode, Field, Mobility, RadioConfig, SimDuration, SimTime};

/// A built secure network (legacy name).
#[deprecated(note = "use `Network<SecureNode>` via `ScenarioBuilder`")]
pub type SecureNetwork = Network<SecureNode>;

/// A built plain-DSR network (legacy name).
#[deprecated(note = "use `Network<PlainDsrNode>` via `ScenarioBuilder`")]
pub type PlainNetwork = Network<PlainDsrNode>;

/// Everything that defines a secure-network scenario (legacy spec).
#[deprecated(note = "use `ScenarioBuilder::new()…​.secure_with(proto)`")]
#[derive(Clone, Debug)]
pub struct NetworkParams {
    /// Number of hosts, excluding the DNS server node.
    pub n_hosts: usize,
    pub placement: Placement,
    pub mobility: Mobility,
    pub field: Field,
    pub radio: RadioConfig,
    pub proto: ProtocolConfig,
    pub seed: u64,
    pub trace: bool,
    /// Delay between consecutive host joins.
    pub join_stagger: SimDuration,
    /// `(host index, behavior)` pairs for attacker nodes.
    pub attackers: Vec<(usize, Behavior)>,
    /// Register a domain name (`h<i>.manet`) for every host during DAD.
    pub register_names: bool,
    /// Host indices pre-registered at the DNS before network formation.
    pub pre_register: Vec<usize>,
    /// Per-host overrides of the registered name.
    pub name_overrides: Vec<(usize, String)>,
    pub channel: ChannelMode,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            n_hosts: 8,
            placement: Placement::Chain { spacing: 180.0 },
            mobility: Mobility::Static,
            field: Field::new(2000.0, 2000.0),
            radio: RadioConfig {
                loss: 0.0,
                ..RadioConfig::default()
            },
            proto: ProtocolConfig::default(),
            seed: 1,
            trace: false,
            join_stagger: SimDuration::from_millis(1_100),
            attackers: Vec::new(),
            register_names: true,
            pre_register: Vec::new(),
            name_overrides: Vec::new(),
            channel: ChannelMode::Grid,
        }
    }
}

/// Build a secure network per `params` (legacy shim).
#[deprecated(note = "use `ScenarioBuilder::new()…​.secure_with(proto).build()`")]
pub fn build_secure(params: &NetworkParams) -> Network<SecureNode> {
    let mut b = ScenarioBuilder::new()
        .hosts(params.n_hosts)
        .placement(params.placement.clone())
        .mobility(params.mobility.clone())
        .field(params.field)
        .radio(params.radio.clone())
        .seed(params.seed)
        .trace(params.trace)
        .adversaries(params.attackers.clone())
        .channel(params.channel)
        .secure_with(params.proto.clone())
        .join_stagger(params.join_stagger)
        .register_names(params.register_names)
        .pre_register(params.pre_register.clone());
    for (i, name) in &params.name_overrides {
        b = b.name_override(*i, name);
    }
    b.build()
}

/// Parameters for a plain-DSR network (legacy spec).
#[deprecated(note = "use `ScenarioBuilder::new()…​.plain_with(proto)`")]
#[derive(Clone, Debug)]
pub struct PlainParams {
    pub n_hosts: usize,
    pub placement: Placement,
    pub mobility: Mobility,
    pub field: Field,
    pub radio: RadioConfig,
    pub proto: PlainConfig,
    pub seed: u64,
    pub trace: bool,
    pub attackers: Vec<(usize, Behavior)>,
    pub channel: ChannelMode,
}

impl Default for PlainParams {
    fn default() -> Self {
        PlainParams {
            n_hosts: 8,
            placement: Placement::Chain { spacing: 180.0 },
            mobility: Mobility::Static,
            field: Field::new(2000.0, 2000.0),
            radio: RadioConfig {
                loss: 0.0,
                ..RadioConfig::default()
            },
            proto: PlainConfig::default(),
            seed: 1,
            trace: false,
            attackers: Vec::new(),
            channel: ChannelMode::Grid,
        }
    }
}

/// Build the baseline network (legacy shim).
#[deprecated(note = "use `ScenarioBuilder::new()…​.plain_with(proto).build()`")]
pub fn build_plain(params: &PlainParams) -> Network<PlainDsrNode> {
    ScenarioBuilder::new()
        .hosts(params.n_hosts)
        .placement(params.placement.clone())
        .mobility(params.mobility.clone())
        .field(params.field)
        .radio(params.radio.clone())
        .seed(params.seed)
        .trace(params.trace)
        .adversaries(params.attackers.clone())
        .channel(params.channel)
        .plain_with(params.proto.clone())
        .build()
}

/// The legacy `scale` family spec: thousands of plain-DSR nodes
/// uniformly placed on a field sized for a target radio density, with
/// background mobility and node-failure churn.
#[deprecated(note = "use `ScenarioBuilder` with `.density(…)` and `.churn(…)`")]
#[derive(Clone, Debug)]
pub struct ScaleParams {
    pub n_hosts: usize,
    pub field: Field,
    pub radio: RadioConfig,
    pub mobility: Mobility,
    pub proto: PlainConfig,
    pub seed: u64,
    pub channel: ChannelMode,
    /// Nodes killed at deterministic random times in `churn_window`.
    pub churn_kills: usize,
    /// `(start, end)` of the kill window.
    pub churn_window: (SimTime, SimTime),
}

impl ScaleParams {
    /// Field edge for a target density (see
    /// [`field_for_density`](super::field_for_density)).
    pub fn field_for_density(n: usize, range: f64, target: f64) -> Field {
        field_for_density(n, range, target)
    }

    /// The S1 exhibit shape: 2,000 nodes at expected degree ~15, slow
    /// random-waypoint mobility, 2% of the population failing mid-run.
    pub fn s1(seed: u64) -> Self {
        let radio = RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        };
        let n = 2000;
        ScaleParams {
            n_hosts: n,
            field: Self::field_for_density(n, radio.range, 15.0),
            radio,
            mobility: Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            },
            proto: PlainConfig::default(),
            seed,
            channel: ChannelMode::Grid,
            churn_kills: 40,
            churn_window: (SimTime(4_000_000), SimTime(10_000_000)),
        }
    }

    /// A scaled-down variant for tests and micro-benches.
    pub fn small(n_hosts: usize, seed: u64) -> Self {
        let mut p = Self::s1(seed);
        p.field = Self::field_for_density(n_hosts, p.radio.range, 15.0);
        p.n_hosts = n_hosts;
        p.churn_kills = n_hosts / 50;
        p
    }
}

/// Build a scale network (legacy shim): uniform placement, simultaneous
/// joins, churn kills pre-scheduled from the engine's own RNG.
#[deprecated(note = "use `ScenarioBuilder` with `.placement(Placement::Uniform)` and `.churn(…)`")]
pub fn build_scale(params: &ScaleParams) -> Network<PlainDsrNode> {
    ScenarioBuilder::new()
        .hosts(params.n_hosts)
        .placement(Placement::Uniform)
        .mobility(params.mobility.clone())
        .field(params.field)
        .radio(params.radio.clone())
        .seed(params.seed)
        .channel(params.channel)
        .churn(params.churn_kills, params.churn_window)
        .plain_with(params.proto.clone())
        .build()
}

/// Legacy free-function form of
/// [`Network::scale_flows`](super::Network::scale_flows).
#[deprecated(note = "use `Network::scale_flows`")]
pub fn scale_flows(net: &mut Network<PlainDsrNode>, n_flows: usize) -> Vec<(usize, usize)> {
    net.scale_flows(n_flows)
}
