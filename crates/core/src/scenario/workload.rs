//! Declarative traffic descriptions, executed by the one shared driver
//! ([`Network::run`](super::Network::run)).
//!
//! A [`Workload`] is pure data: which host-index pairs exchange traffic,
//! how many rounds, at what spacing, and how long the network idles
//! before (`warmup`) and after (`drain`) the traffic. Scenario authors
//! compose these instead of hand-rolling send loops, so every experiment
//! shares one execution path and one [`RunReport`](super::RunReport).

use manet_sim::SimDuration;

/// The payload byte and size every scenario flow has always used; kept
/// as the default so same-seed traces are stable across the API
/// generations.
pub(crate) const DEFAULT_PAYLOAD: (u8, usize) = (0xda, 64);

/// A declarative traffic pattern over host indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// `(source, destination)` host-index pairs; every pair sends one
    /// packet per round.
    pub flows: Vec<(usize, usize)>,
    /// Number of rounds.
    pub packets: usize,
    /// Gap between consecutive rounds.
    pub interval: SimDuration,
    /// Idle time before the first round — e.g. to let neighbor caches
    /// form in a static network before the first flood.
    pub warmup: SimDuration,
    /// Idle time after the last round (ack settling). Anchored at the
    /// later of "now" and the last scheduled join, so a drain on a
    /// freshly built staggered network covers the whole join storm.
    pub drain: SimDuration,
    /// Payload bytes per packet.
    pub payload_len: usize,
}

impl Workload {
    /// `packets` rounds of one packet per flow, spaced by `interval`,
    /// with the classic 5 s ack drain and no warmup — the shape every
    /// legacy `run_flows` call used.
    pub fn flows(flows: Vec<(usize, usize)>, packets: usize, interval: SimDuration) -> Self {
        Workload {
            flows,
            packets,
            interval,
            warmup: SimDuration::ZERO,
            drain: SimDuration::from_secs(5),
            payload_len: DEFAULT_PAYLOAD.1,
        }
    }

    /// No traffic at all: drive the engine for `drain` past the last
    /// join. Useful to observe formation, mobility, or churn on its own.
    pub fn idle(drain: SimDuration) -> Self {
        Workload {
            flows: Vec::new(),
            packets: 0,
            interval: SimDuration::ZERO,
            warmup: SimDuration::ZERO,
            drain,
            payload_len: DEFAULT_PAYLOAD.1,
        }
    }

    /// The bootstrap-storm observation workload: no traffic, a 3 s drain
    /// anchored past the last staggered join — exactly the window
    /// [`Network::bootstrap`](super::Network::bootstrap) uses to let
    /// every host finish DAD and the DNS commit its names.
    pub fn bootstrap_storm() -> Self {
        Self::idle(SimDuration::from_secs(3))
    }

    /// Everyone-to-one traffic (the status-report / sink shape): each
    /// host index in `sources` sends to `sink` every round.
    pub fn converge_cast(
        sources: impl IntoIterator<Item = usize>,
        sink: usize,
        packets: usize,
        interval: SimDuration,
    ) -> Self {
        Self::flows(
            sources.into_iter().map(|s| (s, sink)).collect(),
            packets,
            interval,
        )
    }

    /// Builder-style warmup override.
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder-style drain override.
    pub fn with_drain(mut self, drain: SimDuration) -> Self {
        self.drain = drain;
        self
    }

    /// Builder-style payload-size override.
    pub fn with_payload_len(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_matches_legacy_run_flows_shape() {
        let w = Workload::flows(vec![(0, 4)], 10, SimDuration::from_millis(300));
        assert_eq!(w.warmup, SimDuration::ZERO, "legacy calls had no warmup");
        assert_eq!(w.drain, SimDuration::from_secs(5));
        assert_eq!(w.payload_len, 64);
    }

    #[test]
    fn converge_cast_fans_into_the_sink() {
        let w = Workload::converge_cast(1..4, 0, 2, SimDuration::from_millis(100));
        assert_eq!(w.flows, vec![(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn bootstrap_storm_is_a_pure_observation() {
        let w = Workload::bootstrap_storm();
        assert!(w.flows.is_empty());
        assert_eq!(w.packets, 0);
        assert_eq!(w.drain, SimDuration::from_secs(3));
    }

    #[test]
    fn with_overrides_compose() {
        let w = Workload::flows(vec![(0, 1)], 1, SimDuration::from_millis(50))
            .with_warmup(SimDuration::from_secs(1))
            .with_drain(SimDuration::from_secs(2))
            .with_payload_len(16);
        assert_eq!(w.warmup, SimDuration::from_secs(1));
        assert_eq!(w.drain, SimDuration::from_secs(2));
        assert_eq!(w.payload_len, 16);
    }
}
