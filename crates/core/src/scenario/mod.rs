//! Whole-network scenario construction, workloads, and measurement.
//!
//! Everything downstream — integration tests, examples, the bench
//! harness — builds networks through this module, so topology, staggered
//! bootstrap, attacker placement, traffic driving, and metric extraction
//! live in one place:
//!
//! * [`ScenarioBuilder`] — the fluent, typed spec: topology (placement /
//!   field / density), radio, mobility, churn, adversary mix, seed,
//!   tracing, and stack selection (`.secure…` with a DNS node, or
//!   `.plain…` for the DSR baseline).
//! * [`Network<P>`] — the generic built network; one shared
//!   implementation of `send` / `run` / `delivery_ratio` /
//!   `mean_degree` / stat totals for every stack implementing
//!   [`NodeApi`].
//! * [`Workload`] — declarative traffic (flows, packets, interval,
//!   warmup, drain) executed by the one driver, [`Network::run`].
//! * [`RunReport`] — the single result struct experiments consume and
//!   `BENCH_*.json` writers serialize.
//!
//! Build → workload → report, end to end:
//!
//! ```
//! use manet_secure::scenario::{ScenarioBuilder, Workload};
//! use manet_sim::SimDuration;
//!
//! // Build: five hosts + a DNS server on a multi-hop chain.
//! let mut net = ScenarioBuilder::new().hosts(5).seed(9).secure().build();
//! assert!(net.bootstrap()); // staggered joins, secure DAD, name registration
//!
//! // Workload: ten packets h0 → h4, 300 ms apart.
//! let w = Workload::flows(vec![(0, 4)], 10, SimDuration::from_millis(300));
//!
//! // Run → one report with everything an experiment reads.
//! let report = net.run(&w);
//! assert!(report.delivery_ratio.unwrap() > 0.9);
//! assert_eq!(report.totals.data_sent, 10);
//! assert!(report.crypto.executed > 0); // RSA verifications actually ran
//! ```
//!
//! A note on cold boots: extended DAD relies on already-joined hosts to
//! relay AREQ floods, so simultaneous joins only probe one hop (the same
//! is true of the draft the paper builds on). Secure scenarios therefore
//! stagger joins by [`SecureBuilder::join_stagger`], which also gives
//! the DNS a serialized stream of registrations.

pub(crate) mod builder;
mod network;
mod placement;
mod report;
pub(crate) mod workload;

pub use builder::{
    field_for_density, host_name, scale_family, PlainBuilder, ScenarioBuilder, SecureBuilder,
};
pub use network::{Network, NodeApi};
pub use placement::{Placement, BYPASS_ATTACKER};
pub use report::{CryptoTotals, RunReport, StatTotals};
pub use workload::Workload;

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::SimDuration;

    fn chain(n: usize, seed: u64) -> SecureBuilder {
        ScenarioBuilder::new().hosts(n).seed(seed).secure()
    }

    #[test]
    fn secure_chain_bootstraps_all_hosts() {
        let mut net = chain(4, 7).build();
        assert!(net.bootstrap(), "every host must finish DAD");
        for i in 0..4 {
            let n = net.host(i);
            assert!(n.is_ready());
            assert_eq!(n.stats().dad_attempts, 1, "no collisions expected");
            assert!(n.ip().is_site_local());
        }
        // All addresses distinct.
        let mut ips: Vec<_> = (0..4).map(|i| net.host_ip(i)).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 4);
    }

    #[test]
    fn dns_commits_host_names_during_bootstrap() {
        let mut net = chain(3, 8).build();
        assert!(net.bootstrap());
        let dns = net.dns_node().dns_state().expect("dns role");
        for i in 0..3 {
            assert_eq!(
                dns.lookup(&host_name(i)),
                Some(net.host_ip(i)),
                "h{i} must be committed"
            );
        }
    }

    #[test]
    fn data_flows_end_to_end_over_multiple_hops() {
        let mut net = chain(5, 9).build();
        assert!(net.bootstrap());
        let report = net.run(&Workload::flows(
            vec![(0, 4)],
            10,
            SimDuration::from_millis(300),
        ));
        let ratio = report.delivery_ratio.expect("packets were sent");
        assert!(ratio > 0.9, "delivery ratio {ratio} too low");
        // The receiving host actually saw the packets.
        assert!(net.host(4).stats().data_received >= 9);
        assert_eq!(report.totals.data_received, report.totals.data_acked);
    }

    #[test]
    fn plain_network_delivers_without_security() {
        let mut net = ScenarioBuilder::new().hosts(5).seed(10).plain().build();
        let report = net.run_flows(&[(0, 4)], 10, SimDuration::from_millis(300));
        let ratio = report.delivery_ratio.expect("packets were sent");
        assert!(ratio > 0.9, "plain delivery ratio {ratio} too low");
        assert_eq!(
            report.crypto,
            CryptoTotals::default(),
            "no crypto in plain DSR"
        );
    }

    #[test]
    fn host_names_are_valid_and_distinct() {
        assert_ne!(host_name(0), host_name(1));
        assert_eq!(host_name(3).as_str(), "h3.manet");
    }

    #[test]
    fn pre_register_honors_name_override() {
        use manet_wire::DomainName;
        let mut net = ScenarioBuilder::new()
            .hosts(2)
            .seed(15)
            .secure()
            .pre_register(vec![0])
            .name_override(0, "coord.manet")
            .build();
        assert!(net.bootstrap());
        let dns = net.dns_node().dns_state().expect("dns role");
        let coord = DomainName::new("coord.manet").unwrap();
        assert_eq!(
            dns.lookup(&coord),
            Some(net.host_ip(0)),
            "the pre-registered entry must carry the name the host actually uses"
        );
        assert_eq!(
            dns.lookup(&host_name(0)),
            None,
            "the default name must not be pre-registered once overridden"
        );
    }

    #[test]
    fn delivery_ratio_is_none_before_any_traffic() {
        let net = ScenarioBuilder::new().hosts(3).seed(11).plain().build();
        assert_eq!(net.delivery_ratio(), None, "no packets sent yet");
        // Static chain, nodes alive: degree is defined (ends have 1
        // neighbor, middle has 2).
        let deg = net.mean_degree().expect("alive hosts");
        assert!(deg > 0.9 && deg < 2.1, "chain degree {deg}");
    }

    #[test]
    fn mean_degree_is_none_when_everyone_is_dead() {
        let mut net = ScenarioBuilder::new()
            .hosts(3)
            .seed(12)
            .churn(3, (manet_sim::SimTime(1), manet_sim::SimTime(2)))
            .plain()
            .build();
        net.engine.run_until(manet_sim::SimTime(1_000_000));
        assert_eq!(net.engine.metrics().counter("sim.nodes_killed"), 3);
        assert_eq!(net.mean_degree(), None, "no alive host — no degree");
        let report = net.report(0.0);
        assert_eq!(report.mean_degree, None);
        assert!(report.delivery_or_nan().is_nan());
    }

    #[test]
    fn warmup_is_honored_by_the_driver() {
        let mut net = ScenarioBuilder::new().hosts(3).seed(13).plain().build();
        let w = Workload::flows(vec![(0, 2)], 1, SimDuration::from_millis(100))
            .with_warmup(SimDuration::from_secs(2));
        let t0 = net.engine.now();
        let report = net.run(&w);
        // warmup (2 s) + 1 round (0.1 s) + drain (5 s).
        let elapsed = net.engine.now().since(t0).as_secs_f64();
        assert!(elapsed >= 7.0, "driver skipped the warmup: {elapsed}s");
        assert_eq!(report.totals.data_sent, 1);
    }

    #[test]
    fn density_sizes_the_field_for_the_host_count() {
        let net = ScenarioBuilder::new()
            .hosts(150)
            .placement(Placement::Uniform)
            .density(15.0)
            .seed(14)
            .plain()
            .build();
        let deg = net.mean_degree().expect("alive hosts");
        assert!((8.0..25.0).contains(&deg), "density off target: {deg}");
    }
}
