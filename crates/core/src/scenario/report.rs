//! The one result type every experiment consumes.
//!
//! A [`RunReport`] is what [`Network::run`](super::Network::run) returns
//! and what the `BENCH_*.json` writers serialize: delivery, per-node
//! stat totals, crypto-pipeline totals, event throughput, and wall
//! time. All simulation-derived fields are pure functions of the
//! scenario spec and seed; only `wall_s` / `events_per_sec` depend on
//! the machine — [`RunReport::fingerprint`] masks those two for
//! determinism assertions.

/// Per-node protocol counters summed over all hosts (the DNS node, which
/// originates no application traffic, is excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatTotals {
    pub data_sent: u64,
    pub data_acked: u64,
    pub data_received: u64,
    pub data_failed: u64,
    pub rreq_sent: u64,
    pub rrep_sent: u64,
    pub crep_sent: u64,
    pub rerr_sent: u64,
    /// Verification rejections of every kind (see
    /// [`NodeStats::total_rejected`](crate::stats::NodeStats::total_rejected)).
    pub rejected: u64,
    pub collisions_detected: u64,
}

/// Crypto-pipeline totals summed over every host **and** the DNS node:
/// RSA verifications actually executed, verdicts served from the verify
/// cache, and rejected checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoTotals {
    pub executed: u64,
    pub cached: u64,
    pub failed: u64,
}

impl CryptoTotals {
    /// Total verification demand (executed + served from cache).
    pub fn demand(&self) -> u64 {
        self.executed + self.cached
    }
}

/// Everything one scenario run produced.
///
/// `delivery_ratio` and `mean_degree` are `None` when their denominator
/// is empty (no data packets sent / no alive hosts) — the silent-NaN
/// escape hatch lives only in [`RunReport::delivery_or_nan`], for
/// writers that need a raw float.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Fraction of sent data packets end-to-end acknowledged, across all
    /// hosts; `None` if nothing was sent.
    pub delivery_ratio: Option<f64>,
    /// Mean link-layer degree over alive hosts; `None` if none are alive.
    pub mean_degree: Option<f64>,
    pub totals: StatTotals,
    pub crypto: CryptoTotals,
    /// Engine events processed since the network was built.
    pub events: u64,
    /// Simulated seconds elapsed.
    pub sim_s: f64,
    /// Wall-clock seconds of the `run` call that produced this report.
    pub wall_s: f64,
    /// Events per wall-clock second. The driver
    /// ([`Network::run`](super::Network::run)) computes this from the
    /// events processed *during that run*, so an earlier bootstrap or
    /// workload does not inflate the rate; a bare
    /// [`Network::report`](super::Network::report) divides the whole
    /// history by the caller's wall window.
    pub events_per_sec: f64,
    /// Engine-only throughput: lifetime events over wall-clock seconds
    /// spent inside `Engine::run_until`. Free of scenario construction
    /// and key generation, so it is the number the CI perf-regression
    /// gate compares across commits. Wall-derived, masked by
    /// [`RunReport::fingerprint`].
    pub events_per_sec_engine: f64,
    /// Which pending-event store produced this run (`"wheel"` /
    /// `"heap"`). A configuration echo, not an observable — masked by
    /// [`RunReport::fingerprint`] so wheel-vs-heap differentials can
    /// compare whole reports.
    pub queue_impl: &'static str,
    pub tx_bytes: u64,
    pub rx_frames: u64,
    pub nodes_killed: u64,
}

impl RunReport {
    /// The machine-independent view: every field that must be a pure
    /// function of (spec, seed), with the wall-clock-derived fields
    /// zeroed. Two runs of the same scenario must compare equal here.
    pub fn fingerprint(&self) -> RunReport {
        RunReport {
            wall_s: 0.0,
            events_per_sec: 0.0,
            events_per_sec_engine: 0.0,
            queue_impl: "",
            ..self.clone()
        }
    }

    /// `delivery_ratio` with the empty case collapsed to NaN — only for
    /// numeric sinks (tables, JSON) that must emit *something*.
    pub fn delivery_or_nan(&self) -> f64 {
        self.delivery_ratio.unwrap_or(f64::NAN)
    }

    /// Hand-rolled JSON (the workspace is offline — no serde): the one
    /// serialization the `BENCH_*.json` writers embed.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.4}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, ",
                "\"events_per_sec_engine\": {:.0}, \"queue_impl\": \"{}\", ",
                "\"sim_s\": {:.1}, \"delivery_ratio\": {}, \"mean_degree\": {}, ",
                "\"tx_bytes\": {}, \"rx_frames\": {}, \"nodes_killed\": {}, ",
                "\"totals\": {{\"data_sent\": {}, \"data_acked\": {}, \"data_failed\": {}, ",
                "\"rejected\": {}}}, ",
                "\"crypto\": {{\"executed\": {}, \"cached\": {}, \"failed\": {}}}}}"
            ),
            self.wall_s,
            self.events,
            self.events_per_sec,
            self.events_per_sec_engine,
            self.queue_impl,
            self.sim_s,
            opt(self.delivery_ratio),
            opt(self.mean_degree),
            self.tx_bytes,
            self.rx_frames,
            self.nodes_killed,
            self.totals.data_sent,
            self.totals.data_acked,
            self.totals.data_failed,
            self.totals.rejected,
            self.crypto.executed,
            self.crypto.cached,
            self.crypto.failed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            delivery_ratio: Some(0.9375),
            mean_degree: None,
            totals: StatTotals {
                data_sent: 16,
                data_acked: 15,
                ..StatTotals::default()
            },
            crypto: CryptoTotals {
                executed: 10,
                cached: 30,
                failed: 1,
            },
            events: 1234,
            sim_s: 20.5,
            wall_s: 0.123,
            events_per_sec: 10032.5,
            events_per_sec_engine: 20065.0,
            queue_impl: "wheel",
            tx_bytes: 9000,
            rx_frames: 400,
            nodes_killed: 0,
        }
    }

    #[test]
    fn fingerprint_masks_only_wall_derived_fields() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 99.0;
        b.events_per_sec = 1.0;
        b.events_per_sec_engine = 2.0;
        // The queue choice is config, not an observable: wheel-vs-heap
        // differentials compare fingerprints directly.
        b.queue_impl = "heap";
        assert_ne!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A genuine divergence still shows through.
        b.events += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_denominators_are_explicit_not_nan() {
        let r = sample();
        assert_eq!(r.mean_degree, None);
        assert!(r.delivery_or_nan() > 0.9);
        let mut none = sample();
        none.delivery_ratio = None;
        assert!(none.delivery_or_nan().is_nan());
    }

    #[test]
    fn json_spells_out_null_for_missing_ratios() {
        let mut r = sample();
        r.delivery_ratio = None;
        let j = r.to_json();
        assert!(j.contains("\"delivery_ratio\": null"), "{j}");
        assert!(j.contains("\"mean_degree\": null"), "{j}");
        assert!(j.contains("\"wall_s\": 0.123"), "{j}");
        assert!(j.contains("\"crypto\": {\"executed\": 10"), "{j}");
        assert!(j.contains("\"events_per_sec_engine\": 20065"), "{j}");
        assert!(j.contains("\"queue_impl\": \"wheel\""), "{j}");
    }

    #[test]
    fn demand_sums_executed_and_cached() {
        assert_eq!(sample().crypto.demand(), 40);
    }
}
