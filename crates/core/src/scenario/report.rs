//! The one result type every experiment consumes.
//!
//! A [`RunReport`] is what [`Network::run`](super::Network::run) returns
//! and what the `BENCH_*.json` writers serialize: delivery, per-node
//! stat totals, crypto-pipeline totals, event throughput, and wall
//! time. All simulation-derived fields are pure functions of the
//! scenario spec and seed; only `wall_s` / `events_per_sec` depend on
//! the machine — [`RunReport::fingerprint`] masks those two for
//! determinism assertions.

/// Per-node protocol counters summed over all hosts (the DNS node, which
/// originates no application traffic, is excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatTotals {
    pub data_sent: u64,
    pub data_acked: u64,
    pub data_received: u64,
    pub data_failed: u64,
    pub rreq_sent: u64,
    pub rrep_sent: u64,
    pub crep_sent: u64,
    pub rerr_sent: u64,
    /// Verification rejections of every kind (see
    /// [`NodeStats::total_rejected`](crate::stats::NodeStats::total_rejected)).
    pub rejected: u64,
    pub collisions_detected: u64,
}

/// Crypto-pipeline totals summed over every host **and** the DNS node:
/// RSA verifications actually executed, verdicts served from the verify
/// cache, and rejected checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoTotals {
    pub executed: u64,
    pub cached: u64,
    pub failed: u64,
}

impl CryptoTotals {
    /// Total verification demand (executed + served from cache).
    pub fn demand(&self) -> u64 {
        self.executed + self.cached
    }
}

/// Everything one scenario run produced.
///
/// `delivery_ratio` and `mean_degree` are `None` when their denominator
/// is empty (no data packets sent / no alive hosts) — the silent-NaN
/// escape hatch lives only in [`RunReport::delivery_or_nan`], for
/// writers that need a raw float.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Fraction of sent data packets end-to-end acknowledged, across all
    /// hosts; `None` if nothing was sent.
    pub delivery_ratio: Option<f64>,
    /// Mean link-layer degree over alive hosts; `None` if none are alive.
    pub mean_degree: Option<f64>,
    pub totals: StatTotals,
    pub crypto: CryptoTotals,
    /// Engine events processed since the network was built.
    pub events: u64,
    /// Simulated seconds elapsed.
    pub sim_s: f64,
    /// Wall-clock seconds of the `run` call that produced this report.
    pub wall_s: f64,
    /// Events per wall-clock second. The driver
    /// ([`Network::run`](super::Network::run)) computes this from the
    /// events processed *during that run*, so an earlier bootstrap or
    /// workload does not inflate the rate; a bare
    /// [`Network::report`](super::Network::report) divides the whole
    /// history by the caller's wall window.
    pub events_per_sec: f64,
    /// Engine-only throughput: lifetime events over wall-clock seconds
    /// spent inside `Engine::run_until`. Free of scenario construction
    /// and key generation, so it is the number the CI perf-regression
    /// gate compares across commits. Wall-derived, masked by
    /// [`RunReport::fingerprint`].
    pub events_per_sec_engine: f64,
    /// Which pending-event store produced this run (`"wheel"` /
    /// `"heap"`). A configuration echo, not an observable — masked by
    /// [`RunReport::fingerprint`] so wheel-vs-heap differentials can
    /// compare whole reports.
    pub queue_impl: &'static str,
    /// Which executor produced this run (`"single"` / `"sharded"`).
    /// Config echo, masked by [`RunReport::fingerprint`] so
    /// sharded-vs-single differentials can compare whole reports.
    pub exec_mode: &'static str,
    /// Shard count of the executor (1 under `"single"`). Masked by
    /// [`RunReport::fingerprint`].
    pub shards: usize,
    pub tx_bytes: u64,
    pub rx_frames: u64,
    pub nodes_killed: u64,
    /// Process peak RSS (`VmHWM`) when the report was taken; `None`
    /// off-Linux. Machine-dependent — masked by
    /// [`RunReport::fingerprint`].
    pub peak_rss_bytes: Option<u64>,
    /// Cumulative allocated bytes, if the process installed
    /// [`manet_sim::mem::CountingAlloc`](manet_sim::mem). Masked by
    /// [`RunReport::fingerprint`] (allocator traffic is not part of
    /// the simulation's observable state).
    pub alloc_bytes: Option<u64>,
    /// Cumulative allocation count, same source and masking as
    /// `alloc_bytes`.
    pub alloc_count: Option<u64>,
}

impl RunReport {
    /// The machine-independent view: every field that must be a pure
    /// function of (spec, seed), with the wall-clock-derived fields
    /// zeroed. Two runs of the same scenario must compare equal here.
    pub fn fingerprint(&self) -> RunReport {
        RunReport {
            wall_s: 0.0,
            events_per_sec: 0.0,
            events_per_sec_engine: 0.0,
            queue_impl: "",
            exec_mode: "",
            shards: 0,
            peak_rss_bytes: None,
            alloc_bytes: None,
            alloc_count: None,
            ..self.clone()
        }
    }

    /// `delivery_ratio` with the empty case collapsed to NaN — only for
    /// numeric sinks (tables, JSON) that must emit *something*.
    pub fn delivery_or_nan(&self) -> f64 {
        self.delivery_ratio.unwrap_or(f64::NAN)
    }

    /// Hand-rolled JSON (the workspace is offline — no serde): the one
    /// serialization the `BENCH_*.json` writers embed.
    ///
    /// Every float goes through [`json_num`]: JSON has no NaN or
    /// infinity literals, so non-finite values (an empty-flow report's
    /// NaN ratios, a zero-wall run's infinite rate) serialize as `null`
    /// instead of producing an unparseable document.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| json_num(v.unwrap_or(f64::NAN), 4);
        let opt_u = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |u| u.to_string());
        format!(
            concat!(
                "{{\"wall_s\": {}, \"events\": {}, \"events_per_sec\": {}, ",
                "\"events_per_sec_engine\": {}, \"queue_impl\": \"{}\", ",
                "\"exec_mode\": \"{}\", \"shards\": {}, ",
                "\"sim_s\": {}, \"delivery_ratio\": {}, \"mean_degree\": {}, ",
                "\"tx_bytes\": {}, \"rx_frames\": {}, \"nodes_killed\": {}, ",
                "\"peak_rss_bytes\": {}, \"alloc_bytes\": {}, \"alloc_count\": {}, ",
                "\"totals\": {{\"data_sent\": {}, \"data_acked\": {}, \"data_failed\": {}, ",
                "\"rejected\": {}}}, ",
                "\"crypto\": {{\"executed\": {}, \"cached\": {}, \"failed\": {}}}}}"
            ),
            json_num(self.wall_s, 3),
            self.events,
            json_num(self.events_per_sec, 0),
            json_num(self.events_per_sec_engine, 0),
            self.queue_impl,
            self.exec_mode,
            self.shards,
            json_num(self.sim_s, 1),
            opt(self.delivery_ratio),
            opt(self.mean_degree),
            self.tx_bytes,
            self.rx_frames,
            self.nodes_killed,
            opt_u(self.peak_rss_bytes),
            opt_u(self.alloc_bytes),
            opt_u(self.alloc_count),
            self.totals.data_sent,
            self.totals.data_acked,
            self.totals.data_failed,
            self.totals.rejected,
            self.crypto.executed,
            self.crypto.cached,
            self.crypto.failed,
        )
    }
}

/// Format a float for a JSON document: fixed precision, or `null` when
/// the value has no JSON representation (NaN / ±infinity).
fn json_num(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            delivery_ratio: Some(0.9375),
            mean_degree: None,
            totals: StatTotals {
                data_sent: 16,
                data_acked: 15,
                ..StatTotals::default()
            },
            crypto: CryptoTotals {
                executed: 10,
                cached: 30,
                failed: 1,
            },
            events: 1234,
            sim_s: 20.5,
            wall_s: 0.123,
            events_per_sec: 10032.5,
            events_per_sec_engine: 20065.0,
            queue_impl: "wheel",
            exec_mode: "single",
            shards: 1,
            tx_bytes: 9000,
            rx_frames: 400,
            nodes_killed: 0,
            peak_rss_bytes: Some(64 * 1024 * 1024),
            alloc_bytes: None,
            alloc_count: None,
        }
    }

    #[test]
    fn fingerprint_masks_only_wall_derived_fields() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 99.0;
        b.events_per_sec = 1.0;
        b.events_per_sec_engine = 2.0;
        // The queue/exec choices are config, not observables:
        // wheel-vs-heap and sharded-vs-single differentials compare
        // fingerprints directly.
        b.queue_impl = "heap";
        b.exec_mode = "sharded";
        b.shards = 8;
        // Memory observables are machine/allocator-dependent.
        b.peak_rss_bytes = Some(1);
        b.alloc_bytes = Some(2);
        b.alloc_count = Some(3);
        assert_ne!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A genuine divergence still shows through.
        b.events += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_denominators_are_explicit_not_nan() {
        let r = sample();
        assert_eq!(r.mean_degree, None);
        assert!(r.delivery_or_nan() > 0.9);
        let mut none = sample();
        none.delivery_ratio = None;
        assert!(none.delivery_or_nan().is_nan());
    }

    #[test]
    fn json_spells_out_null_for_missing_ratios() {
        let mut r = sample();
        r.delivery_ratio = None;
        let j = r.to_json();
        assert!(j.contains("\"delivery_ratio\": null"), "{j}");
        assert!(j.contains("\"mean_degree\": null"), "{j}");
        assert!(j.contains("\"wall_s\": 0.123"), "{j}");
        assert!(j.contains("\"crypto\": {\"executed\": 10"), "{j}");
        assert!(j.contains("\"events_per_sec_engine\": 20065"), "{j}");
        assert!(j.contains("\"queue_impl\": \"wheel\""), "{j}");
        assert!(j.contains("\"exec_mode\": \"single\""), "{j}");
        assert!(j.contains("\"shards\": 1"), "{j}");
        assert!(j.contains("\"peak_rss_bytes\": 67108864"), "{j}");
        assert!(j.contains("\"alloc_bytes\": null"), "{j}");
        assert!(j.contains("\"alloc_count\": null"), "{j}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null_not_nan() {
        // The empty-flow shape: nothing sent, nothing timed.
        let mut r = sample();
        r.delivery_ratio = None;
        r.mean_degree = None;
        r.wall_s = f64::NAN;
        r.events_per_sec = f64::INFINITY;
        r.events_per_sec_engine = f64::NEG_INFINITY;
        r.sim_s = f64::NAN;
        let j = r.to_json();
        assert!(!j.contains("NaN") && !j.contains("inf"), "{j}");
        assert!(j.contains("\"wall_s\": null"), "{j}");
        assert!(j.contains("\"events_per_sec\": null"), "{j}");
        assert!(j.contains("\"events_per_sec_engine\": null"), "{j}");
        assert!(j.contains("\"sim_s\": null"), "{j}");
        assert!(j.contains("\"delivery_ratio\": null"), "{j}");
    }

    #[test]
    fn demand_sums_executed_and_cached() {
        assert_eq!(sample().crypto.demand(), 40);
    }
}
