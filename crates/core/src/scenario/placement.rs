//! Node placement shapes and position resolution.

use manet_sim::{placement, Field, Pos};

/// Node placement shapes. Resolved to concrete positions at build time;
/// index 0 is the DNS for secure networks, hosts follow in order.
#[derive(Clone, Debug)]
pub enum Placement {
    /// A line with the given spacing; with default radio range (250 m)
    /// use 150–240 m for a strict multi-hop chain.
    Chain { spacing: f64 },
    /// A grid with `cols` columns.
    Grid { cols: usize, spacing: f64 },
    /// Uniformly random on the scenario's field (seed-deterministic).
    Uniform,
    /// The canonical "bypass" topology for credit experiments: the
    /// shortest S→D path runs through one relay (host index
    /// [`BYPASS_ATTACKER`]) and a two-relay detour exists around it.
    /// Requires exactly 5 hosts; host 0 is S, host 2 is D. The DNS slot
    /// (secure stack only) sits near S.
    Bypass,
    /// Explicit positions; for a secure network index 0 is the DNS and
    /// the rest are hosts in order (supply `n_hosts + 1` entries), for a
    /// plain network all entries are hosts.
    Custom(Vec<Pos>),
}

/// The host index sitting on the shortest path of [`Placement::Bypass`].
pub const BYPASS_ATTACKER: usize = 1;

/// The bypass geometry, DNS slot first. Plain networks (no DNS) take the
/// tail.
fn bypass_layout() -> Vec<Pos> {
    vec![
        Pos::new(0.0, 200.0),   // DNS, near S
        Pos::new(0.0, 0.0),     // h0 = S
        Pos::new(200.0, 0.0),   // h1 = the on-path relay (attacker slot)
        Pos::new(400.0, 0.0),   // h2 = D
        Pos::new(100.0, 170.0), // h3 = detour relay 1
        Pos::new(300.0, 170.0), // h4 = detour relay 2
    ]
}

/// Resolve a placement to `n` concrete positions (including the DNS slot
/// for secure networks). `has_dns` says whether position 0 is a DNS
/// slot, so fixed-size shapes can reject a wrong host count instead of
/// silently shifting geometry.
pub(crate) fn positions_for(
    placement: &Placement,
    n: usize,
    has_dns: bool,
    field: &Field,
    seed: u64,
) -> Vec<Pos> {
    use rand::SeedableRng;
    match placement {
        Placement::Chain { spacing } => placement::chain(n, *spacing, field.height / 2.0),
        Placement::Grid { cols, spacing } => placement::grid(n, *cols, *spacing),
        Placement::Uniform => {
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            placement::uniform(n, field, &mut rng)
        }
        Placement::Bypass => {
            let all = bypass_layout();
            let expected = if has_dns { all.len() } else { all.len() - 1 };
            assert_eq!(
                n,
                expected,
                "bypass topology is fixed at 5 hosts{}; asked for {n} positions",
                if has_dns { " + DNS" } else { "" }
            );
            all[all.len() - n..].to_vec()
        }
        Placement::Custom(positions) => {
            assert_eq!(positions.len(), n, "custom placement size mismatch");
            positions.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_resolves_with_and_without_dns_slot() {
        let field = Field::new(2000.0, 2000.0);
        let secure = positions_for(&Placement::Bypass, 6, true, &field, 1);
        let plain = positions_for(&Placement::Bypass, 5, false, &field, 1);
        assert_eq!(secure.len(), 6);
        assert_eq!(plain.len(), 5);
        // The plain layout is the secure layout minus the DNS slot, so
        // host indices (and BYPASS_ATTACKER) coincide across stacks.
        assert_eq!(&secure[1..], &plain[..]);
        assert_eq!(plain[BYPASS_ATTACKER], Pos::new(200.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "bypass topology")]
    fn bypass_rejects_wrong_size() {
        let field = Field::new(2000.0, 2000.0);
        positions_for(&Placement::Bypass, 3, false, &field, 1);
    }

    #[test]
    #[should_panic(expected = "bypass topology")]
    fn bypass_rejects_a_plain_count_on_the_secure_stack() {
        // 5 positions is the *plain* bypass size; a secure build asking
        // for 5 (i.e. 4 hosts + DNS) must panic, not shift the DNS into
        // the S slot.
        let field = Field::new(2000.0, 2000.0);
        positions_for(&Placement::Bypass, 5, true, &field, 1);
    }

    #[test]
    #[should_panic(expected = "bypass topology")]
    fn bypass_rejects_a_secure_count_on_the_plain_stack() {
        let field = Field::new(2000.0, 2000.0);
        positions_for(&Placement::Bypass, 6, false, &field, 1);
    }

    #[test]
    fn custom_placement_checks_size() {
        let field = Field::new(100.0, 100.0);
        let got = positions_for(
            &Placement::Custom(vec![Pos::new(1.0, 2.0)]),
            1,
            false,
            &field,
            0,
        );
        assert_eq!(got, vec![Pos::new(1.0, 2.0)]);
    }
}
