//! The generic network handle: one implementation of traffic driving and
//! metric extraction shared by every protocol stack.
//!
//! [`Network<P>`] replaces the old `SecureNetwork` / `PlainNetwork`
//! struct pair, whose `send` / `run_flows` / `delivery_ratio` /
//! `mean_degree` bodies were duplicated nearly verbatim. Anything a
//! stack must provide to participate lives in the small [`NodeApi`]
//! trait; everything else is written once here.

use super::report::{CryptoTotals, RunReport, StatTotals};
use super::workload::{Workload, DEFAULT_PAYLOAD};
use crate::node::SecureNode;
use crate::plain::PlainDsrNode;
use crate::stats::NodeStats;
use manet_crypto::{BatchVerifier, CryptoBackend};
use manet_sim::{Ctx, Engine, NodeId, Protocol, SimTime};
use manet_wire::{DomainName, Ipv6Addr};
use std::marker::PhantomData;
use std::sync::Arc;

/// What a protocol stack exposes so the generic [`Network`] can drive it
/// and read it. Implemented by [`SecureNode`] and [`PlainDsrNode`]; any
/// future stack joins the scenario layer by implementing this.
pub trait NodeApi: Protocol + Sized + 'static {
    /// The node's current address.
    fn addr(&self) -> Ipv6Addr;
    /// The node's protocol counters.
    fn node_stats(&self) -> &NodeStats;
    /// Application entry point: send `payload` to `dst`.
    fn send_payload(&mut self, ctx: &mut Ctx, dst: Ipv6Addr, payload: Vec<u8>);
    /// Has the node finished joining (DAD etc.)? Stacks without a
    /// bootstrap phase are always ready.
    fn ready(&self) -> bool {
        true
    }
    /// Does this node materialize detailed per-node counters? When a
    /// stack runs in streaming-metrics mode (`false`), harness
    /// aggregates are read from the engine's metrics counters instead
    /// of summing [`NodeStats`].
    fn per_node_stats(&self) -> bool {
        true
    }
}

impl NodeApi for SecureNode {
    fn addr(&self) -> Ipv6Addr {
        self.ip()
    }
    fn node_stats(&self) -> &NodeStats {
        self.stats()
    }
    fn send_payload(&mut self, ctx: &mut Ctx, dst: Ipv6Addr, payload: Vec<u8>) {
        self.send_data(ctx, dst, payload);
    }
    fn ready(&self) -> bool {
        self.is_ready()
    }
}

impl NodeApi for PlainDsrNode {
    fn addr(&self) -> Ipv6Addr {
        self.ip()
    }
    fn node_stats(&self) -> &NodeStats {
        self.stats()
    }
    fn send_payload(&mut self, ctx: &mut Ctx, dst: Ipv6Addr, payload: Vec<u8>) {
        self.send_data(ctx, dst, payload);
    }
    fn per_node_stats(&self) -> bool {
        self.per_node_stats()
    }
}

/// A built network of protocol `P` nodes: engine + node handles. Build
/// one with [`ScenarioBuilder`](super::ScenarioBuilder).
pub struct Network<P: NodeApi> {
    pub engine: Engine,
    /// The DNS server node, if the stack has one (always placed first).
    pub dns: Option<NodeId>,
    /// Host nodes in construction order.
    pub hosts: Vec<NodeId>,
    /// When the last host joins (bootstrap completes some time after).
    pub last_join: SimTime,
    /// The network-shared signature backend (secure builds): its
    /// counters report *actual* backend executions network-wide, the
    /// quantity the demand-side `sec.verify_rsa` deliberately does not
    /// measure. `None` for plain stacks.
    pub crypto_backend: Option<Arc<dyn CryptoBackend>>,
    /// The shared batch verifier when deferred verification is on.
    pub batch: Option<Arc<BatchVerifier>>,
    pub(super) _stack: PhantomData<P>,
}

impl<P: NodeApi> Network<P> {
    /// Borrow a host's protocol.
    pub fn host(&self, i: usize) -> &P {
        self.engine.protocol_as::<P>(self.hosts[i])
    }

    /// A host's current address.
    pub fn host_ip(&self, i: usize) -> Ipv6Addr {
        self.host(i).addr()
    }

    /// Have host `from` send `payload` to host `to` right now.
    pub fn send(&mut self, from: usize, to: usize, payload: Vec<u8>) {
        let dst = self.host_ip(to);
        let id = self.hosts[from];
        self.engine.with_protocol::<P, _>(id, |n, ctx| {
            n.send_payload(ctx, dst, payload);
        });
    }

    /// Execute a declarative [`Workload`] — warmup, `packets` rounds of
    /// one packet per flow spaced by `interval`, then the drain — and
    /// report what the universe looks like afterwards. This is the one
    /// traffic driver every scenario (secure, plain, scale) runs on.
    pub fn run(&mut self, w: &Workload) -> RunReport {
        // lint: allow(wall-clock) — harness-side perf reporting; wall_s is masked out of RunReport fingerprints
        let t0 = std::time::Instant::now();
        let events_before = self.engine.events_processed();
        if w.warmup > manet_sim::SimDuration::ZERO {
            let until = self.engine.now() + w.warmup;
            self.engine.run_until(until);
        }
        for _ in 0..w.packets {
            for &(from, to) in &w.flows {
                self.send(from, to, vec![DEFAULT_PAYLOAD.0; w.payload_len]);
            }
            let next = self.engine.now() + w.interval;
            self.engine.run_until(next);
        }
        // Anchor the drain past the join storm so a drain on a freshly
        // built staggered network covers every scheduled join.
        let anchor = self.engine.now().max(self.last_join);
        self.engine.run_until(anchor + w.drain);
        let wall_s = t0.elapsed().as_secs_f64();
        let mut report = self.report(wall_s);
        // Rate this run only: `events` stays cumulative (deterministic),
        // but dividing the whole history by this run's wall would
        // overstate throughput after a bootstrap or an earlier workload.
        report.events_per_sec = if wall_s > 0.0 {
            (report.events - events_before) as f64 / wall_s
        } else {
            0.0
        };
        report
    }

    /// Legacy-shaped convenience: `packets` rounds of one packet per
    /// flow, spaced by `interval`, then a 5 s ack drain. Sugar over
    /// [`Network::run`].
    pub fn run_flows(
        &mut self,
        flows: &[(usize, usize)],
        packets: usize,
        interval: manet_sim::SimDuration,
    ) -> RunReport {
        self.run(&Workload::flows(flows.to_vec(), packets, interval))
    }

    /// Run long enough for every host to finish joining (secure DAD and
    /// DNS name commits; a no-op window for plain stacks). Returns
    /// whether all hosts are ready.
    pub fn bootstrap(&mut self) -> bool {
        self.run(&Workload::bootstrap_storm());
        self.all_ready()
    }

    /// Are all hosts done joining?
    pub fn all_ready(&self) -> bool {
        self.hosts
            .iter()
            .all(|&h| self.engine.protocol_as::<P>(h).ready())
    }

    /// Fraction of sent data packets that were end-to-end acknowledged,
    /// across all hosts. `None` if no host sent anything — the empty
    /// denominator is explicit, not a silent NaN.
    pub fn delivery_ratio(&self) -> Option<f64> {
        if !self.detailed_stats() {
            let m = self.engine.metrics();
            let sent = m.counter("app.data_sent");
            let acked = m.counter("app.data_acked");
            return (sent > 0).then(|| acked as f64 / sent as f64);
        }
        let (mut sent, mut acked) = (0u64, 0u64);
        for &h in &self.hosts {
            let s = self.engine.protocol_as::<P>(h).node_stats();
            sent += s.data_sent;
            acked += s.data_acked;
        }
        (sent > 0).then(|| acked as f64 / sent as f64)
    }

    /// Are detailed per-node stats available on this network's nodes?
    /// (Uniform per build: the config flag is the same for every host.)
    fn detailed_stats(&self) -> bool {
        self.hosts
            .first()
            .is_none_or(|&h| self.engine.protocol_as::<P>(h).per_node_stats())
    }

    /// Mean link-layer degree over alive hosts — the density check for
    /// randomly placed scale scenarios. `None` if no host is alive.
    /// Allocation-free per host via [`Engine::neighbors_into`].
    pub fn mean_degree(&self) -> Option<f64> {
        let mut nbrs = Vec::new();
        let (mut total, mut alive) = (0usize, 0usize);
        for &h in &self.hosts {
            if !self.engine.is_alive(h) {
                continue;
            }
            self.engine.neighbors_into(h, &mut nbrs);
            total += nbrs.len();
            alive += 1;
        }
        (alive > 0).then(|| total as f64 / alive as f64)
    }

    /// Per-node protocol counters summed over all hosts. In
    /// streaming-metrics mode the same totals come from the engine's
    /// counters (each `NodeStats` bump site pairs with a `ctx.count`);
    /// rejected/collision counters are zero there — plain stacks, the
    /// only streaming users, never reject or collide.
    pub fn stat_totals(&self) -> StatTotals {
        if !self.detailed_stats() {
            let m = self.engine.metrics();
            return StatTotals {
                data_sent: m.counter("app.data_sent"),
                data_acked: m.counter("app.data_acked"),
                data_received: m.counter("app.data_received"),
                data_failed: m.counter("app.data_failed"),
                rreq_sent: m.counter("route.rreq_originated"),
                rrep_sent: m.counter("route.rrep_sent"),
                crep_sent: m.counter("route.cached_reply"),
                rerr_sent: m.counter("route.rerr_sent"),
                rejected: 0,
                collisions_detected: 0,
            };
        }
        let mut t = StatTotals::default();
        for &h in &self.hosts {
            let s = self.engine.protocol_as::<P>(h).node_stats();
            t.data_sent += s.data_sent;
            t.data_acked += s.data_acked;
            t.data_received += s.data_received;
            t.data_failed += s.data_failed;
            t.rreq_sent += s.rreq_sent;
            t.rrep_sent += s.rrep_sent;
            t.crep_sent += s.crep_sent;
            t.rerr_sent += s.rerr_sent;
            t.rejected += s.total_rejected();
            t.collisions_detected += s.collisions_detected as u64;
        }
        t
    }

    /// Network-wide crypto-pipeline totals summed over every host and
    /// the DNS node (zero across the board for plain stacks).
    pub fn crypto_totals(&self) -> CryptoTotals {
        let mut t = CryptoTotals::default();
        for &id in self.hosts.iter().chain(self.dns.iter()) {
            let s = self.engine.protocol_as::<P>(id).node_stats();
            t.executed += s.crypto_verify_attempted;
            t.cached += s.crypto_verify_cached;
            t.failed += s.crypto_verify_failed;
        }
        t
    }

    /// Snapshot the whole universe into a [`RunReport`]. `wall_s` is
    /// whatever wall-clock window the caller timed (the driver passes
    /// its own run time).
    pub fn report(&self, wall_s: f64) -> RunReport {
        let m = self.engine.metrics();
        let events = self.engine.events_processed();
        let busy = self.engine.busy_secs();
        RunReport {
            delivery_ratio: self.delivery_ratio(),
            mean_degree: self.mean_degree(),
            totals: self.stat_totals(),
            crypto: self.crypto_totals(),
            events,
            sim_s: self.engine.now().as_secs_f64(),
            wall_s,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            events_per_sec_engine: if busy > 0.0 {
                events as f64 / busy
            } else {
                0.0
            },
            queue_impl: self.engine.queue_impl().name(),
            exec_mode: self.engine.exec_mode().name(),
            shards: self.engine.exec_mode().shard_count(),
            tx_bytes: m.counter("ctl.tx_bytes"),
            rx_frames: m.counter("phy.rx_frames"),
            nodes_killed: m.counter("sim.nodes_killed"),
            peak_rss_bytes: manet_sim::mem::peak_rss_bytes(),
            alloc_bytes: manet_sim::mem::alloc_totals().map(|(b, _)| b),
            alloc_count: manet_sim::mem::alloc_totals().map(|(_, c)| c),
        }
    }

    /// Deterministically pick `n_flows` source→destination host pairs
    /// from the largest radio component reachable from a few probe
    /// hosts, so scale runs measure routing rather than
    /// unreachable-by-construction pairs. Draws from the engine RNG
    /// (stays inside the seeded universe).
    pub fn scale_flows(&mut self, n_flows: usize) -> Vec<(usize, usize)> {
        use rand::Rng;
        let probes: Vec<usize> = [0usize, 1, 2, 3]
            .iter()
            .map(|&i| i * self.hosts.len() / 4)
            .collect();
        let component = probes
            .into_iter()
            .map(|i| self.engine.connected_component(self.hosts[i]))
            .max_by_key(|c| c.len())
            .unwrap_or_default();
        // Map engine ids back to host indices (the DNS node, if any, is
        // not a flow endpoint).
        let idx_of: crate::fxhash::FxHashMap<NodeId, usize> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let pool: Vec<usize> = component
            .into_iter()
            .filter_map(|id| idx_of.get(&id).copied())
            .collect();
        if pool.len() < 2 {
            return Vec::new();
        }
        let mut flows = Vec::with_capacity(n_flows);
        while flows.len() < n_flows {
            let a = pool[self.engine.rng().gen_range(0..pool.len())];
            let b = pool[self.engine.rng().gen_range(0..pool.len())];
            if a != b {
                flows.push((a, b));
            }
        }
        flows
    }
}

impl Network<SecureNode> {
    /// Borrow the DNS node's protocol.
    pub fn dns_node(&self) -> &SecureNode {
        let dns = self.dns.expect("secure networks always have a DNS node");
        self.engine.protocol_as::<SecureNode>(dns)
    }
}

impl SecureNode {
    /// Pre-register a (name, address) pair at this DNS node — only
    /// meaningful before the network starts (Section 3's permanent
    /// entries).
    pub fn dns_preregister(&mut self, dn: DomainName, ip: Ipv6Addr) {
        if let Some(dns) = &mut self.dns {
            dns.preregister(dn, ip);
        }
    }
}
