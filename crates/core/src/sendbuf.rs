//! Arena-backed pre-route send buffer.
//!
//! Both protocol stacks queue outbound work until a route to the
//! destination exists. The queue entries used to own their payload
//! `Vec<u8>`s; at S3 scale (10⁵ nodes × up to 64 buffered frames) that
//! is potentially millions of small heap blocks. [`SendBuffer`] keeps
//! the payload bytes in a per-node [`SliceArena`] instead — one backing
//! vector whose spans are recycled as entries drain — and the queue
//! holds a 4-byte handle plus caller metadata `M` (the plain stack's
//! sequence number, the secure stack's `Queued` variant).
//!
//! Entry order is strictly FIFO and every operation is rotation-safe:
//! `pop_front` + `push_back` over the full length preserves relative
//! order exactly, which is how `flush`-style callers reproduce the
//! legacy `mem::take`-and-requeue semantics byte for byte.

use crate::arena::{SliceArena, SpanHandle};
use manet_wire::Ipv6Addr;
use std::collections::VecDeque;

/// FIFO of `(dest, meta, payload)` with arena-resident payload bytes.
#[derive(Debug)]
pub struct SendBuffer<M> {
    queue: VecDeque<(Ipv6Addr, M, SpanHandle)>,
    arena: SliceArena<u8>,
}

impl<M> Default for SendBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SendBuffer<M> {
    pub fn new() -> Self {
        SendBuffer {
            queue: VecDeque::new(),
            arena: SliceArena::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Append an entry; payload bytes are copied into the arena.
    pub fn push_back(&mut self, dest: Ipv6Addr, meta: M, payload: &[u8]) {
        let span = self.arena.alloc(payload);
        self.queue.push_back((dest, meta, span));
    }

    /// Remove and materialize the oldest entry.
    pub fn pop_front(&mut self) -> Option<(Ipv6Addr, M, Vec<u8>)> {
        let (dest, meta, span) = self.queue.pop_front()?;
        let payload = self.arena.get(span).to_vec();
        self.arena.free(span);
        Some((dest, meta, payload))
    }

    /// Remove the oldest entry without materializing its payload
    /// (overflow drop path).
    pub fn drop_front(&mut self) -> Option<(Ipv6Addr, M)> {
        let (dest, meta, span) = self.queue.pop_front()?;
        self.arena.free(span);
        Some((dest, meta))
    }

    /// Drop every entry queued for `dest`, preserving the relative
    /// order of the survivors. Returns how many entries were dropped.
    pub fn remove_dest(&mut self, dest: Ipv6Addr) -> usize {
        let mut dropped = 0;
        let arena = &mut self.arena;
        self.queue.retain(|(d, _, span)| {
            if *d == dest {
                arena.free(*span);
                dropped += 1;
                false
            } else {
                true
            }
        });
        dropped
    }

    /// Destinations of queued entries, in queue order (duplicates kept).
    pub fn dests(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.queue.iter().map(|(d, _, _)| *d)
    }

    /// Arena high-water mark in bytes (diagnostics / churn tests).
    pub fn arena_backing_len(&self) -> usize {
        self.arena.backing_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    #[test]
    fn fifo_roundtrip() {
        let mut b: SendBuffer<u64> = SendBuffer::new();
        b.push_back(ip(1), 10, b"aa");
        b.push_back(ip(2), 20, b"bbb");
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop_front(), Some((ip(1), 10, b"aa".to_vec())));
        assert_eq!(b.pop_front(), Some((ip(2), 20, b"bbb".to_vec())));
        assert!(b.pop_front().is_none());
    }

    #[test]
    fn rotation_preserves_order() {
        let mut b: SendBuffer<u64> = SendBuffer::new();
        for k in 0..5u64 {
            b.push_back(ip(k as u16), k, &[k as u8; 4]);
        }
        let n = b.len();
        for _ in 0..n {
            let (d, m, p) = b.pop_front().unwrap();
            b.push_back(d, m, &p);
        }
        let metas: Vec<u64> = (0..n).map(|_| b.pop_front().unwrap().1).collect();
        assert_eq!(metas, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remove_dest_counts_and_keeps_order() {
        let mut b: SendBuffer<u64> = SendBuffer::new();
        b.push_back(ip(1), 0, b"x");
        b.push_back(ip(2), 1, b"y");
        b.push_back(ip(1), 2, b"z");
        b.push_back(ip(3), 3, b"w");
        assert_eq!(b.remove_dest(ip(1)), 2);
        assert_eq!(b.pop_front(), Some((ip(2), 1, b"y".to_vec())));
        assert_eq!(b.pop_front(), Some((ip(3), 3, b"w".to_vec())));
        assert!(b.is_empty());
    }

    #[test]
    fn steady_churn_reuses_payload_spans() {
        let mut b: SendBuffer<u64> = SendBuffer::new();
        for _ in 0..4 {
            b.push_back(ip(1), 0, &[0u8; 64]);
        }
        let high = b.arena_backing_len();
        for round in 0..100u64 {
            let (d, _, p) = b.pop_front().unwrap();
            b.push_back(d, round, &p);
        }
        assert_eq!(b.arena_backing_len(), high, "churn must not grow arena");
    }

    #[test]
    fn empty_payloads_supported() {
        let mut b: SendBuffer<&'static str> = SendBuffer::new();
        b.push_back(ip(1), "ctl", &[]);
        let (_, m, p) = b.pop_front().unwrap();
        assert_eq!(m, "ctl");
        assert!(p.is_empty());
    }
}
