//! Neighbor cache: IPv6 address → link-layer node, learned from the
//! (unauthenticated) source field of received frames.
//!
//! This plays the role of IPv6 neighbor discovery's link-layer address
//! resolution. Entries age out so a departed neighbor eventually stops
//! being a forwarding candidate; a stale entry is not a safety problem —
//! unicast to a gone node surfaces as a link failure, which is exactly
//! the protocol's RERR trigger.

use crate::fxhash::FxHashMap;
use crate::intern::{AddrInterner, InternTable};
use manet_sim::{NodeId, SimDuration, SimTime};
use manet_wire::Ipv6Addr;
use std::sync::Arc;

/// Default entry lifetime.
pub const DEFAULT_TTL: SimDuration = SimDuration(30_000_000); // 30 s

/// IPv6 → link neighbor mapping with last-heard timestamps.
///
/// Entries key on interned `u32` address ids (shared network-wide
/// table + per-cache overflow), so at S3 scale the map holds 4-byte
/// keys instead of 16-byte addresses.
#[derive(Debug)]
pub struct NeighborCache {
    ttl: SimDuration,
    interner: AddrInterner,
    entries: FxHashMap<u32, (NodeId, SimTime)>,
}

impl Default for NeighborCache {
    fn default() -> Self {
        Self::new(DEFAULT_TTL)
    }
}

impl NeighborCache {
    pub fn new(ttl: SimDuration) -> Self {
        NeighborCache {
            ttl,
            interner: AddrInterner::new(),
            entries: FxHashMap::default(),
        }
    }

    /// Adopt the network-wide intern table (builder-time only, before
    /// any entries exist).
    pub fn set_intern_table(&mut self, table: Arc<InternTable>) {
        self.interner.set_table(table);
    }

    /// Record that `ip` was heard transmitting as link node `node` at `now`.
    /// Unspecified sources (DAD probes) are ignored.
    pub fn learn(&mut self, ip: Ipv6Addr, node: NodeId, now: SimTime) {
        if ip.is_unspecified() {
            return;
        }
        let id = self.interner.id(ip);
        self.entries.insert(id, (node, now));
    }

    /// Look up the link node for `ip` if the entry is still fresh.
    pub fn lookup(&self, ip: &Ipv6Addr, now: SimTime) -> Option<NodeId> {
        let id = self.interner.lookup(ip)?;
        self.entries.get(&id).and_then(|&(node, heard)| {
            if now.as_micros().saturating_sub(heard.as_micros()) <= self.ttl.as_micros() {
                Some(node)
            } else {
                None
            }
        })
    }

    /// Drop an entry (e.g. after a link failure to that neighbor).
    pub fn forget(&mut self, ip: &Ipv6Addr) {
        if let Some(id) = self.interner.lookup(ip) {
            self.entries.remove(&id);
        }
    }

    /// Number of (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    #[test]
    fn learn_and_lookup() {
        let mut c = NeighborCache::default();
        c.learn(ip(1), NodeId(3), SimTime(0));
        assert_eq!(c.lookup(&ip(1), SimTime(1_000)), Some(NodeId(3)));
        assert_eq!(c.lookup(&ip(2), SimTime(1_000)), None);
    }

    #[test]
    fn entries_expire() {
        let mut c = NeighborCache::new(SimDuration::from_secs(1));
        c.learn(ip(1), NodeId(3), SimTime(0));
        assert_eq!(c.lookup(&ip(1), SimTime(1_000_000)), Some(NodeId(3)));
        assert_eq!(c.lookup(&ip(1), SimTime(1_000_001)), None);
    }

    #[test]
    fn relearning_refreshes() {
        let mut c = NeighborCache::new(SimDuration::from_secs(1));
        c.learn(ip(1), NodeId(3), SimTime(0));
        c.learn(ip(1), NodeId(4), SimTime(900_000));
        // Refreshed and remapped.
        assert_eq!(c.lookup(&ip(1), SimTime(1_800_000)), Some(NodeId(4)));
    }

    #[test]
    fn unspecified_source_not_learned() {
        let mut c = NeighborCache::default();
        c.learn(manet_wire::UNSPECIFIED, NodeId(1), SimTime(0));
        assert!(c.is_empty());
    }

    #[test]
    fn forget_removes() {
        let mut c = NeighborCache::default();
        c.learn(ip(1), NodeId(3), SimTime(0));
        c.forget(&ip(1));
        assert_eq!(c.lookup(&ip(1), SimTime(0)), None);
    }
}
