//! DSR route cache with credit-aware selection.
//!
//! A cached route stores the *relay* list only (the endpoints are
//! implicit: this node and the destination). Routes this node discovered
//! itself also keep the destination's RREP proof so they can be served
//! to other nodes as CREPs (Section 3.3); routes learned from a CREP
//! cannot (we hold no destination signature binding them to a request of
//! ours to hand out).
//!
//! Relay lists live in a per-cache [`SliceArena`]: a stored route is a
//! 4-byte span handle instead of an owning `Vec`, and the insert/evict
//! churn of a long run recycles arena spans instead of hitting the
//! global allocator (ROADMAP item 1). Lookups hand out [`RouteView`]
//! borrows; [`CachedRoute`] remains the owned insertion type.

use crate::arena::{SliceArena, SpanHandle};
use crate::credit::CreditManager;
use crate::fxhash::FxHashMap;
use manet_sim::{SimDuration, SimTime};
use manet_wire::{IdentityProof, Ipv6Addr, RouteRecord, Seq};

/// Default route lifetime.
pub const DEFAULT_ROUTE_TTL: SimDuration = SimDuration(60_000_000); // 60 s

/// Default cap on cached routes per destination.
pub const DEFAULT_ROUTES_PER_DEST: usize = 8;

/// Default cap on destinations held in the cache.
pub const DEFAULT_MAX_DESTS: usize = 256;

/// One route to some destination, in owned form — the insertion type,
/// and what [`RouteView::to_owned`] rematerializes for callers that
/// must outlive the cache borrow.
#[derive(Clone, Debug)]
pub struct CachedRoute {
    /// Intermediate hops, source side first (may be empty: direct).
    pub relays: Vec<Ipv6Addr>,
    /// `(seq, D's RREP proof)` if we discovered this route ourselves —
    /// the material a CREP hands to the next requester.
    pub d_proof: Option<(Seq, IdentityProof)>,
    pub learned_at: SimTime,
}

/// Arena-resident form of a route: the relay list is a span handle.
#[derive(Debug)]
struct StoredRoute {
    relays: SpanHandle,
    d_proof: Option<(Seq, IdentityProof)>,
    learned_at: SimTime,
}

/// Borrowed view of a cached route, valid while the cache is not
/// mutated. Field-compatible with the old `&CachedRoute` access
/// pattern (`.relays`, `.d_proof`, `.learned_at`, `.full_path()`).
#[derive(Clone, Copy, Debug)]
pub struct RouteView<'a> {
    /// Intermediate hops, source side first (may be empty: direct).
    pub relays: &'a [Ipv6Addr],
    /// See [`CachedRoute::d_proof`].
    pub d_proof: &'a Option<(Seq, IdentityProof)>,
    pub learned_at: SimTime,
}

impl RouteView<'_> {
    /// Full forwarding path `[src, relays…, dst]`.
    pub fn full_path(&self, src: Ipv6Addr, dst: Ipv6Addr) -> RouteRecord {
        full_path_of(self.relays, src, dst)
    }

    /// Rematerialize an owned [`CachedRoute`] (drops the cache borrow).
    pub fn to_owned(&self) -> CachedRoute {
        CachedRoute {
            relays: self.relays.to_vec(),
            d_proof: self.d_proof.clone(),
            learned_at: self.learned_at,
        }
    }
}

impl CachedRoute {
    /// Full forwarding path `[src, relays…, dst]`.
    pub fn full_path(&self, src: Ipv6Addr, dst: Ipv6Addr) -> RouteRecord {
        full_path_of(&self.relays, src, dst)
    }
}

fn full_path_of(relays: &[Ipv6Addr], src: Ipv6Addr, dst: Ipv6Addr) -> RouteRecord {
    let mut v = Vec::with_capacity(relays.len() + 2);
    v.push(src);
    v.extend_from_slice(relays);
    v.push(dst);
    RouteRecord(v)
}

/// Does the implicit path `[me, relays…, dst]` traverse the directed
/// link `from → to`? Allocation-free equivalent of building the full
/// path and scanning `windows(2)`.
fn uses_link(
    me: Ipv6Addr,
    relays: &[Ipv6Addr],
    dst: Ipv6Addr,
    from: Ipv6Addr,
    to: Ipv6Addr,
) -> bool {
    let mut prev = me;
    for &hop in relays {
        if prev == from && hop == to {
            return true;
        }
        prev = hop;
    }
    prev == from && dst == to
}

/// Per-node route cache, bounded in both dimensions: at most
/// `per_dest` routes per destination and `max_dests` destinations
/// overall. Eviction is oldest-expiry (smallest `learned_at`) and fully
/// deterministic, so a capacity hit never perturbs a seeded run beyond
/// the eviction itself.
#[derive(Debug)]
pub struct RouteCache {
    ttl: SimDuration,
    per_dest: usize,
    max_dests: usize,
    routes: FxHashMap<Ipv6Addr, Vec<StoredRoute>>,
    arena: SliceArena<Ipv6Addr>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(DEFAULT_ROUTE_TTL)
    }
}

impl RouteCache {
    pub fn new(ttl: SimDuration) -> Self {
        Self::with_caps(ttl, DEFAULT_ROUTES_PER_DEST, DEFAULT_MAX_DESTS)
    }

    /// A cache with explicit capacity bounds (minimum 1 each).
    pub fn with_caps(ttl: SimDuration, per_dest: usize, max_dests: usize) -> Self {
        RouteCache {
            ttl,
            per_dest: per_dest.max(1),
            max_dests: max_dests.max(1),
            routes: FxHashMap::default(),
            arena: SliceArena::new(),
        }
    }

    fn view<'a>(&'a self, r: &'a StoredRoute) -> RouteView<'a> {
        RouteView {
            relays: self.arena.get(r.relays),
            d_proof: &r.d_proof,
            learned_at: r.learned_at,
        }
    }

    /// Insert a route to `dst`, replacing an identical relay list.
    /// Capacity pressure evicts the oldest-learned route of `dst`, and —
    /// for a new destination at the destination cap — the stalest other
    /// destination (the one whose *newest* route is oldest, ties broken
    /// by address so eviction is deterministic).
    pub fn insert(&mut self, dst: Ipv6Addr, route: CachedRoute) {
        if !self.routes.contains_key(&dst) && self.routes.len() >= self.max_dests {
            let stalest = self
                .routes
                // lint: allow(unordered-iter) — min over (time, addr) pairs: totally ordered, so the visit order cannot change the winner
                .iter()
                .map(|(d, list)| {
                    let newest = list.iter().map(|r| r.learned_at).max().expect("nonempty");
                    (newest, *d)
                })
                .min()
                .map(|(_, d)| d)
                .expect("cap >= 1 implies nonempty");
            let evicted = self.routes.remove(&stalest).expect("just found");
            for r in evicted {
                self.arena.free(r.relays);
            }
        }
        let per_dest = self.per_dest;
        let arena = &mut self.arena;
        let list = self.routes.entry(dst).or_default();
        list.retain(|r| {
            let same = arena.get(r.relays) == route.relays.as_slice();
            if same {
                arena.free(r.relays);
            }
            !same
        });
        while list.len() >= per_dest {
            let oldest = list
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.learned_at, *i))
                .map(|(i, _)| i)
                .expect("len >= cap >= 1");
            arena.free(list.remove(oldest).relays);
        }
        list.push(StoredRoute {
            relays: arena.alloc(&route.relays),
            d_proof: route.d_proof,
            learned_at: route.learned_at,
        });
    }

    fn fresh(&self, learned_at: SimTime, now: SimTime) -> bool {
        now.as_micros().saturating_sub(learned_at.as_micros()) <= self.ttl.as_micros()
    }

    /// Best fresh route to `dst`: avoided routes (credit floor) are
    /// filtered out when credits are enabled, then routes are ranked by
    /// highest minimum-credit score, shortest first on ties.
    pub fn best(
        &self,
        dst: &Ipv6Addr,
        credits: &CreditManager,
        now: SimTime,
    ) -> Option<RouteView<'_>> {
        let list = self.routes.get(dst)?;
        list.iter()
            .filter(|r| self.fresh(r.learned_at, now))
            .filter(|r| !credits.route_avoided(self.arena.get(r.relays)))
            .max_by(|a, b| {
                let (ra, rb) = (self.arena.get(a.relays), self.arena.get(b.relays));
                let (sa, sb) = if credits.enabled() {
                    (credits.route_score(ra), credits.route_score(rb))
                } else {
                    (0, 0)
                };
                sa.cmp(&sb).then(rb.len().cmp(&ra.len())) // shorter wins
            })
            .map(|r| self.view(r))
    }

    /// A fresh self-discovered route to `dst` usable for a CREP answer.
    pub fn creppable(&self, dst: &Ipv6Addr, now: SimTime) -> Option<RouteView<'_>> {
        self.routes
            .get(dst)?
            .iter()
            .find(|r| self.fresh(r.learned_at, now) && r.d_proof.is_some())
            .map(|r| self.view(r))
    }

    /// Remove every route (to any destination) that uses the directed
    /// link `from → to`, where `me` is this node's address (the implicit
    /// path head). Returns how many routes were dropped.
    pub fn remove_link(&mut self, me: Ipv6Addr, from: Ipv6Addr, to: Ipv6Addr) -> usize {
        let mut dropped = 0;
        let arena = &mut self.arena;
        // lint: allow(unordered-iter) — per-entry filtering; the drop count and arena frees are order-insensitive (pinned by golden traces)
        for (dst, list) in self.routes.iter_mut() {
            list.retain(|r| {
                let uses = uses_link(me, arena.get(r.relays), *dst, from, to);
                if uses {
                    arena.free(r.relays);
                    dropped += 1;
                }
                !uses
            });
        }
        self.routes.retain(|_, v| !v.is_empty());
        dropped
    }

    /// Drop all routes to `dst`.
    pub fn remove_dest(&mut self, dst: &Ipv6Addr) {
        if let Some(list) = self.routes.remove(dst) {
            for r in list {
                self.arena.free(r.relays);
            }
        }
    }

    /// Is at least one route to `dst` cached (fresh or not)?
    pub fn contains_dest(&self, dst: &Ipv6Addr) -> bool {
        self.routes.contains_key(dst)
    }

    /// Number of destinations with at least one cached route.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// All relay lists cached for `dst`, in list order (for tests and
    /// the differential proptest oracle).
    pub fn relay_lists(&self, dst: &Ipv6Addr) -> Vec<Vec<Ipv6Addr>> {
        self.routes
            .get(dst)
            .map(|list| {
                list.iter()
                    .map(|r| self.arena.get(r.relays).to_vec())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Arena backing-store high-water mark in relay entries (for churn
    /// bound tests and the `scale_mem` bench).
    pub fn arena_backing_len(&self) -> usize {
        self.arena.backing_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreditConfig;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn route(relays: Vec<Ipv6Addr>, at: u64) -> CachedRoute {
        CachedRoute {
            relays,
            d_proof: None,
            learned_at: SimTime(at),
        }
    }

    #[test]
    fn insert_and_best() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        let best = c.best(&ip(9), &credits, SimTime(0)).unwrap();
        assert_eq!(best.relays, vec![ip(1), ip(2)]);
        assert_eq!(
            best.full_path(ip(100), ip(9)).0,
            vec![ip(100), ip(1), ip(2), ip(9)]
        );
    }

    #[test]
    fn shorter_route_wins_on_equal_credit() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        c.insert(ip(9), route(vec![ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
    }

    #[test]
    fn higher_min_credit_beats_shorter() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.reward_route(&[ip(1), ip(2)]);
        credits.reward_route(&[ip(1), ip(2)]);
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // min credit 2
        c.insert(ip(9), route(vec![ip(3)], 0)); // min credit 0
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(1), ip(2)]
        );
    }

    #[test]
    fn avoided_routes_filtered() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.slash(&ip(1));
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(2), ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(2), ip(3)]
        );
        // When every route is avoided, none is returned (forces rediscovery).
        credits.slash(&ip(2));
        assert!(c.best(&ip(9), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn expired_routes_filtered() {
        let mut c = RouteCache::new(SimDuration::from_secs(1));
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.best(&ip(9), &credits, SimTime(999_999)).is_some());
        assert!(c.best(&ip(9), &credits, SimTime(1_000_001)).is_none());
    }

    #[test]
    fn remove_link_drops_only_affected_routes() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // uses 1→2
        c.insert(ip(9), route(vec![ip(3)], 0));
        c.insert(ip(8), route(vec![ip(1), ip(2), ip(4)], 0)); // uses 1→2
        let dropped = c.remove_link(ip(100), ip(1), ip(2));
        assert_eq!(dropped, 2);
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
        assert!(c.best(&ip(8), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn remove_link_covers_first_and_last_hop() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link me→1 (first hop).
        assert_eq!(c.remove_link(ip(100), ip(100), ip(1)), 1);
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link 1→9 (last hop).
        assert_eq!(c.remove_link(ip(100), ip(1), ip(9)), 1);
    }

    #[test]
    fn duplicate_relay_lists_replace() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(1)], 5_000_000));
        let best = c.best(&ip(9), &credits, SimTime(5_000_000)).unwrap();
        assert_eq!(best.learned_at, SimTime(5_000_000));
    }

    #[test]
    fn per_dest_cap_evicts_oldest_deterministically() {
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 3, 16);
        // Insert 5 distinct routes with increasing learn times.
        for t in 0..5u64 {
            c.insert(ip(9), route(vec![ip(10 + t as u16)], t * 1_000));
        }
        let list_of = |c: &RouteCache| {
            let lists = c.relay_lists(&ip(9));
            let mut seen: Vec<u16> = (0..5u16)
                .filter(|t| lists.iter().any(|r| *r == vec![ip(10 + t)]))
                .collect();
            seen.sort_unstable();
            seen
        };
        // The two oldest (t=0, t=1) were evicted; exactly 3 remain.
        assert_eq!(list_of(&c), vec![2, 3, 4]);
        assert_eq!(c.relay_lists(&ip(9)).len(), 3);
        // Re-running the same insert sequence reproduces the same state.
        let mut c2 = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 3, 16);
        for t in 0..5u64 {
            c2.insert(ip(9), route(vec![ip(10 + t as u16)], t * 1_000));
        }
        assert_eq!(list_of(&c2), vec![2, 3, 4]);
    }

    #[test]
    fn per_dest_cap_replacement_does_not_evict() {
        // Re-inserting the same relay list is a replacement, not growth:
        // it must not push out an unrelated route.
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 2, 16);
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(2)], 10));
        c.insert(ip(9), route(vec![ip(1)], 20)); // refresh, not insert
        let lists = c.relay_lists(&ip(9));
        assert_eq!(lists.len(), 2);
        assert!(lists.iter().any(|r| *r == vec![ip(2)]));
    }

    #[test]
    fn dest_cap_evicts_stalest_destination() {
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 4, 2);
        c.insert(ip(1), route(vec![ip(11)], 100));
        c.insert(ip(2), route(vec![ip(12)], 200));
        // Third destination: ip(1) holds the oldest newest-route → evicted.
        c.insert(ip(3), route(vec![ip(13)], 300));
        assert_eq!(c.len(), 2);
        assert!(!c.contains_dest(&ip(1)));
        assert!(c.contains_dest(&ip(2)));
        assert!(c.contains_dest(&ip(3)));
        // A refreshed destination survives the next round.
        c.insert(ip(2), route(vec![ip(14)], 400));
        c.insert(ip(4), route(vec![ip(15)], 500));
        assert!(c.contains_dest(&ip(2)), "refreshed dest must survive");
        assert!(!c.contains_dest(&ip(3)));
    }

    #[test]
    fn creppable_requires_d_proof() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.creppable(&ip(9), SimTime(0)).is_none());
    }

    #[test]
    fn eviction_churn_reuses_arena_storage() {
        // Same-shape insert/evict cycles must stabilize the arena
        // high-water mark: freed spans get reused, not leaked.
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 2, 4);
        for round in 0..64u64 {
            for d in 0..8u16 {
                c.insert(ip(d), route(vec![ip(100 + d), ip(200 + d)], round));
            }
            if round == 1 {
                // Two full rounds populate every slot shape once.
                let _ = c.arena_backing_len();
            }
        }
        let high = c.arena_backing_len();
        for round in 64..128u64 {
            for d in 0..8u16 {
                c.insert(ip(d), route(vec![ip(100 + d), ip(200 + d)], round));
            }
        }
        assert_eq!(c.arena_backing_len(), high, "churn must reuse spans");
    }
}
