//! DSR route cache with credit-aware selection.
//!
//! A cached route stores the *relay* list only (the endpoints are
//! implicit: this node and the destination). Routes this node discovered
//! itself also keep the destination's RREP proof so they can be served
//! to other nodes as CREPs (Section 3.3); routes learned from a CREP
//! cannot (we hold no destination signature binding them to a request of
//! ours to hand out).

use crate::credit::CreditManager;
use manet_sim::{SimDuration, SimTime};
use manet_wire::{IdentityProof, Ipv6Addr, RouteRecord, Seq};
use std::collections::HashMap;

/// Default route lifetime.
pub const DEFAULT_ROUTE_TTL: SimDuration = SimDuration(60_000_000); // 60 s

/// Default cap on cached routes per destination.
pub const DEFAULT_ROUTES_PER_DEST: usize = 8;

/// Default cap on destinations held in the cache.
pub const DEFAULT_MAX_DESTS: usize = 256;

/// One cached route to some destination.
#[derive(Clone, Debug)]
pub struct CachedRoute {
    /// Intermediate hops, source side first (may be empty: direct).
    pub relays: Vec<Ipv6Addr>,
    /// `(seq, D's RREP proof)` if we discovered this route ourselves —
    /// the material a CREP hands to the next requester.
    pub d_proof: Option<(Seq, IdentityProof)>,
    pub learned_at: SimTime,
}

impl CachedRoute {
    /// Full forwarding path `[src, relays…, dst]`.
    pub fn full_path(&self, src: Ipv6Addr, dst: Ipv6Addr) -> RouteRecord {
        let mut v = Vec::with_capacity(self.relays.len() + 2);
        v.push(src);
        v.extend_from_slice(&self.relays);
        v.push(dst);
        RouteRecord(v)
    }
}

/// Per-node route cache, bounded in both dimensions: at most
/// `per_dest` routes per destination and `max_dests` destinations
/// overall. Eviction is oldest-expiry (smallest `learned_at`) and fully
/// deterministic, so a capacity hit never perturbs a seeded run beyond
/// the eviction itself.
#[derive(Debug)]
pub struct RouteCache {
    ttl: SimDuration,
    per_dest: usize,
    max_dests: usize,
    routes: HashMap<Ipv6Addr, Vec<CachedRoute>>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(DEFAULT_ROUTE_TTL)
    }
}

impl RouteCache {
    pub fn new(ttl: SimDuration) -> Self {
        Self::with_caps(ttl, DEFAULT_ROUTES_PER_DEST, DEFAULT_MAX_DESTS)
    }

    /// A cache with explicit capacity bounds (minimum 1 each).
    pub fn with_caps(ttl: SimDuration, per_dest: usize, max_dests: usize) -> Self {
        RouteCache {
            ttl,
            per_dest: per_dest.max(1),
            max_dests: max_dests.max(1),
            routes: HashMap::new(),
        }
    }

    /// Insert a route to `dst`, replacing an identical relay list.
    /// Capacity pressure evicts the oldest-learned route of `dst`, and —
    /// for a new destination at the destination cap — the stalest other
    /// destination (the one whose *newest* route is oldest, ties broken
    /// by address so eviction is deterministic).
    pub fn insert(&mut self, dst: Ipv6Addr, route: CachedRoute) {
        if !self.routes.contains_key(&dst) && self.routes.len() >= self.max_dests {
            let stalest = self
                .routes
                .iter()
                .map(|(d, list)| {
                    let newest = list.iter().map(|r| r.learned_at).max().expect("nonempty");
                    (newest, *d)
                })
                .min()
                .map(|(_, d)| d)
                .expect("cap >= 1 implies nonempty");
            self.routes.remove(&stalest);
        }
        let per_dest = self.per_dest;
        let list = self.routes.entry(dst).or_default();
        list.retain(|r| r.relays != route.relays);
        while list.len() >= per_dest {
            let oldest = list
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.learned_at, *i))
                .map(|(i, _)| i)
                .expect("len >= cap >= 1");
            list.remove(oldest);
        }
        list.push(route);
    }

    fn fresh(&self, r: &CachedRoute, now: SimTime) -> bool {
        now.as_micros().saturating_sub(r.learned_at.as_micros()) <= self.ttl.as_micros()
    }

    /// Best fresh route to `dst`: avoided routes (credit floor) are
    /// filtered out when credits are enabled, then routes are ranked by
    /// highest minimum-credit score, shortest first on ties.
    pub fn best(
        &self,
        dst: &Ipv6Addr,
        credits: &CreditManager,
        now: SimTime,
    ) -> Option<&CachedRoute> {
        let list = self.routes.get(dst)?;
        list.iter()
            .filter(|r| self.fresh(r, now))
            .filter(|r| !credits.route_avoided(&r.relays))
            .max_by(|a, b| {
                let (sa, sb) = if credits.enabled() {
                    (
                        credits.route_score(&a.relays),
                        credits.route_score(&b.relays),
                    )
                } else {
                    (0, 0)
                };
                sa.cmp(&sb).then(b.relays.len().cmp(&a.relays.len())) // shorter wins
            })
    }

    /// A fresh self-discovered route to `dst` usable for a CREP answer.
    pub fn creppable(&self, dst: &Ipv6Addr, now: SimTime) -> Option<&CachedRoute> {
        self.routes
            .get(dst)?
            .iter()
            .find(|r| self.fresh(r, now) && r.d_proof.is_some())
    }

    /// Remove every route (to any destination) that uses the directed
    /// link `from → to`, where `me` is this node's address (the implicit
    /// path head). Returns how many routes were dropped.
    pub fn remove_link(&mut self, me: Ipv6Addr, from: Ipv6Addr, to: Ipv6Addr) -> usize {
        let mut dropped = 0;
        for (dst, list) in self.routes.iter_mut() {
            list.retain(|r| {
                let path = r.full_path(me, *dst);
                let uses = path.0.windows(2).any(|w| w[0] == from && w[1] == to);
                if uses {
                    dropped += 1;
                }
                !uses
            });
        }
        self.routes.retain(|_, v| !v.is_empty());
        dropped
    }

    /// Drop all routes to `dst`.
    pub fn remove_dest(&mut self, dst: &Ipv6Addr) {
        self.routes.remove(dst);
    }

    /// Number of destinations with at least one cached route.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreditConfig;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn route(relays: Vec<Ipv6Addr>, at: u64) -> CachedRoute {
        CachedRoute {
            relays,
            d_proof: None,
            learned_at: SimTime(at),
        }
    }

    #[test]
    fn insert_and_best() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        let best = c.best(&ip(9), &credits, SimTime(0)).unwrap();
        assert_eq!(best.relays, vec![ip(1), ip(2)]);
        assert_eq!(
            best.full_path(ip(100), ip(9)).0,
            vec![ip(100), ip(1), ip(2), ip(9)]
        );
    }

    #[test]
    fn shorter_route_wins_on_equal_credit() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        c.insert(ip(9), route(vec![ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
    }

    #[test]
    fn higher_min_credit_beats_shorter() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.reward_route(&[ip(1), ip(2)]);
        credits.reward_route(&[ip(1), ip(2)]);
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // min credit 2
        c.insert(ip(9), route(vec![ip(3)], 0)); // min credit 0
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(1), ip(2)]
        );
    }

    #[test]
    fn avoided_routes_filtered() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.slash(&ip(1));
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(2), ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(2), ip(3)]
        );
        // When every route is avoided, none is returned (forces rediscovery).
        credits.slash(&ip(2));
        assert!(c.best(&ip(9), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn expired_routes_filtered() {
        let mut c = RouteCache::new(SimDuration::from_secs(1));
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.best(&ip(9), &credits, SimTime(999_999)).is_some());
        assert!(c.best(&ip(9), &credits, SimTime(1_000_001)).is_none());
    }

    #[test]
    fn remove_link_drops_only_affected_routes() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // uses 1→2
        c.insert(ip(9), route(vec![ip(3)], 0));
        c.insert(ip(8), route(vec![ip(1), ip(2), ip(4)], 0)); // uses 1→2
        let dropped = c.remove_link(ip(100), ip(1), ip(2));
        assert_eq!(dropped, 2);
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
        assert!(c.best(&ip(8), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn remove_link_covers_first_and_last_hop() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link me→1 (first hop).
        assert_eq!(c.remove_link(ip(100), ip(100), ip(1)), 1);
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link 1→9 (last hop).
        assert_eq!(c.remove_link(ip(100), ip(1), ip(9)), 1);
    }

    #[test]
    fn duplicate_relay_lists_replace() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(1)], 5_000_000));
        let best = c.best(&ip(9), &credits, SimTime(5_000_000)).unwrap();
        assert_eq!(best.learned_at, SimTime(5_000_000));
    }

    #[test]
    fn per_dest_cap_evicts_oldest_deterministically() {
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 3, 16);
        let credits = CreditManager::new(CreditConfig::default());
        // Insert 5 distinct routes with increasing learn times.
        for t in 0..5u64 {
            c.insert(ip(9), route(vec![ip(10 + t as u16)], t * 1_000));
        }
        let list_of = |c: &RouteCache| {
            let mut seen: Vec<u16> = (0..5u16)
                .filter(|t| {
                    // Probe presence via best() after slashing everything else.
                    let _ = &credits;
                    c.routes
                        .get(&ip(9))
                        .map(|l| l.iter().any(|r| r.relays == vec![ip(10 + t)]))
                        .unwrap_or(false)
                })
                .collect();
            seen.sort_unstable();
            seen
        };
        // The two oldest (t=0, t=1) were evicted; exactly 3 remain.
        assert_eq!(list_of(&c), vec![2, 3, 4]);
        assert_eq!(c.routes.get(&ip(9)).unwrap().len(), 3);
        // Re-running the same insert sequence reproduces the same state.
        let mut c2 = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 3, 16);
        for t in 0..5u64 {
            c2.insert(ip(9), route(vec![ip(10 + t as u16)], t * 1_000));
        }
        assert_eq!(list_of(&c2), vec![2, 3, 4]);
    }

    #[test]
    fn per_dest_cap_replacement_does_not_evict() {
        // Re-inserting the same relay list is a replacement, not growth:
        // it must not push out an unrelated route.
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 2, 16);
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(2)], 10));
        c.insert(ip(9), route(vec![ip(1)], 20)); // refresh, not insert
        let list = c.routes.get(&ip(9)).unwrap();
        assert_eq!(list.len(), 2);
        assert!(list.iter().any(|r| r.relays == vec![ip(2)]));
    }

    #[test]
    fn dest_cap_evicts_stalest_destination() {
        let mut c = RouteCache::with_caps(DEFAULT_ROUTE_TTL, 4, 2);
        c.insert(ip(1), route(vec![ip(11)], 100));
        c.insert(ip(2), route(vec![ip(12)], 200));
        // Third destination: ip(1) holds the oldest newest-route → evicted.
        c.insert(ip(3), route(vec![ip(13)], 300));
        assert_eq!(c.len(), 2);
        assert!(!c.routes.contains_key(&ip(1)));
        assert!(c.routes.contains_key(&ip(2)));
        assert!(c.routes.contains_key(&ip(3)));
        // A refreshed destination survives the next round.
        c.insert(ip(2), route(vec![ip(14)], 400));
        c.insert(ip(4), route(vec![ip(15)], 500));
        assert!(c.routes.contains_key(&ip(2)), "refreshed dest must survive");
        assert!(!c.routes.contains_key(&ip(3)));
    }

    #[test]
    fn creppable_requires_d_proof() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.creppable(&ip(9), SimTime(0)).is_none());
    }
}
