//! DSR route cache with credit-aware selection.
//!
//! A cached route stores the *relay* list only (the endpoints are
//! implicit: this node and the destination). Routes this node discovered
//! itself also keep the destination's RREP proof so they can be served
//! to other nodes as CREPs (Section 3.3); routes learned from a CREP
//! cannot (we hold no destination signature binding them to a request of
//! ours to hand out).

use crate::credit::CreditManager;
use manet_sim::{SimDuration, SimTime};
use manet_wire::{IdentityProof, Ipv6Addr, RouteRecord, Seq};
use std::collections::HashMap;

/// Default route lifetime.
pub const DEFAULT_ROUTE_TTL: SimDuration = SimDuration(60_000_000); // 60 s

/// One cached route to some destination.
#[derive(Clone, Debug)]
pub struct CachedRoute {
    /// Intermediate hops, source side first (may be empty: direct).
    pub relays: Vec<Ipv6Addr>,
    /// `(seq, D's RREP proof)` if we discovered this route ourselves —
    /// the material a CREP hands to the next requester.
    pub d_proof: Option<(Seq, IdentityProof)>,
    pub learned_at: SimTime,
}

impl CachedRoute {
    /// Full forwarding path `[src, relays…, dst]`.
    pub fn full_path(&self, src: Ipv6Addr, dst: Ipv6Addr) -> RouteRecord {
        let mut v = Vec::with_capacity(self.relays.len() + 2);
        v.push(src);
        v.extend_from_slice(&self.relays);
        v.push(dst);
        RouteRecord(v)
    }
}

/// Per-node route cache.
#[derive(Debug)]
pub struct RouteCache {
    ttl: SimDuration,
    routes: HashMap<Ipv6Addr, Vec<CachedRoute>>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(DEFAULT_ROUTE_TTL)
    }
}

impl RouteCache {
    pub fn new(ttl: SimDuration) -> Self {
        RouteCache {
            ttl,
            routes: HashMap::new(),
        }
    }

    /// Insert a route to `dst`, replacing an identical relay list.
    pub fn insert(&mut self, dst: Ipv6Addr, route: CachedRoute) {
        let list = self.routes.entry(dst).or_default();
        list.retain(|r| r.relays != route.relays);
        list.push(route);
    }

    fn fresh(&self, r: &CachedRoute, now: SimTime) -> bool {
        now.as_micros().saturating_sub(r.learned_at.as_micros()) <= self.ttl.as_micros()
    }

    /// Best fresh route to `dst`: avoided routes (credit floor) are
    /// filtered out when credits are enabled, then routes are ranked by
    /// highest minimum-credit score, shortest first on ties.
    pub fn best(
        &self,
        dst: &Ipv6Addr,
        credits: &CreditManager,
        now: SimTime,
    ) -> Option<&CachedRoute> {
        let list = self.routes.get(dst)?;
        list.iter()
            .filter(|r| self.fresh(r, now))
            .filter(|r| !credits.route_avoided(&r.relays))
            .max_by(|a, b| {
                let (sa, sb) = if credits.enabled() {
                    (credits.route_score(&a.relays), credits.route_score(&b.relays))
                } else {
                    (0, 0)
                };
                sa.cmp(&sb)
                    .then(b.relays.len().cmp(&a.relays.len())) // shorter wins
            })
    }

    /// A fresh self-discovered route to `dst` usable for a CREP answer.
    pub fn creppable(&self, dst: &Ipv6Addr, now: SimTime) -> Option<&CachedRoute> {
        self.routes.get(dst)?.iter().find(|r| {
            self.fresh(r, now) && r.d_proof.is_some()
        })
    }

    /// Remove every route (to any destination) that uses the directed
    /// link `from → to`, where `me` is this node's address (the implicit
    /// path head). Returns how many routes were dropped.
    pub fn remove_link(&mut self, me: Ipv6Addr, from: Ipv6Addr, to: Ipv6Addr) -> usize {
        let mut dropped = 0;
        for (dst, list) in self.routes.iter_mut() {
            list.retain(|r| {
                let path = r.full_path(me, *dst);
                let uses = path.0.windows(2).any(|w| w[0] == from && w[1] == to);
                if uses {
                    dropped += 1;
                }
                !uses
            });
        }
        self.routes.retain(|_, v| !v.is_empty());
        dropped
    }

    /// Drop all routes to `dst`.
    pub fn remove_dest(&mut self, dst: &Ipv6Addr) {
        self.routes.remove(dst);
    }

    /// Number of destinations with at least one cached route.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreditConfig;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn route(relays: Vec<Ipv6Addr>, at: u64) -> CachedRoute {
        CachedRoute {
            relays,
            d_proof: None,
            learned_at: SimTime(at),
        }
    }

    #[test]
    fn insert_and_best() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        let best = c.best(&ip(9), &credits, SimTime(0)).unwrap();
        assert_eq!(best.relays, vec![ip(1), ip(2)]);
        assert_eq!(
            best.full_path(ip(100), ip(9)).0,
            vec![ip(100), ip(1), ip(2), ip(9)]
        );
    }

    #[test]
    fn shorter_route_wins_on_equal_credit() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0));
        c.insert(ip(9), route(vec![ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
    }

    #[test]
    fn higher_min_credit_beats_shorter() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.reward_route(&[ip(1), ip(2)]);
        credits.reward_route(&[ip(1), ip(2)]);
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // min credit 2
        c.insert(ip(9), route(vec![ip(3)], 0)); // min credit 0
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(1), ip(2)]
        );
    }

    #[test]
    fn avoided_routes_filtered() {
        let mut c = RouteCache::default();
        let mut credits = CreditManager::new(CreditConfig::default());
        credits.slash(&ip(1));
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(2), ip(3)], 0));
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(2), ip(3)]
        );
        // When every route is avoided, none is returned (forces rediscovery).
        credits.slash(&ip(2));
        assert!(c.best(&ip(9), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn expired_routes_filtered() {
        let mut c = RouteCache::new(SimDuration::from_secs(1));
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.best(&ip(9), &credits, SimTime(999_999)).is_some());
        assert!(c.best(&ip(9), &credits, SimTime(1_000_001)).is_none());
    }

    #[test]
    fn remove_link_drops_only_affected_routes() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1), ip(2)], 0)); // uses 1→2
        c.insert(ip(9), route(vec![ip(3)], 0));
        c.insert(ip(8), route(vec![ip(1), ip(2), ip(4)], 0)); // uses 1→2
        let dropped = c.remove_link(ip(100), ip(1), ip(2));
        assert_eq!(dropped, 2);
        assert_eq!(
            c.best(&ip(9), &credits, SimTime(0)).unwrap().relays,
            vec![ip(3)]
        );
        assert!(c.best(&ip(8), &credits, SimTime(0)).is_none());
    }

    #[test]
    fn remove_link_covers_first_and_last_hop() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link me→1 (first hop).
        assert_eq!(c.remove_link(ip(100), ip(100), ip(1)), 1);
        c.insert(ip(9), route(vec![ip(1)], 0));
        // Link 1→9 (last hop).
        assert_eq!(c.remove_link(ip(100), ip(1), ip(9)), 1);
    }

    #[test]
    fn duplicate_relay_lists_replace() {
        let mut c = RouteCache::default();
        let credits = CreditManager::new(CreditConfig::default());
        c.insert(ip(9), route(vec![ip(1)], 0));
        c.insert(ip(9), route(vec![ip(1)], 5_000_000));
        let best = c.best(&ip(9), &credits, SimTime(5_000_000)).unwrap();
        assert_eq!(best.learned_at, SimTime(5_000_000));
    }

    #[test]
    fn creppable_requires_d_proof() {
        let mut c = RouteCache::default();
        c.insert(ip(9), route(vec![ip(1)], 0));
        assert!(c.creppable(&ip(9), SimTime(0)).is_none());
    }
}
