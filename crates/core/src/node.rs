//! The secure MANET node: CGA identity, secure DAD bootstrap, secure DSR
//! routing with credits — the paper's Section 3 in one `Protocol`
//! implementation.
//!
//! One struct covers every role. A node constructed with
//! [`SecureNode::new_dns`] additionally runs the DNS server state
//! (Section 3.2); a node constructed with a non-default
//! [`crate::config::Behavior`] misbehaves in the configured ways
//! (Section 4's attacker models). Keeping attackers inside the same
//! implementation guarantees they speak byte-identical wire formats —
//! their packets are rejected by *cryptography*, not by accidental
//! incompatibility.

use crate::config::{Behavior, ProtocolConfig};
use crate::credit::CreditManager;
use crate::dns::DnsState;
use crate::envelope::Envelope;
use crate::identity::{verify_known_key, verify_proof, HostIdentity};
use crate::neighbor::NeighborCache;
use crate::routecache::{CachedRoute, RouteCache};
use crate::stats::NodeStats;
use manet_crypto::PublicKey;
use manet_sim::{Ctx, Dir, NodeId, Protocol, SimTime};
use manet_wire::{
    sigdata, Ack, Areq, Arep, Challenge, Crep, Data, DnsQuery, DnsReply, DomainName, Drep,
    IpChangeChallenge, IpChangeProof, IpChangeRequest, IpChangeResult, Ipv6Addr,
    Message, Rerr, RouteRecord, Rrep, Rreq, SecureRouteRecord, Seq, SrrEntry, DNS_WELL_KNOWN,
    UNSPECIFIED,
};
use rand::Rng;
use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};

// Timer tag layout: kind in the top byte, payload below.
const TAG_KIND_MASK: u64 = 0xff << 56;
const TAG_DAD: u64 = 1 << 56;
const TAG_RREQ: u64 = 2 << 56;
const TAG_ACK: u64 = 3 << 56;
const TAG_DNS_PENDING: u64 = 4 << 56;
const TAG_DAD_PROBE: u64 = 5 << 56;
const TAG_ROUTE_PROBE: u64 = 6 << 56;

/// Bootstrap state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    /// Waiting for `on_start`.
    Boot,
    /// Flooded an AREQ, waiting out the DAD window.
    Dad { seq: Seq, ch: Challenge },
    /// Address confirmed; fully operational.
    Ready,
}

/// An outstanding route discovery.
#[derive(Debug)]
struct PendingRreq {
    seq: Seq,
    attempts: u32,
    started: SimTime,
}

/// A data packet awaiting its end-to-end ACK.
#[derive(Debug)]
struct PendingAck {
    dip: Ipv6Addr,
    payload: Vec<u8>,
    relays: Vec<Ipv6Addr>,
    retries: u32,
    first_sent: SimTime,
}

/// Work queued until a route to `dest` exists.
#[derive(Debug)]
enum Queued {
    Data { seq: Seq, payload: Vec<u8> },
    DnsQuery { qname: DomainName, ch: Challenge },
    ArepWarning { arep: Arep },
    IpChangeRequest { dn: DomainName },
}

/// An outstanding route-integrity probe (Section 3.4).
#[derive(Debug)]
struct PendingProbe {
    dip: Ipv6Addr,
    /// Hops expected to acknowledge: the relays, then the destination.
    expected: Vec<Ipv6Addr>,
    acked: HashSet<Ipv6Addr>,
}

/// State of an in-flight IP change (Section 3.2).
#[derive(Debug)]
struct PendingIpChange {
    dn: DomainName,
    old_rn: u64,
    new_rn: u64,
    old_ip: Ipv6Addr,
    new_ip: Ipv6Addr,
    /// Challenge received from the DNS (None until the challenge arrives).
    ch: Option<Challenge>,
}

/// The secure node.
pub struct SecureNode {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) ident: HostIdentity,
    pub(crate) dns_pk: PublicKey,
    /// Domain name to register during bootstrap, if any.
    pub(crate) desired_dn: Option<DomainName>,
    pub(crate) behavior: Behavior,
    pub(crate) dns: Option<DnsState>,

    state: NodeState,
    next_seq: u64,
    pub(crate) neighbors: NeighborCache,
    pub(crate) route_cache: RouteCache,
    pub(crate) credits: CreditManager,
    pub(crate) stats: NodeStats,

    /// Flood dedup for AREQs. The challenge is part of the key: `seq` is
    /// only unique *per initiator*, and the interesting DAD case is two
    /// initiators claiming the same SIP — their floods must not collapse.
    seen_areqs: HashSet<(Ipv6Addr, u64, u64)>,
    /// `(seq, ch)` of every AREQ we ourselves flooded, so a late echo of
    /// our own probe is never mistaken for a foreign claim on our address.
    my_dad_probes: HashSet<(u64, u64)>,
    seen_rreqs: HashSet<(Ipv6Addr, u64)>,
    /// As destination: how many copies of each RREQ we already answered
    /// (up to `cfg.rrep_multi` for route diversity).
    answered_rreqs: HashMap<(Ipv6Addr, u64), u32>,
    /// Recently satisfied discoveries, so late extra RREPs for the same
    /// sequence can still be cached as alternate routes.
    recent_rreqs: HashMap<Ipv6Addr, (Seq, SimTime)>,
    pending_rreqs: HashMap<Ipv6Addr, PendingRreq>,
    pending_acks: HashMap<u64, PendingAck>,
    send_buffer: VecDeque<(Ipv6Addr, Queued)>,
    /// Challenges of our outstanding DNS resolutions, by name.
    pending_resolves: HashMap<DomainName, Challenge>,
    pending_ip_change: Option<PendingIpChange>,
    /// Route probes awaiting per-hop acks, by probe sequence number.
    pending_probes: HashMap<u64, PendingProbe>,
    /// Consecutive end-to-end ack timeouts per destination (probe trigger).
    consecutive_timeouts: HashMap<Ipv6Addr, u32>,

    /// Probe-retransmission timers of the current DAD attempt, cancelled
    /// when the attempt restarts.
    dad_probe_timers: Vec<manet_sim::TimerHandle>,

    /// Replay attacker's capture buffers.
    observed_areps: Vec<Arep>,
    observed_rreps: Vec<Rrep>,
}

impl SecureNode {
    /// An ordinary (honest) host. `dns_pk` is the one piece of
    /// pre-configuration the paper allows: "a host only needs to know the
    /// public key of the DNS server prior to entering the MANET".
    pub fn new<R: Rng>(
        cfg: ProtocolConfig,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        rng: &mut R,
    ) -> Self {
        Self::with_behavior(cfg, dns_pk, desired_dn, Behavior::default(), rng)
    }

    /// A host with attacker switches.
    pub fn with_behavior<R: Rng>(
        cfg: ProtocolConfig,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
        rng: &mut R,
    ) -> Self {
        let ident = HostIdentity::generate(cfg.key_bits, rng);
        Self::assemble(cfg, ident, dns_pk, desired_dn, behavior, None)
    }

    /// A host with a caller-supplied identity. This is how tests inject
    /// address collisions (two hosts sharing a key pair and `rn` generate
    /// the same CGA) and how a deployment would load a persisted key.
    pub fn with_identity(
        cfg: ProtocolConfig,
        ident: HostIdentity,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
    ) -> Self {
        Self::assemble(cfg, ident, dns_pk, desired_dn, behavior, None)
    }

    /// The DNS server node. Its identity *is* the DNS key pair; its
    /// public half must be handed to every other node. `pre_registered`
    /// holds the permanent (name, address) entries established "before
    /// the network is formed".
    pub fn new_dns<R: Rng>(
        cfg: ProtocolConfig,
        pre_registered: Vec<(DomainName, Ipv6Addr)>,
        rng: &mut R,
    ) -> Self {
        let keypair = manet_crypto::KeyPair::generate(cfg.key_bits, rng);
        let ident = HostIdentity::from_keypair(keypair, rng);
        let dns_pk = ident.public().clone();
        Self::assemble(
            cfg,
            ident,
            dns_pk,
            None,
            Behavior::default(),
            Some(DnsState::new(pre_registered)),
        )
    }

    fn assemble(
        cfg: ProtocolConfig,
        ident: HostIdentity,
        dns_pk: PublicKey,
        desired_dn: Option<DomainName>,
        behavior: Behavior,
        dns: Option<DnsState>,
    ) -> Self {
        let credits = CreditManager::new(cfg.credit.clone());
        let route_cache = RouteCache::new(cfg.route_ttl);
        SecureNode {
            cfg,
            ident,
            dns_pk,
            desired_dn,
            behavior,
            dns,
            state: NodeState::Boot,
            next_seq: 1,
            neighbors: NeighborCache::default(),
            route_cache,
            credits,
            stats: NodeStats::default(),
            seen_areqs: HashSet::new(),
            my_dad_probes: HashSet::new(),
            seen_rreqs: HashSet::new(),
            answered_rreqs: HashMap::new(),
            recent_rreqs: HashMap::new(),
            pending_rreqs: HashMap::new(),
            pending_acks: HashMap::new(),
            send_buffer: VecDeque::new(),
            pending_resolves: HashMap::new(),
            pending_ip_change: None,
            pending_probes: HashMap::new(),
            consecutive_timeouts: HashMap::new(),
            dad_probe_timers: Vec::new(),
            observed_areps: Vec::new(),
            observed_rreps: Vec::new(),
        }
    }

    // --- public accessors -------------------------------------------------

    /// Current IPv6 address (candidate until [`Self::is_ready`]).
    pub fn ip(&self) -> Ipv6Addr {
        self.ident.ip()
    }

    /// The public key behind this node's CGA.
    pub fn public_key(&self) -> &PublicKey {
        self.ident.public()
    }

    /// Address confirmed and node operational?
    pub fn is_ready(&self) -> bool {
        self.state == NodeState::Ready
    }

    /// Is this node the DNS server?
    pub fn is_dns(&self) -> bool {
        self.dns.is_some()
    }

    /// Per-node statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The credit table (Section 3.4), for inspection.
    pub fn credits(&self) -> &CreditManager {
        &self.credits
    }

    /// The DNS server state, if this node is the DNS.
    pub fn dns_state(&self) -> Option<&DnsState> {
        self.dns.as_ref()
    }

    /// Number of destinations with a cached route.
    pub fn cached_destinations(&self) -> usize {
        self.route_cache.len()
    }

    /// The relay list of the best cached route to `dip` at time `now`
    /// (empty = direct), if any survives credit filtering.
    pub fn cached_route(&self, dip: &Ipv6Addr, now: SimTime) -> Option<Vec<Ipv6Addr>> {
        self.route_cache
            .best(dip, &self.credits, now)
            .map(|r| r.relays.clone())
    }

    /// Test-support: transmit an arbitrary routed message. Integration
    /// tests use this to inject forged or malformed control traffic that
    /// the honest API would never produce.
    #[doc(hidden)]
    pub fn inject_routed(&mut self, ctx: &mut Ctx, path: RouteRecord, msg: Message) -> bool {
        self.send_routed(ctx, path, msg)
    }

    // --- application API (call via `Engine::with_protocol`) ---------------

    /// Send `payload` to `dip`, discovering a route if needed.
    pub fn send_data(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, payload: Vec<u8>) {
        self.stats.data_sent += 1;
        ctx.count("app.data_sent", 1);
        let seq = self.alloc_seq();
        if self.state != NodeState::Ready {
            self.enqueue(ctx, dip, Queued::Data { seq, payload });
            return;
        }
        if !self.try_send_data(ctx, seq, dip, payload.clone(), 0) {
            self.enqueue(ctx, dip, Queued::Data { seq, payload });
            self.ensure_route(ctx, dip);
        }
    }

    /// Securely resolve `qname` through the DNS (Section 3.2). The signed
    /// answer lands in [`NodeStats::resolved`].
    pub fn resolve(&mut self, ctx: &mut Ctx, qname: DomainName) {
        let ch = Challenge(ctx.rng().gen());
        self.pending_resolves.insert(qname.clone(), ch);
        let dns_ip = DNS_WELL_KNOWN[0];
        if self.state == NodeState::Ready {
            if let Some(path) = self.path_to(ctx.now(), &dns_ip) {
                let msg = Message::DnsQuery(DnsQuery {
                    requester: self.ident.ip(),
                    qname,
                    ch,
                    route: path.clone(),
                });
                self.send_routed(ctx, path, msg);
                return;
            }
        }
        self.enqueue(ctx, dns_ip, Queued::DnsQuery { qname, ch });
        if self.state == NodeState::Ready {
            self.ensure_route(ctx, dns_ip);
        }
    }

    /// Start the Section 3.2 IP-change flow: move our DNS name to the
    /// CGA generated by `new_rn` (same key pair).
    pub fn request_ip_change(&mut self, ctx: &mut Ctx, new_rn: u64) {
        let Some(dn) = self.desired_dn.clone() else {
            return; // no registered name to move
        };
        let old_ip = self.ident.ip();
        let new_ip = manet_wire::cga::generate(self.ident.public(), new_rn);
        self.pending_ip_change = Some(PendingIpChange {
            dn: dn.clone(),
            old_rn: self.ident.rn(),
            new_rn,
            old_ip,
            new_ip,
            ch: None,
        });
        let dns_ip = DNS_WELL_KNOWN[0];
        if self.state == NodeState::Ready {
            if let Some(path) = self.path_to(ctx.now(), &dns_ip) {
                let msg = Message::IpChangeRequest(IpChangeRequest {
                    dn,
                    old_ip,
                    new_ip,
                    route: path.clone(),
                });
                self.send_routed(ctx, path, msg);
                return;
            }
            self.ensure_route(ctx, dns_ip);
        }
        self.enqueue(ctx, dns_ip, Queued::IpChangeRequest { dn });
    }

    // --- internals ---------------------------------------------------------

    fn alloc_seq(&mut self) -> Seq {
        let s = Seq(self.next_seq);
        self.next_seq += 1;
        s
    }

    fn is_my_addr(&self, ip: &Ipv6Addr) -> bool {
        *ip == self.ident.ip() || (self.dns.is_some() && ip.is_dns_well_known())
    }

    /// An impersonator also listens on its claimed address — the point of
    /// the CGA checks is that nothing is ever *sent* there, because its
    /// forged replies are rejected upstream.
    fn accepts_addr(&self, ip: &Ipv6Addr) -> bool {
        self.is_my_addr(ip) || self.behavior.impersonate == Some(*ip)
    }

    fn enqueue(&mut self, ctx: &mut Ctx, dest: Ipv6Addr, q: Queued) {
        if self.send_buffer.len() >= self.cfg.max_send_buffer {
            // Oldest-first drop; count the casualty if it was data.
            if let Some((_, Queued::Data { .. })) = self.send_buffer.pop_front() {
                self.stats.data_failed += 1;
                ctx.count("app.data_failed", 1);
            }
        }
        self.send_buffer.push_back((dest, q));
    }

    /// Full forwarding path to `dip` from the route cache.
    fn path_to(&self, now: SimTime, dip: &Ipv6Addr) -> Option<RouteRecord> {
        let r = self.route_cache.best(dip, &self.credits, now)?;
        Some(r.full_path(self.ident.ip(), *dip))
    }

    /// The paper's footnote: the last hop of an AREP (or DREP) toward a
    /// mid-DAD host must be a link broadcast — the claimed address is not
    /// yet legal, and during a genuine collision it is *ambiguous* (the
    /// owner's transmissions map it to the owner in neighbor caches, so a
    /// unicast would deliver the collision notice back to the owner).
    fn final_hop_must_broadcast(msg: &Message, final_dst: &Ipv6Addr) -> bool {
        match msg {
            Message::Arep(a) => a.sip == *final_dst,
            Message::Drep(d) => d.sip == *final_dst,
            _ => false,
        }
    }

    /// Transmit `msg` along `path` (this node must be `path[0]`). Returns
    /// false when the first hop is unresolvable and no broadcast fallback
    /// applies.
    pub(crate) fn send_routed(&mut self, ctx: &mut Ctx, path: RouteRecord, msg: Message) -> bool {
        debug_assert!(path.len() >= 2);
        let next = path.0[1];
        let at_final = path.len() == 2;
        if at_final && Self::final_hop_must_broadcast(&msg, &next) {
            let env = Envelope::routed(self.tx_src_ip(), path, msg);
            self.tx(ctx, None, env);
            return true;
        }
        let env = Envelope::routed(self.tx_src_ip(), path.clone(), msg);
        let kind = env.msg.kind();
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
            return true;
        }
        // Unknown next hop: legal only for a final hop to an address-less
        // (mid-DAD) or silent host — fall back to link broadcast.
        if at_final {
            self.tx(ctx, None, env);
            return true;
        }
        ctx.count("route.first_hop_unresolved", 1);
        ctx.trace(Dir::Drop, "ROUTE", format!("{kind}: first hop {next} unresolved"));
        false
    }

    /// Source address for outgoing frames (`::` while in DAD, like real
    /// IPv6 DAD probes).
    fn tx_src_ip(&self) -> Ipv6Addr {
        match self.state {
            NodeState::Ready => self.ident.ip(),
            _ => UNSPECIFIED,
        }
    }

    fn tx(&mut self, ctx: &mut Ctx, to: Option<NodeId>, env: Envelope) {
        let kind = env.msg.kind();
        let bytes = env.encode();
        ctx.count("ctl.tx_msgs", 1);
        ctx.count("ctl.tx_bytes", bytes.len() as u64);
        if env.msg.is_table1_control() {
            ctx.count("ctl.table1_bytes", bytes.len() as u64);
        }
        if !matches!(env.msg, Message::Data(_) | Message::Ack(_)) {
            ctx.count("ctl.routing_bytes", bytes.len() as u64);
        }
        if ctx.tracing() {
            let detail = match &env.source_route {
                Some(p) => format!("→{} ({} hops)", p.0.last().expect("nonempty"), p.len() - 1),
                None => "flood".to_owned(),
            };
            ctx.trace(Dir::Tx, kind, detail);
        }
        match to {
            Some(node) => ctx.unicast(node, bytes),
            None => ctx.broadcast(bytes),
        }
    }

    fn begin_dad(&mut self, ctx: &mut Ctx) {
        self.stats.dad_attempts += 1;
        ctx.count("dad.attempts", 1);
        // A restarted attempt invalidates the previous one's probe plan.
        for h in self.dad_probe_timers.drain(..) {
            ctx.cancel_timer(h);
        }
        let seq = self.alloc_seq();
        let ch = Challenge(ctx.rng().gen());
        self.state = NodeState::Dad { seq, ch };
        self.send_dad_probe(ctx, seq, ch);
        // Retransmit the probe across the window so a single lost
        // broadcast cannot hide a duplicate.
        let probes = self.cfg.dad_probes.max(1);
        for i in 1..probes {
            let delay = manet_sim::SimDuration::from_micros(
                self.cfg.dad_timeout.as_micros() * i as u64 / probes as u64,
            );
            let h = ctx.set_timer(delay, TAG_DAD_PROBE);
            self.dad_probe_timers.push(h);
        }
        ctx.set_timer(self.cfg.dad_timeout, TAG_DAD);
    }

    /// One AREQ flood of the current DAD attempt (fresh `seq`, so relays
    /// do not dedup the retransmission; same `ch`, which identifies the
    /// attempt to verifiers).
    fn send_dad_probe(&mut self, ctx: &mut Ctx, seq: Seq, ch: Challenge) {
        self.my_dad_probes.insert((seq.0, ch.0));
        let areq = Areq {
            sip: self.ident.ip(),
            seq,
            dn: self.desired_dn.clone(),
            ch,
            rr: RouteRecord::new(),
        };
        self.stats.areq_sent += 1;
        let env = Envelope::broadcast(UNSPECIFIED, Message::Areq(areq));
        self.tx(ctx, None, env);
    }

    fn on_dad_probe_timer(&mut self, ctx: &mut Ctx) {
        if let NodeState::Dad { ch, .. } = self.state {
            let seq = self.alloc_seq();
            self.send_dad_probe(ctx, seq, ch);
        }
    }

    fn dad_confirmed(&mut self, ctx: &mut Ctx) {
        self.state = NodeState::Ready;
        self.stats.joined_at = Some(ctx.now());
        ctx.count("dad.confirmed", 1);
        ctx.sample("dad.latency_s", ctx.now().as_secs_f64());
        ctx.trace(Dir::Note, "DAD", format!("address {} confirmed", self.ident.ip()));
        // Kick route discovery for everything queued while bootstrapping.
        let dests: HashSet<Ipv6Addr> = self.send_buffer.iter().map(|(d, _)| *d).collect();
        for d in dests {
            self.ensure_route(ctx, d);
        }
    }

    /// Start (or keep) a route discovery toward `dip`.
    pub(crate) fn ensure_route(&mut self, ctx: &mut Ctx, dip: Ipv6Addr) {
        if self.state != NodeState::Ready || self.pending_rreqs.contains_key(&dip) {
            return;
        }
        let seq = self.alloc_seq();
        self.pending_rreqs.insert(
            dip,
            PendingRreq {
                seq,
                attempts: 1,
                started: ctx.now(),
            },
        );
        self.broadcast_rreq(ctx, dip, seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | seq.0);
    }

    fn broadcast_rreq(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, seq: Seq) {
        let sip = self.ident.ip();
        let src_proof = self.ident.prove(&sigdata::rreq_src(&sip, seq));
        let rreq = Rreq {
            sip,
            dip,
            seq,
            srr: SecureRouteRecord::new(),
            src_proof,
        };
        self.stats.rreq_sent += 1;
        ctx.count("route.rreq_originated", 1);
        let env = Envelope::broadcast(sip, Message::Rreq(rreq));
        self.tx(ctx, None, env);
    }

    fn try_send_data(
        &mut self,
        ctx: &mut Ctx,
        seq: Seq,
        dip: Ipv6Addr,
        payload: Vec<u8>,
        retries: u32,
    ) -> bool {
        let Some(path) = self.path_to(ctx.now(), &dip) else {
            return false;
        };
        let relays = path.0[1..path.len() - 1].to_vec();
        let msg = Message::Data(Data {
            sip: self.ident.ip(),
            dip,
            seq,
            route: path.clone(),
            payload: payload.clone(),
        });
        if !self.send_routed(ctx, path, msg) {
            // First hop gone: scrub the stale route and report failure so
            // the caller can rediscover.
            let me = self.ident.ip();
            self.route_cache.remove_link(me, me, dip);
            return false;
        }
        self.pending_acks.insert(
            seq.0,
            PendingAck {
                dip,
                payload,
                relays,
                retries,
                first_sent: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.ack_timeout, TAG_ACK | seq.0);
        true
    }

    /// Flush queued work for `dest` after a route appeared.
    fn flush_buffer(&mut self, ctx: &mut Ctx, dest: Ipv6Addr) {
        let mut remaining = VecDeque::new();
        let buffer = std::mem::take(&mut self.send_buffer);
        for (d, q) in buffer {
            if d != dest {
                remaining.push_back((d, q));
                continue;
            }
            match q {
                Queued::Data { seq, payload } => {
                    if !self.try_send_data(ctx, seq, d, payload.clone(), 0) {
                        remaining.push_back((d, Queued::Data { seq, payload }));
                    }
                }
                Queued::DnsQuery { qname, ch } => {
                    if let Some(path) = self.path_to(ctx.now(), &d) {
                        let msg = Message::DnsQuery(DnsQuery {
                            requester: self.ident.ip(),
                            qname,
                            ch,
                            route: path.clone(),
                        });
                        self.send_routed(ctx, path, msg);
                    } else {
                        remaining.push_back((d, Queued::DnsQuery { qname, ch }));
                    }
                }
                Queued::ArepWarning { arep } => {
                    if let Some(path) = self.path_to(ctx.now(), &d) {
                        self.send_routed(ctx, path, Message::Arep(arep));
                    } else {
                        remaining.push_back((d, Queued::ArepWarning { arep }));
                    }
                }
                Queued::IpChangeRequest { dn } => {
                    if let (Some(pending), Some(path)) =
                        (&self.pending_ip_change, self.path_to(ctx.now(), &d))
                    {
                        let msg = Message::IpChangeRequest(IpChangeRequest {
                            dn,
                            old_ip: pending.old_ip,
                            new_ip: pending.new_ip,
                            route: path.clone(),
                        });
                        self.send_routed(ctx, path, msg);
                    }
                }
            }
        }
        self.send_buffer = remaining;
    }

    /// Fail everything queued for `dest` (route discovery exhausted).
    fn fail_buffer(&mut self, ctx: &mut Ctx, dest: Ipv6Addr) {
        let before = self.send_buffer.len();
        self.send_buffer.retain(|(d, q)| {
            if *d == dest {
                if matches!(q, Queued::Data { .. }) {
                    // counted below; retain() can't borrow self mutably
                }
                false
            } else {
                true
            }
        });
        let dropped = (before - self.send_buffer.len()) as u64;
        if dropped > 0 {
            self.stats.data_failed += dropped;
            ctx.count("app.data_failed", dropped);
            ctx.count("route.discovery_failed", 1);
        }
    }

    // --- flood handling -----------------------------------------------------

    fn handle_areq(&mut self, ctx: &mut Ctx, areq: Areq) {
        if self.my_dad_probes.contains(&(areq.seq.0, areq.ch.0)) {
            return; // an echo of our own probe
        }
        if !self.seen_areqs.insert((areq.sip, areq.seq.0, areq.ch.0)) {
            return;
        }
        if let NodeState::Dad { seq, .. } = self.state {
            // Our own flood coming back — or another joining host; either
            // way a mid-DAD node neither answers nor relays.
            let _ = seq;
            return;
        }
        if self.state != NodeState::Ready {
            return;
        }
        ctx.trace(Dir::Rx, "AREQ", format!("for {} dn={:?}", areq.sip, areq.dn.as_ref().map(|d| d.as_str())));

        // DNS server: name bookkeeping (conflict DREP / pending commit).
        if self.dns.is_some() {
            self.dns_on_areq(ctx, &areq);
        }

        let collision = areq.sip == self.ident.ip();
        if collision || self.behavior.squat_dad {
            if !collision {
                self.stats.atk_forged_arep += 1;
                ctx.count("atk.forged_arep", 1);
            }
            self.send_arep(ctx, &areq);
            if collision {
                self.warn_dns(ctx, &areq);
            }
            // "Every host should … properly rebroadcast the AREQ": the
            // flood continues past the collision holder so the DNS hears
            // the request and holds/cancels the registration.
        }

        // Replay attacker: answer with a previously captured AREP for
        // this address if we have one (its challenge is stale).
        if self.behavior.replay {
            if let Some(old) = self
                .observed_areps
                .iter()
                .find(|a| a.sip == areq.sip)
                .cloned()
            {
                self.stats.atk_replayed += 1;
                ctx.count("atk.replayed_arep", 1);
                let mut path = vec![self.ident.ip()];
                path.extend(areq.rr.reversed().0);
                path.push(areq.sip);
                self.send_routed(ctx, RouteRecord(path), Message::Arep(old));
            }
        }

        // Relay: append our address to the route record and rebroadcast.
        let mut fwd = areq;
        fwd.rr.push(self.ident.ip());
        let env = Envelope::broadcast(self.ident.ip(), Message::Areq(fwd));
        self.tx(ctx, None, env);
    }

    /// Answer an AREQ whose address collides with ours (Section 3.1):
    /// `AREP(SIP, RR, [SIP, ch]RSK, RPK, Rrn)` unicast along the reverse
    /// route record.
    fn send_arep(&mut self, ctx: &mut Ctx, areq: &Areq) {
        let proof = self.ident.prove(&sigdata::arep(&areq.sip, areq.ch));
        let arep = Arep {
            sip: areq.sip,
            rr: areq.rr.clone(),
            proof,
        };
        self.stats.arep_sent += 1;
        ctx.count("dad.arep_sent", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(areq.rr.reversed().0);
        path.push(areq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Arep(arep));
    }

    /// Warn the DNS that `areq.sip` is a duplicate so it never commits a
    /// name for it (Section 3.1). Routed over the normal secure-routing
    /// machinery toward the well-known DNS address.
    fn warn_dns(&mut self, ctx: &mut Ctx, areq: &Areq) {
        if self.dns.is_some() {
            // We *are* the DNS; cancel locally.
            let sip = areq.sip;
            self.dns_cancel_pending(ctx, &sip);
            return;
        }
        let proof = self.ident.prove(&sigdata::arep(&areq.sip, areq.ch));
        let warning = Arep {
            sip: areq.sip,
            rr: RouteRecord::new(),
            proof,
        };
        let dns_ip = DNS_WELL_KNOWN[0];
        if let Some(path) = self.path_to(ctx.now(), &dns_ip) {
            self.send_routed(ctx, path, Message::Arep(warning));
        } else {
            self.enqueue(ctx, dns_ip, Queued::ArepWarning { arep: warning });
            self.ensure_route(ctx, dns_ip);
        }
    }

    fn handle_rreq(&mut self, ctx: &mut Ctx, rreq: Rreq) {
        if self.state != NodeState::Ready {
            return;
        }
        if rreq.sip == self.ident.ip() {
            return; // our own flood echoed back
        }
        ctx.trace(
            Dir::Rx,
            "RREQ",
            format!("{}→{} seq={} hops={}", rreq.sip, rreq.dip, rreq.seq.0, rreq.srr.len()),
        );

        if self.is_my_addr(&rreq.dip) {
            // Answer several copies (arriving over distinct paths) so the
            // source gets route diversity to select among.
            let n = self
                .answered_rreqs
                .entry((rreq.sip, rreq.seq.0))
                .or_insert(0);
            if *n >= self.cfg.rrep_multi {
                return;
            }
            *n += 1;
            self.answer_rreq(ctx, rreq);
            return;
        }
        if !self.seen_rreqs.insert((rreq.sip, rreq.seq.0)) {
            return;
        }

        if self.behavior.forge_rrep {
            self.forge_rrep(ctx, &rreq);
            return; // attracts the route; no honest relaying
        }

        if self.behavior.replay {
            if let Some(old) = self
                .observed_rreps
                .iter()
                .find(|r| r.dip == rreq.dip)
                .cloned()
            {
                // Splice the captured proof onto the new request: the
                // destination signature covers (old sip, old seq, old rr)
                // so the verifier must reject it.
                self.stats.atk_replayed += 1;
                ctx.count("atk.replayed_rrep", 1);
                let forged = Rrep {
                    sip: rreq.sip,
                    dip: old.dip,
                    seq: rreq.seq,
                    rr: old.rr.clone(),
                    proof: old.proof.clone(),
                };
                let mut path = vec![self.ident.ip()];
                path.extend(rreq.srr.to_route_record().reversed().0);
                path.push(rreq.sip);
                self.send_routed(ctx, RouteRecord(path), Message::Rrep(forged));
            }
        }

        // Cached-route reply (Section 3.3, CREP) — only from routes we
        // discovered ourselves (we hold D's signed RREP for them).
        if self.cfg.crep_enabled {
            if let Some(cached) = self.route_cache.creppable(&rreq.dip, ctx.now()) {
                let cached = cached.clone();
                self.send_crep(ctx, &rreq, &cached);
                return;
            }
        }

        // Relay: sign and append our identity block to the SRR.
        let mut fwd = rreq;
        let entry_proof = self
            .ident
            .prove(&sigdata::srr_hop(&self.ident.ip(), fwd.seq));
        fwd.srr.0.push(SrrEntry {
            ip: self.ident.ip(),
            proof: entry_proof,
        });
        ctx.count("route.rreq_relayed", 1);
        let env = Envelope::broadcast(self.ident.ip(), Message::Rreq(fwd));
        self.tx(ctx, None, env);
    }

    /// We are the destination (or the DNS behind the anycast address):
    /// verify the whole request and answer with a signed RREP.
    fn answer_rreq(&mut self, ctx: &mut Ctx, rreq: Rreq) {
        // Check 1: source validity.
        if verify_proof(
            &rreq.sip,
            &sigdata::rreq_src(&rreq.sip, rreq.seq),
            &rreq.src_proof,
        )
        .is_err()
        {
            self.stats.rejected_rreq += 1;
            ctx.count("sec.rreq_rejected", 1);
            ctx.trace(Dir::Drop, "RREQ", format!("bad source proof from {}", rreq.sip));
            return;
        }
        // Check 2: every intermediate hop's identity.
        if self.cfg.verify_srr {
            for e in &rreq.srr.0 {
                if verify_proof(&e.ip, &sigdata::srr_hop(&e.ip, rreq.seq), &e.proof).is_err() {
                    self.stats.rejected_rreq += 1;
                    ctx.count("sec.rreq_rejected", 1);
                    ctx.trace(Dir::Drop, "RREQ", format!("bad SRR entry for {}", e.ip));
                    return;
                }
            }
        }
        let rr = rreq.srr.to_route_record();
        let payload = sigdata::rrep(&rreq.sip, rreq.seq, &rr);
        let proof = self.ident.prove(&payload);
        let rrep = Rrep {
            sip: rreq.sip,
            dip: rreq.dip,
            seq: rreq.seq,
            rr: rr.clone(),
            proof,
        };
        self.stats.rrep_sent += 1;
        ctx.count("route.rrep_sent", 1);
        let mut path = vec![rreq.dip];
        path.extend(rr.reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Rrep(rrep));
    }

    /// Black-hole route attraction: forge an RREP claiming we are one hop
    /// from the destination. The proof is signed with our own key (we do
    /// not have the destination's), so a verifying source rejects it —
    /// this is exactly the Section 4 argument made executable.
    fn forge_rrep(&mut self, ctx: &mut Ctx, rreq: &Rreq) {
        let mut rr = rreq.srr.to_route_record();
        rr.push(self.ident.ip());
        let payload = sigdata::rrep(&rreq.sip, rreq.seq, &rr);
        let claimed = self.behavior.impersonate.unwrap_or(rreq.dip);
        let proof = self.ident.prove(&payload); // our key ≠ H(...) of `claimed`
        let rrep = Rrep {
            sip: rreq.sip,
            dip: claimed,
            seq: rreq.seq,
            rr: rr.clone(),
            proof,
        };
        self.stats.atk_forged_rrep += 1;
        ctx.count("atk.forged_rrep", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(rreq.srr.to_route_record().reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Rrep(rrep));
    }

    fn send_crep(&mut self, ctx: &mut Ctx, rreq: &Rreq, cached: &CachedRoute) {
        let (orig_seq, d_proof) = cached.d_proof.clone().expect("creppable has proof");
        let rr_s2_to_s = rreq.srr.to_route_record();
        let s_proof = self
            .ident
            .prove(&sigdata::crep_cache_holder(&rreq.sip, rreq.seq, &rr_s2_to_s));
        let crep = Crep {
            s2ip: rreq.sip,
            sip: self.ident.ip(),
            dip: rreq.dip,
            seq2: rreq.seq,
            rr_s2_to_s: rr_s2_to_s.clone(),
            s_proof,
            orig_seq,
            rr_s_to_d: RouteRecord(cached.relays.clone()),
            d_proof,
        };
        self.stats.crep_sent += 1;
        ctx.count("route.crep_sent", 1);
        let mut path = vec![self.ident.ip()];
        path.extend(rr_s2_to_s.reversed().0);
        path.push(rreq.sip);
        self.send_routed(ctx, RouteRecord(path), Message::Crep(crep));
    }

    // --- routed delivery ----------------------------------------------------

    fn deliver_local(&mut self, ctx: &mut Ctx, env: Envelope) {
        let path = env.source_route.clone().unwrap_or_default();
        match env.msg {
            Message::Arep(arep) => self.handle_arep(ctx, arep),
            Message::Drep(drep) => self.handle_drep(ctx, drep),
            Message::Rrep(rrep) => self.handle_rrep(ctx, rrep),
            Message::Crep(crep) => self.handle_crep(ctx, crep),
            Message::Rerr(rerr) => self.handle_rerr(ctx, rerr),
            Message::Data(data) => self.handle_data(ctx, data),
            Message::Ack(ack) => self.handle_ack(ctx, ack),
            Message::Probe(probe) => {
                // We are the probed destination: acknowledge.
                let back: Vec<Ipv6Addr> = probe.route.reversed().0;
                self.send_probe_ack(ctx, &probe, back);
            }
            Message::ProbeAck(ack) => self.handle_probe_ack(ctx, ack),
            Message::DnsQuery(q) => {
                if self.dns.is_some() {
                    self.dns_on_query(ctx, q, &path);
                }
            }
            Message::DnsReply(r) => self.handle_dns_reply(ctx, r),
            Message::IpChangeRequest(r) => {
                if self.dns.is_some() {
                    self.dns_on_ip_change_request(ctx, r, &path);
                }
            }
            Message::IpChangeChallenge(c) => self.handle_ip_change_challenge(ctx, c, &path),
            Message::IpChangeProof(p) => {
                if self.dns.is_some() {
                    self.dns_on_ip_change_proof(ctx, p, &path);
                }
            }
            Message::IpChangeResult(r) => self.handle_ip_change_result(ctx, r),
            // Floods never arrive source-routed; plain-DSR messages are
            // not spoken by secure nodes.
            _ => ctx.count("rx.unexpected_routed", 1),
        }
    }

    fn handle_arep(&mut self, ctx: &mut Ctx, arep: Arep) {
        // DNS warning path (Section 3.1's "unicast an AREP to DNS").
        if self.dns.is_some() && !matches!(self.state, NodeState::Dad { .. }) {
            self.dns_on_warning_arep(ctx, &arep);
            return;
        }
        let NodeState::Dad { ch, .. } = self.state else {
            return;
        };
        if arep.sip != self.ident.ip() {
            return; // not about our candidate
        }
        // The two checks of Section 3.1: CGA ownership of SIP by (RPK,
        // Rrn), and the challenge response under RSK.
        match verify_proof(&arep.sip, &sigdata::arep(&arep.sip, ch), &arep.proof) {
            Ok(()) => {
                self.stats.collisions_detected += 1;
                ctx.count("dad.collisions", 1);
                ctx.trace(Dir::Note, "DAD", "valid AREP: address collision, rerolling rn");
                self.restart_dad(ctx);
            }
            Err(_) => {
                self.stats.rejected_arep += 1;
                ctx.count("sec.arep_rejected", 1);
                ctx.trace(Dir::Drop, "AREP", "invalid proof (squat/replay attempt?)");
            }
        }
    }

    fn restart_dad(&mut self, ctx: &mut Ctx) {
        if self.stats.dad_attempts >= self.cfg.dad_max_attempts {
            ctx.count("dad.gave_up", 1);
            self.state = NodeState::Boot;
            return;
        }
        self.ident.reroll(ctx.rng());
        self.begin_dad(ctx);
    }

    fn handle_drep(&mut self, ctx: &mut Ctx, drep: Drep) {
        let NodeState::Dad { ch, .. } = self.state else {
            return;
        };
        if drep.sip != self.ident.ip() {
            return;
        }
        let Some(dn) = self.desired_dn.clone() else {
            return; // we registered no name; a DREP for us is bogus
        };
        match verify_known_key(&self.dns_pk, &sigdata::drep(&dn, ch), &drep.sig) {
            Ok(()) => {
                self.stats.name_conflicts += 1;
                ctx.count("dad.name_conflicts", 1);
                // First-come-first-serve lost: pick a decorated fallback
                // name and retry the DAD round (Section 3.1).
                let fallback = format!("{}-{}", dn.as_str(), self.stats.dad_attempts + 1);
                self.desired_dn = DomainName::new(&fallback).ok();
                ctx.trace(Dir::Note, "DAD", format!("name conflict; retrying as {fallback}"));
                self.restart_dad(ctx);
            }
            Err(_) => {
                self.stats.rejected_drep += 1;
                ctx.count("sec.drep_rejected", 1);
            }
        }
    }

    fn handle_rrep(&mut self, ctx: &mut Ctx, rrep: Rrep) {
        if rrep.sip != self.ident.ip() {
            return;
        }
        // Match against the outstanding request, or a recently satisfied
        // one (extra RREPs for the same sequence add alternate routes).
        const RECENT_WINDOW_US: u64 = 10_000_000;
        let (expected_seq, pending_started) = match self.pending_rreqs.get(&rrep.dip) {
            Some(p) => (p.seq, Some(p.started)),
            None => match self.recent_rreqs.get(&rrep.dip) {
                Some(&(seq, at))
                    if ctx.now().as_micros().saturating_sub(at.as_micros())
                        <= RECENT_WINDOW_US =>
                {
                    (seq, None)
                }
                _ => return, // nothing outstanding (stale or replayed)
            },
        };
        if expected_seq != rrep.seq {
            self.stats.rejected_rrep += 1;
            ctx.count("sec.rrep_rejected", 1);
            ctx.trace(Dir::Drop, "RREP", "sequence mismatch (replay?)");
            return;
        }
        // Verify the destination's proof over [SIP, seq, RR]. Routes to
        // the DNS anycast address verify against the well-known DNS key
        // (an anycast address is not a CGA); everything else runs the
        // full CGA + signature check.
        let payload = sigdata::rrep(&rrep.sip, rrep.seq, &rrep.rr);
        let ok = if rrep.dip.is_dns_well_known() {
            verify_known_key(&self.dns_pk, &payload, &rrep.proof.sig).is_ok()
        } else {
            verify_proof(&rrep.dip, &payload, &rrep.proof).is_ok()
        };
        if !ok {
            self.stats.rejected_rrep += 1;
            ctx.count("sec.rrep_rejected", 1);
            ctx.trace(Dir::Drop, "RREP", format!("invalid proof for {}", rrep.dip));
            return;
        }
        if let Some(started) = pending_started {
            self.pending_rreqs.remove(&rrep.dip);
            self.recent_rreqs.insert(rrep.dip, (rrep.seq, ctx.now()));
            ctx.sample(
                "route.discovery_latency_s",
                ctx.now().since(started).as_secs_f64(),
            );
            ctx.count("route.discovered", 1);
        } else {
            ctx.count("route.alternate_cached", 1);
        }
        ctx.trace(
            Dir::Note,
            "ROUTE",
            format!("to {} via {} relays", rrep.dip, rrep.rr.len()),
        );
        self.route_cache.insert(
            rrep.dip,
            CachedRoute {
                relays: rrep.rr.0.clone(),
                d_proof: Some((rrep.seq, rrep.proof.clone())),
                learned_at: ctx.now(),
            },
        );
        if self.behavior.replay {
            self.observed_rreps.push(rrep.clone());
            self.observed_rreps.truncate(32);
        }
        self.flush_buffer(ctx, rrep.dip);
    }

    fn handle_crep(&mut self, ctx: &mut Ctx, crep: Crep) {
        if crep.s2ip != self.ident.ip() {
            return;
        }
        let Some(pending) = self.pending_rreqs.get(&crep.dip) else {
            return;
        };
        if pending.seq != crep.seq2 {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            return;
        }
        // Verify the cache holder's identity over [S'IP, seq', RR_{S'→S}].
        let holder_payload =
            sigdata::crep_cache_holder(&crep.s2ip, crep.seq2, &crep.rr_s2_to_s);
        if verify_proof(&crep.sip, &holder_payload, &crep.s_proof).is_err() {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            ctx.trace(Dir::Drop, "CREP", "invalid cache-holder proof");
            return;
        }
        // Verify the destination's original proof over [SIP, seq, RR_{S→D}].
        let d_payload = sigdata::rrep(&crep.sip, crep.orig_seq, &crep.rr_s_to_d);
        let d_ok = if crep.dip.is_dns_well_known() {
            verify_known_key(&self.dns_pk, &d_payload, &crep.d_proof.sig).is_ok()
        } else {
            verify_proof(&crep.dip, &d_payload, &crep.d_proof).is_ok()
        };
        if !d_ok {
            self.stats.rejected_crep += 1;
            ctx.count("sec.crep_rejected", 1);
            ctx.trace(Dir::Drop, "CREP", "invalid destination proof");
            return;
        }
        // Composite route: S' → (relays to S) → S → (S's relays to D) → D.
        let mut relays = crep.rr_s2_to_s.0.clone();
        relays.push(crep.sip);
        relays.extend(crep.rr_s_to_d.0.iter().copied());
        // The composite can double back through us (we may sit on S's
        // cached path to D). The proofs cover the original components, so
        // verification is done; for *forwarding* we shortcut at our last
        // occurrence. DSR's standard cached-reply loop trimming.
        if let Some(pos) = relays.iter().rposition(|r| *r == self.ident.ip()) {
            relays.drain(..=pos);
        }
        let started = pending.started;
        self.pending_rreqs.remove(&crep.dip);
        ctx.sample(
            "route.discovery_latency_s",
            ctx.now().since(started).as_secs_f64(),
        );
        ctx.count("route.discovered_via_crep", 1);
        self.route_cache.insert(
            crep.dip,
            CachedRoute {
                relays,
                d_proof: None, // composite: not servable as a further CREP
                learned_at: ctx.now(),
            },
        );
        self.flush_buffer(ctx, crep.dip);
    }

    fn handle_rerr(&mut self, ctx: &mut Ctx, rerr: Rerr) {
        if verify_proof(&rerr.iip, &sigdata::rerr(&rerr.iip, &rerr.i2ip), &rerr.proof).is_err() {
            self.stats.rejected_rerr += 1;
            ctx.count("sec.rerr_rejected", 1);
            ctx.trace(Dir::Drop, "RERR", format!("invalid proof from {}", rerr.iip));
            return;
        }
        ctx.count("route.rerr_received", 1);
        let me = self.ident.ip();
        self.route_cache.remove_link(me, rerr.iip, rerr.i2ip);
        // Track the reporter; frequent reporters (and their next hops)
        // mark a hostile area (Section 3.4).
        if self.credits.record_rerr(&rerr.iip, &rerr.i2ip) {
            ctx.count("credit.hostile_marked", 1);
            ctx.trace(
                Dir::Note,
                "CREDIT",
                format!("hostile area around {} / {}", rerr.iip, rerr.i2ip),
            );
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx, data: Data) {
        self.stats.data_received += 1;
        ctx.count("app.data_received", 1);
        ctx.sample("app.data_bytes", data.payload.len() as f64);
        // End-to-end acknowledgement drives the credit system.
        let ack = Ack {
            sip: data.sip,
            dip: data.dip,
            seq: data.seq,
            route: data.route.clone(),
        };
        let path = data.route.reversed();
        if path.len() >= 2 {
            self.send_routed(ctx, path, Message::Ack(ack));
        }
    }

    fn handle_ack(&mut self, ctx: &mut Ctx, ack: Ack) {
        let Some(pending) = self.pending_acks.remove(&ack.seq.0) else {
            return;
        };
        self.consecutive_timeouts.remove(&pending.dip);
        self.stats.data_acked += 1;
        ctx.count("app.data_acked", 1);
        ctx.sample(
            "app.e2e_latency_s",
            ctx.now().since(pending.first_sent).as_secs_f64(),
        );
        // "Whenever a data packet is correctly acknowledged by D, the
        // credit of each host in the route is increased by one."
        self.credits.reward_route(&pending.relays);
    }

    fn handle_dns_reply(&mut self, ctx: &mut Ctx, reply: DnsReply) {
        let Some(ch) = self.pending_resolves.get(&reply.qname).copied() else {
            return;
        };
        let payload = sigdata::dns_reply(&reply.qname, reply.answer.as_ref(), ch);
        if verify_known_key(&self.dns_pk, &payload, &reply.sig).is_err() {
            self.stats.rejected_dns_reply += 1;
            ctx.count("sec.dns_reply_rejected", 1);
            ctx.trace(Dir::Drop, "DNSR", "invalid DNS signature (impersonation?)");
            return;
        }
        self.pending_resolves.remove(&reply.qname);
        ctx.count("dns.resolved", 1);
        self.stats.resolved.insert(reply.qname, reply.answer);
    }

    fn handle_ip_change_challenge(
        &mut self,
        ctx: &mut Ctx,
        chal: IpChangeChallenge,
        path: &RouteRecord,
    ) {
        let Some(pending) = self.pending_ip_change.as_mut() else {
            return;
        };
        if pending.dn != chal.dn {
            return;
        }
        pending.ch = Some(chal.ch);
        // Answer with the paper's reply contents: XIP, X'IP, both rn
        // values, XPK and [XIP, X'IP, ch]XSK.
        let sig = self
            .ident
            .sign(&sigdata::ip_change(&pending.old_ip, &pending.new_ip, chal.ch));
        let msg = Message::IpChangeProof(IpChangeProof {
            dn: chal.dn,
            old_ip: pending.old_ip,
            new_ip: pending.new_ip,
            old_rn: pending.old_rn,
            new_rn: pending.new_rn,
            pk: self.ident.public().clone(),
            sig,
            route: path.reversed(),
        });
        let reply_path = path.reversed();
        if reply_path.len() >= 2 {
            self.send_routed(ctx, reply_path, msg);
        }
    }

    fn handle_ip_change_result(&mut self, ctx: &mut Ctx, res: IpChangeResult) {
        let Some(pending) = self.pending_ip_change.take() else {
            return;
        };
        let Some(ch) = pending.ch else {
            return;
        };
        let payload = sigdata::ip_change_result(&res.dn, res.accepted, ch);
        if verify_known_key(&self.dns_pk, &payload, &res.sig).is_err() {
            ctx.count("sec.ip_change_result_rejected", 1);
            return;
        }
        self.stats.ip_change_accepted = Some(res.accepted);
        if res.accepted {
            self.ident.set_rn(pending.new_rn);
            ctx.count("dns.ip_changed", 1);
            ctx.trace(Dir::Note, "IPCHG", format!("now {}", self.ident.ip()));
            // Old routes reference the old address; peers will re-resolve.
            self.route_cache.remove_dest(&pending.old_ip);
        }
    }

    // --- forwarding ----------------------------------------------------------

    fn forward(&mut self, ctx: &mut Ctx, mut env: Envelope) {
        let path = env.source_route.clone().expect("routed");
        let idx = env.sr_index as usize;

        if let Message::Data(_) = env.msg {
            // Black/grey hole: accept and discard (Section 4's black hole).
            if self.behavior.data_drop_prob > 0.0
                && ctx.rng().gen::<f64>() < self.behavior.data_drop_prob
            {
                self.stats.atk_data_dropped += 1;
                ctx.count("atk.data_dropped", 1);
                ctx.trace(Dir::Drop, "DATA", "black hole: swallowing packet");
                return;
            }
        }

        if let Message::Probe(probe) = &env.msg {
            // A naive dropper swallows probes like everything else and is
            // localized; an evader acknowledges and forwards.
            if self.behavior.data_drop_prob > 0.0 && !self.behavior.evade_probes
                && ctx.rng().gen::<f64>() < self.behavior.data_drop_prob {
                    self.stats.atk_data_dropped += 1;
                    ctx.count("atk.probe_dropped", 1);
                    return;
                }
            let probe = probe.clone();
            let back: Vec<Ipv6Addr> = path.0[..=idx].iter().rev().copied().collect();
            self.send_probe_ack(ctx, &probe, back);
            // …and fall through to normal forwarding below.
        }

        // DNS impersonation: a malicious relay answers the query itself
        // with a forged signature (and suppresses the real one).
        if self.behavior.forge_dns {
            if let Message::DnsQuery(q) = &env.msg {
                let forged_sig = self
                    .ident
                    .sign(&sigdata::dns_reply(&q.qname, Some(&self.ident.ip()), q.ch));
                let reply = Message::DnsReply(DnsReply {
                    requester: q.requester,
                    qname: q.qname.clone(),
                    answer: Some(self.ident.ip()),
                    sig: forged_sig,
                    route: RouteRecord::new(),
                });
                self.stats.atk_forged_dns += 1;
                ctx.count("atk.forged_dns", 1);
                let back: Vec<Ipv6Addr> =
                    path.0[..=idx].iter().rev().copied().collect();
                if back.len() >= 2 {
                    self.send_routed(ctx, RouteRecord(back), reply);
                }
                return; // swallow the query
            }
        }

        let next = path.0[idx + 1];
        env.sr_index += 1;
        env.src_ip = self.ident.ip();
        let is_data = matches!(env.msg, Message::Data(_));
        ctx.count("route.forwarded", 1);
        let final_next = idx + 1 == path.len() - 1;
        if final_next && Self::final_hop_must_broadcast(&env.msg, &next) {
            // Footnote broadcast: see final_hop_must_broadcast.
            ctx.count("route.broadcast_fallback", 1);
            self.tx(ctx, None, env);
            return;
        }
        if let Some(node) = self.neighbors.lookup(&next, ctx.now()) {
            self.tx(ctx, Some(node), env);
            // RERR spam: after dutifully forwarding, falsely report the
            // link broken to poison the source's cache (Section 4's
            // forged-RERR case — the report is *signed honestly* by us,
            // so it passes verification; the defense is frequency
            // tracking + credits).
            if self.behavior.rerr_spam && is_data {
                self.stats.atk_spam_rerr += 1;
                ctx.count("atk.rerr_spam", 1);
                self.originate_rerr(ctx, &path, idx, next);
            }
        } else if idx + 1 == path.len() - 1 {
            // Last hop to a host we cannot resolve (mid-DAD joiner or
            // silent neighbor): link-layer broadcast, per the paper's
            // footnote on the final AREP hop.
            ctx.count("route.broadcast_fallback", 1);
            self.tx(ctx, None, env);
        } else {
            // Broken link with no cached neighbor: report it.
            self.neighbors.forget(&next);
            let me = self.ident.ip();
            self.route_cache.remove_link(me, me, next);
            if is_data {
                self.originate_rerr(ctx, &path, idx, next);
            }
        }
    }

    // --- route probing (Section 3.4 extension) -------------------------------

    /// Probe the route last used toward `dip`: every hop that forwards
    /// the probe returns a signed per-hop ack; the first silent hop is
    /// the suspect.
    fn launch_probe(&mut self, ctx: &mut Ctx, dip: Ipv6Addr, relays: &[Ipv6Addr]) {
        if self.pending_probes.values().any(|p| p.dip == dip) {
            return; // one probe at a time per destination
        }
        let seq = self.alloc_seq();
        let mut path = Vec::with_capacity(relays.len() + 2);
        path.push(self.ident.ip());
        path.extend_from_slice(relays);
        path.push(dip);
        let route = RouteRecord(path);
        if route.len() < 2 {
            return;
        }
        let mut expected = relays.to_vec();
        expected.push(dip);
        self.pending_probes.insert(
            seq.0,
            PendingProbe {
                dip,
                expected,
                acked: HashSet::new(),
            },
        );
        self.stats.probes_sent += 1;
        ctx.count("probe.sent", 1);
        ctx.trace(Dir::Note, "PROBE", format!("probing route to {dip}"));
        let msg = Message::Probe(manet_wire::Probe {
            sip: self.ident.ip(),
            dip,
            seq,
            route: route.clone(),
        });
        self.send_routed(ctx, route, msg);
        ctx.set_timer(self.cfg.probe_timeout, TAG_ROUTE_PROBE | seq.0);
    }

    /// Sign and return a per-hop probe acknowledgement toward the source.
    fn send_probe_ack(&mut self, ctx: &mut Ctx, probe: &manet_wire::Probe, back: Vec<Ipv6Addr>) {
        let hop = self.ident.ip();
        let proof = self
            .ident
            .prove(&sigdata::probe_ack(&probe.sip, probe.seq, &hop));
        let ack = Message::ProbeAck(manet_wire::ProbeAck {
            sip: probe.sip,
            probe_seq: probe.seq,
            hop,
            proof,
        });
        self.stats.probe_acks_sent += 1;
        ctx.count("probe.acks_sent", 1);
        if back.len() >= 2 {
            self.send_routed(ctx, RouteRecord(back), ack);
        }
    }

    fn handle_probe_ack(&mut self, ctx: &mut Ctx, ack: manet_wire::ProbeAck) {
        let Some(pending) = self.pending_probes.get_mut(&ack.probe_seq.0) else {
            return; // expired or unsolicited
        };
        if !pending.expected.contains(&ack.hop) {
            ctx.count("probe.ack_offroute", 1);
            return;
        }
        // Same identity checks as everything else: the CGA must belong
        // to the claimed hop and the signature must cover this probe.
        if verify_proof(
            &ack.hop,
            &sigdata::probe_ack(&ack.sip, ack.probe_seq, &ack.hop),
            &ack.proof,
        )
        .is_err()
        {
            ctx.count("sec.probe_ack_rejected", 1);
            return;
        }
        pending.acked.insert(ack.hop);
    }

    /// The collection window closed: judge the probed route.
    fn on_route_probe_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some(pending) = self.pending_probes.remove(&seq) else {
            return;
        };
        let first_silent = pending
            .expected
            .iter()
            .position(|h| !pending.acked.contains(h));
        match first_silent {
            None => {
                // Everyone answered: an evading dropper or a transient
                // fault. Credits remain the fallback.
                self.stats.probes_inconclusive += 1;
                ctx.count("probe.inconclusive", 1);
                ctx.trace(Dir::Note, "PROBE", "all hops acked — inconclusive");
            }
            Some(i) => {
                let suspect = pending.expected[i];
                // The suspect either swallowed the probe or swallowed the
                // acks of everyone behind it — in both cases the paper's
                // "very large amount" slash applies. Its predecessor gets
                // only the weak timeout-grade penalty (it might be the
                // ack-dropper's victim, not an accomplice).
                self.credits.slash(&suspect);
                if i > 0 {
                    self.credits.penalize_route(&pending.expected[i - 1..i]);
                }
                self.stats.probe_suspects.push(suspect);
                ctx.count("probe.localized", 1);
                ctx.trace(Dir::Note, "PROBE", format!("suspect localized: {suspect}"));
            }
        }
    }

    /// Emit `RERR(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)` back to the
    /// source of a broken source-routed packet (Section 3.4).
    fn originate_rerr(&mut self, ctx: &mut Ctx, path: &RouteRecord, my_idx: usize, next: Ipv6Addr) {
        let iip = self.ident.ip();
        let proof = self.ident.prove(&sigdata::rerr(&iip, &next));
        let rerr = Rerr {
            iip,
            i2ip: next,
            proof,
        };
        self.stats.rerr_sent += 1;
        ctx.count("route.rerr_sent", 1);
        let back: Vec<Ipv6Addr> = path.0[..=my_idx].iter().rev().copied().collect();
        if back.len() >= 2 {
            self.send_routed(ctx, RouteRecord(back), Message::Rerr(rerr));
        }
    }

    /// The replay attacker records everything verifiable it overhears.
    fn observe_for_replay(&mut self, env: &Envelope) {
        match &env.msg {
            Message::Arep(a) => {
                self.observed_areps.push(a.clone());
                self.observed_areps.truncate(32);
            }
            Message::Rrep(r) => {
                self.observed_rreps.push(r.clone());
                self.observed_rreps.truncate(32);
            }
            _ => {}
        }
    }

    // --- timers ---------------------------------------------------------------

    fn on_dad_timer(&mut self, ctx: &mut Ctx) {
        if matches!(self.state, NodeState::Dad { .. }) {
            // Silence means uniqueness (Section 3.1).
            self.dad_confirmed(ctx);
        }
    }

    fn on_rreq_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some((&dip, _)) = self
            .pending_rreqs
            .iter()
            .find(|(_, p)| p.seq.0 == seq)
        else {
            return; // answered in time
        };
        let pending = self.pending_rreqs.get_mut(&dip).expect("just found");
        if pending.attempts >= self.cfg.rreq_retries {
            self.pending_rreqs.remove(&dip);
            ctx.count("route.discovery_gave_up", 1);
            self.fail_buffer(ctx, dip);
            return;
        }
        pending.attempts += 1;
        // Fresh sequence number per retry: replayed answers to the old
        // one stay rejectable.
        let new_seq = Seq(self.next_seq);
        self.next_seq += 1;
        self.pending_rreqs.get_mut(&dip).expect("present").seq = new_seq;
        ctx.count("route.rreq_retries", 1);
        self.broadcast_rreq(ctx, dip, new_seq);
        ctx.set_timer(self.cfg.rreq_timeout, TAG_RREQ | new_seq.0);
    }

    fn on_ack_timer(&mut self, ctx: &mut Ctx, seq: u64) {
        let Some(pending) = self.pending_acks.remove(&seq) else {
            return; // acked in time
        };
        // Weak evidence against every relay: a black hole accrues it from
        // every flow it swallows (Section 3.4).
        self.credits.penalize_route(&pending.relays);
        ctx.count("app.ack_timeouts", 1);
        // Persistent loss toward one destination triggers a route probe
        // ("test the integrality of each host") when enabled.
        let misses = self
            .consecutive_timeouts
            .entry(pending.dip)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        if self.cfg.probe_enabled && *misses >= self.cfg.probe_after {
            self.launch_probe(ctx, pending.dip, &pending.relays);
        }
        if pending.retries < self.cfg.data_retries {
            // Retry — possibly over a different route now that credits
            // shifted. If the same route is still chosen, that is what the
            // credit experiment measures.
            if self.try_send_data(
                ctx,
                Seq(seq),
                pending.dip,
                pending.payload.clone(),
                pending.retries + 1,
            ) {
                return;
            }
            // No usable route: rediscover and queue.
            let dip = pending.dip;
            self.enqueue(
                ctx,
                dip,
                Queued::Data {
                    seq: Seq(seq),
                    payload: pending.payload,
                },
            );
            self.ensure_route(ctx, dip);
            return;
        }
        self.stats.data_failed += 1;
        ctx.count("app.data_failed", 1);
    }
}

impl Protocol for SecureNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.dns.is_some() {
            // The DNS server is pre-deployed infrastructure: it owns its
            // address and name table before the MANET forms (Section 3).
            self.state = NodeState::Ready;
            self.stats.joined_at = Some(ctx.now());
            ctx.count("dad.confirmed", 1);
            return;
        }
        self.begin_dad(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            ctx.count("rx.malformed", 1);
            return;
        };
        self.neighbors.learn(env.src_ip, src, ctx.now());
        if self.behavior.replay {
            self.observe_for_replay(&env);
        }
        match env.source_route {
            Some(_) => {
                let Some(cur) = env.current_hop() else {
                    return;
                };
                if !self.accepts_addr(&cur) {
                    return; // overheard fallback broadcast — not ours
                }
                if env.at_final_hop() {
                    if ctx.tracing() {
                        ctx.trace(Dir::Rx, env.msg.kind(), format!("from {}", env.src_ip));
                    }
                    self.deliver_local(ctx, env);
                } else {
                    self.forward(ctx, env);
                }
            }
            None => match env.msg {
                Message::Areq(areq) => self.handle_areq(ctx, areq),
                Message::Rreq(rreq) => self.handle_rreq(ctx, rreq),
                // Broadcast-fallback deliveries carry a source route and
                // are handled above; other flooded kinds are not part of
                // the protocol.
                _ => ctx.count("rx.unexpected_flood", 1),
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, tag: u64) {
        match tag & TAG_KIND_MASK {
            TAG_DAD => self.on_dad_timer(ctx),
            TAG_RREQ => self.on_rreq_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_ACK => self.on_ack_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_DNS_PENDING => self.dns_on_pending_timer(ctx, tag & !TAG_KIND_MASK),
            TAG_DAD_PROBE => self.on_dad_probe_timer(ctx),
            TAG_ROUTE_PROBE => self.on_route_probe_timer(ctx, tag & !TAG_KIND_MASK),
            _ => {}
        }
    }

    fn on_link_failure(&mut self, ctx: &mut Ctx, _to: NodeId, bytes: &[u8]) {
        let Ok(env) = Envelope::decode(bytes) else {
            return;
        };
        let Some(path) = env.source_route.clone() else {
            return;
        };
        let Some(next) = env.current_hop() else {
            return;
        };
        self.neighbors.forget(&next);
        let me = self.ident.ip();
        // The failed transmitter was us; the broken link is me → next in
        // route-cache terms only if we were the path head, otherwise it
        // is (our address) → next anyway since we were forwarding.
        self.route_cache.remove_link(me, me, next);
        if matches!(env.msg, Message::Data(_)) {
            let my_idx = (env.sr_index as usize).saturating_sub(1);
            if path.0.first() == Some(&me) {
                // We are the source: no RERR to send; the ACK timeout
                // will retry over another route.
                ctx.count("route.source_link_failures", 1);
            } else {
                self.originate_rerr(ctx, &path, my_idx, next);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn mk_node(seed: u64) -> SecureNode {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let dns_kp = manet_crypto::KeyPair::generate(512, &mut rng);
        SecureNode::new(
            ProtocolConfig::default(),
            dns_kp.public().clone(),
            Some(DomainName::new("node").unwrap()),
            &mut rng,
        )
    }

    #[test]
    fn fresh_node_is_not_ready() {
        let n = mk_node(1);
        assert!(!n.is_ready());
        assert!(!n.is_dns());
        assert!(n.ip().is_site_local());
        assert_eq!(n.stats().dad_attempts, 0);
    }

    #[test]
    fn dns_node_knows_its_own_key() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        assert!(dns.is_dns());
        assert_eq!(dns.dns_pk, *dns.ident.public());
    }

    #[test]
    fn timer_tags_partition() {
        assert_eq!(TAG_DAD & TAG_KIND_MASK, TAG_DAD);
        assert_eq!((TAG_RREQ | 12345) & TAG_KIND_MASK, TAG_RREQ);
        assert_eq!((TAG_ACK | 12345) & !TAG_KIND_MASK, 12345);
        assert_ne!(TAG_RREQ, TAG_ACK);
        assert_ne!(TAG_ACK, TAG_DNS_PENDING);
    }

    #[test]
    fn seq_allocation_is_monotonic() {
        let mut n = mk_node(3);
        let a = n.alloc_seq();
        let b = n.alloc_seq();
        assert!(b.0 > a.0);
    }

    #[test]
    fn final_hop_broadcast_rule_covers_dad_replies_only() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let id = crate::identity::HostIdentity::generate(512, &mut rng);
        let sip = id.ip();
        let other = crate::identity::HostIdentity::generate(512, &mut rng).ip();
        let proof = manet_wire::IdentityProof {
            pk: id.public().clone(),
            rn: id.rn(),
            sig: id.sign(b"x"),
        };
        let arep = Message::Arep(Arep {
            sip,
            rr: RouteRecord::new(),
            proof: proof.clone(),
        });
        // AREP toward the disputed (mid-DAD, link-layer-ambiguous)
        // address: always broadcast.
        assert!(SecureNode::final_hop_must_broadcast(&arep, &sip));
        // AREP toward anyone else (the DNS warning copy): normal unicast.
        assert!(!SecureNode::final_hop_must_broadcast(&arep, &other));
        // Other message kinds never force a broadcast.
        let rerr = Message::Rerr(Rerr {
            iip: sip,
            i2ip: other,
            proof,
        });
        assert!(!SecureNode::final_hop_must_broadcast(&rerr, &sip));
    }

    #[test]
    fn probe_state_defaults_off() {
        let n = mk_node(8);
        assert!(!n.cfg.probe_enabled);
        assert!(n.pending_probes.is_empty());
        assert_eq!(n.stats().probes_sent, 0);
    }

    #[test]
    fn tx_src_is_unspecified_until_ready() {
        let n = mk_node(10);
        assert_eq!(n.tx_src_ip(), UNSPECIFIED, "Boot state sends as ::");
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        // The DNS starts Ready only after on_start; in Boot it is :: too.
        assert_eq!(dns.tx_src_ip(), UNSPECIFIED);
    }

    #[test]
    fn is_my_addr_covers_anycast_only_for_dns() {
        let n = mk_node(4);
        assert!(n.is_my_addr(&n.ip()));
        assert!(!n.is_my_addr(&DNS_WELL_KNOWN[0]));
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let dns = SecureNode::new_dns(ProtocolConfig::default(), Vec::new(), &mut rng);
        assert!(dns.is_my_addr(&DNS_WELL_KNOWN[0]));
        assert!(dns.is_my_addr(&dns.ip()));
    }
}
