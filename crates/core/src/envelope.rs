//! The per-frame envelope: our stand-in for the IPv6 header plus the
//! (DSR-style) routing header.
//!
//! Every frame on the air is `Envelope { src_ip, source_route, msg }`:
//!
//! * `src_ip` — the transmitting interface's address (`::` while a host
//!   is still in DAD, exactly like real IPv6 DAD probes). Receivers feed
//!   it into their neighbor cache. It is *unauthenticated*, like a real
//!   IP source field — nothing security-relevant trusts it.
//! * `source_route` + `sr_index` — present on unicast multi-hop packets:
//!   the full path including both endpoints plus a segments-left-style
//!   cursor (the index of the hop the frame is currently addressed to),
//!   the moral equivalent of the IPv6 routing header DSR uses. The
//!   per-message `RR` fields from Table 1 stay untouched payload.

use bytes::BufMut;
use manet_wire::{CodecError, Ipv6Addr, Message, RouteRecord};

/// A framed packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// Transmitter's current address (`UNSPECIFIED` during DAD).
    pub src_ip: Ipv6Addr,
    /// Full forwarding path (source first, final destination last), if
    /// this packet is source-routed unicast.
    pub source_route: Option<RouteRecord>,
    /// Index into `source_route` of the hop this frame is addressed to.
    /// Meaningless when `source_route` is `None`.
    pub sr_index: u16,
    pub msg: Message,
}

impl Envelope {
    /// A locally-originated broadcast (floods: AREQ, RREQ).
    pub fn broadcast(src_ip: Ipv6Addr, msg: Message) -> Self {
        Envelope {
            src_ip,
            source_route: None,
            sr_index: 0,
            msg,
        }
    }

    /// A source-routed unicast along `path` (≥ 2 entries: source first,
    /// destination last), freshly addressed to the second entry.
    pub fn routed(src_ip: Ipv6Addr, path: RouteRecord, msg: Message) -> Self {
        debug_assert!(path.len() >= 2, "source route needs both endpoints");
        Envelope {
            src_ip,
            source_route: Some(path),
            sr_index: 1,
            msg,
        }
    }

    /// The hop this frame is currently addressed to.
    pub fn current_hop(&self) -> Option<Ipv6Addr> {
        let sr = self.source_route.as_ref()?;
        sr.0.get(self.sr_index as usize).copied()
    }

    /// The final destination of the source route.
    pub fn final_dst(&self) -> Option<Ipv6Addr> {
        self.source_route.as_ref()?.0.last().copied()
    }

    /// Is the currently addressed hop the final destination?
    pub fn at_final_hop(&self) -> bool {
        match &self.source_route {
            Some(sr) => self.sr_index as usize == sr.len() - 1,
            None => false,
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serialize, appending to a caller-owned buffer. With a buffer from
    /// [`manet_sim::Ctx::frame_buf`] this is the zero-alloc transmit
    /// path: header and message encode straight into a recycled frame,
    /// with no intermediate message byte vector.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(&self.src_ip.0);
        match &self.source_route {
            None => out.put_u8(0),
            Some(rr) => {
                out.put_u8(1);
                out.put_u16(self.sr_index);
                out.put_u16(rr.0.len() as u16);
                for a in &rr.0 {
                    out.put_slice(&a.0);
                }
            }
        }
        self.msg.encode_into(out);
    }

    /// If `buf` is a broadcast-enveloped (routeless) [`PlainRreq`]
    /// frame, return the transmitter address and the request's fixed
    /// fields without allocating. Layout validation is as strict as the
    /// full [`Envelope::decode`]; `None` means "different frame kind or
    /// malformed — take the full decode path". This powers the
    /// duplicate-flood fast path in the plain-DSR receiver.
    pub fn peek_broadcast_rreq(buf: &[u8]) -> Option<(Ipv6Addr, manet_wire::PlainRreqHeader)> {
        if buf.len() < 17 || buf[16] != 0 {
            return None;
        }
        let src_ip = Ipv6Addr(buf[..16].try_into().expect("16 bytes"));
        let hdr = Message::peek_plain_rreq(&buf[17..])?;
        Some((src_ip, hdr))
    }

    /// Byte offset of the enveloped message within `buf`, validating
    /// the header exactly as strictly as [`Envelope::decode`]: `None`
    /// means the full decode would fail before reaching the message.
    /// With [`Message::peek_may_verify`] this lets a speculative pass
    /// read the message kind without paying for a frame decode.
    pub fn peek_msg_offset(buf: &[u8]) -> Option<usize> {
        if buf.len() < 17 {
            return None;
        }
        match buf[16] {
            0 => Some(17),
            1 => {
                let rest = &buf[17..];
                if rest.len() < 4 {
                    return None;
                }
                let idx = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                let n = u16::from_be_bytes([rest[2], rest[3]]) as usize;
                if n > 256 || idx >= n || rest.len() < 4 + n * 16 {
                    return None;
                }
                Some(17 + 4 + n * 16)
            }
            _ => None,
        }
    }

    /// Strict decode.
    pub fn decode(buf: &[u8]) -> Result<Envelope, CodecError> {
        if buf.len() < 17 {
            return Err(CodecError::Truncated);
        }
        let src_ip = Ipv6Addr(buf[..16].try_into().expect("16 bytes"));
        let mut rest = &buf[16..];
        let has_route = rest[0];
        rest = &rest[1..];
        let (source_route, sr_index) = match has_route {
            0 => (None, 0),
            1 => {
                if rest.len() < 4 {
                    return Err(CodecError::Truncated);
                }
                let idx = u16::from_be_bytes([rest[0], rest[1]]);
                let n = u16::from_be_bytes([rest[2], rest[3]]) as usize;
                rest = &rest[4..];
                if n > 256 {
                    return Err(CodecError::LengthOverflow);
                }
                if (idx as usize) >= n {
                    return Err(CodecError::LengthOverflow);
                }
                if rest.len() < n * 16 {
                    return Err(CodecError::Truncated);
                }
                let mut path = Vec::with_capacity(n);
                for i in 0..n {
                    path.push(Ipv6Addr(
                        rest[i * 16..(i + 1) * 16].try_into().expect("16 bytes"),
                    ));
                }
                rest = &rest[n * 16..];
                (Some(RouteRecord(path)), idx)
            }
            _ => return Err(CodecError::LengthOverflow),
        };
        let msg = Message::decode(rest)?;
        Ok(Envelope {
            src_ip,
            source_route,
            sr_index,
            msg,
        })
    }

    /// Total frame size in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_wire::{PlainRerr, Seq};

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn msg() -> Message {
        Message::PlainRreq(manet_wire::PlainRreq {
            sip: ip(1),
            dip: ip(2),
            seq: Seq(3),
            rr: RouteRecord(vec![ip(4)]),
        })
    }

    #[test]
    fn broadcast_roundtrip() {
        let e = Envelope::broadcast(ip(1), msg());
        assert_eq!(Envelope::decode(&e.encode()).unwrap(), e);
        assert_eq!(e.current_hop(), None);
        assert!(!e.at_final_hop());
    }

    #[test]
    fn routed_roundtrip_and_cursor() {
        let e = Envelope::routed(ip(1), RouteRecord(vec![ip(1), ip(2), ip(3)]), msg());
        let back = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.current_hop(), Some(ip(2)));
        assert_eq!(back.final_dst(), Some(ip(3)));
        assert!(!back.at_final_hop());
        let mut last = back.clone();
        last.sr_index = 2;
        assert!(last.at_final_hop());
        assert_eq!(last.current_hop(), Some(ip(3)));
    }

    #[test]
    fn unspecified_source_during_dad() {
        let e = Envelope::broadcast(manet_wire::UNSPECIFIED, msg());
        let back = Envelope::decode(&e.encode()).unwrap();
        assert!(back.src_ip.is_unspecified());
    }

    #[test]
    fn truncation_rejected() {
        let e = Envelope::routed(ip(1), RouteRecord(vec![ip(1), ip(2)]), msg());
        let bytes = e.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_route_flag_rejected() {
        let e = Envelope::broadcast(ip(1), msg());
        let mut bytes = e.encode();
        bytes[16] = 7; // invalid has_route discriminant
        assert!(Envelope::decode(&bytes).is_err());
    }

    #[test]
    fn out_of_range_cursor_rejected() {
        let e = Envelope::routed(ip(1), RouteRecord(vec![ip(1), ip(2)]), msg());
        let mut bytes = e.encode();
        // sr_index bytes sit right after the flag.
        bytes[17] = 0;
        bytes[18] = 9;
        assert_eq!(Envelope::decode(&bytes), Err(CodecError::LengthOverflow));
    }

    /// The offset peek must agree with the strict decode: `Some(off)`
    /// exactly when the header parses, with the message starting at
    /// `off` — across broadcast and routed frames and every truncation.
    #[test]
    fn msg_offset_peek_matches_decode() {
        for e in [
            Envelope::broadcast(ip(1), msg()),
            Envelope::routed(ip(1), RouteRecord(vec![ip(1), ip(2), ip(3)]), msg()),
        ] {
            let bytes = e.encode();
            let off = Envelope::peek_msg_offset(&bytes).expect("well-formed header");
            assert_eq!(&bytes[off..], &e.msg.encode()[..], "message starts at off");
            for cut in 0..bytes.len() {
                let peek = Envelope::peek_msg_offset(&bytes[..cut]);
                // A header peek may succeed on a frame whose *message*
                // is truncated; it must never succeed where the header
                // itself is short.
                if let Some(o) = peek {
                    assert!(o <= cut, "cut={cut}: offset past the buffer");
                }
            }
            let mut bad = bytes.clone();
            bad[16] = 7;
            assert_eq!(Envelope::peek_msg_offset(&bad), None);
        }
    }

    #[test]
    fn envelope_overhead_is_small_for_broadcast() {
        let m = Message::PlainRerr(PlainRerr {
            iip: ip(1),
            i2ip: ip(2),
        });
        let e = Envelope::broadcast(ip(3), m.clone());
        assert_eq!(e.wire_size(), 16 + 1 + m.wire_size());
    }
}
