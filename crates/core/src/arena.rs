//! Slab/arena storage for the per-node hot collections (DESIGN.md §6,
//! ROADMAP item 1).
//!
//! At 10⁵ nodes the dominant heap cost is no longer the event queue
//! (pooled since PR 5) but the per-node collections: every cached route
//! carried its own `Vec<Ipv6Addr>` and every queued payload its own
//! `Vec<u8>`. [`SliceArena`] replaces those with one growable backing
//! vector per collection plus an exact-fit freelist, so steady-state
//! insert/evict cycles reuse storage instead of round-tripping the
//! global allocator. Handles are `u32` indices — 4 bytes in the owning
//! struct instead of a 24-byte `Vec` header plus a separate heap block.
//!
//! Layout:
//!
//! ```text
//!   data:  [ ..... span A ..... | .. span B .. | ... span C ... | bump→
//!   spans: [ {off,len,cap} {off,len,cap} {off,len,cap} ... ]
//!              ↑ handle = index into spans
//!   free_by_cap[cap] → recycled span slots awaiting an alloc of `cap`
//! ```
//!
//! Allocation is bump-at-end unless an exact-capacity freed span
//! exists; frees are O(1). Because every caller is a *bounded* cache
//! (route caches, send buffers), the backing vector's high-water mark
//! is bounded by the cache caps and the arena never needs compaction.

use std::fmt;

/// Index handle into a [`SliceArena`]. Plain data — holding one does
/// not borrow the arena. Dereference with [`SliceArena::get`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanHandle(u32);

impl fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanHandle({})", self.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Span {
    off: u32,
    len: u32,
    cap: u32,
}

/// Arena of variable-length `[T]` spans with exact-fit slot reuse.
#[derive(Debug)]
pub struct SliceArena<T: Copy> {
    data: Vec<T>,
    spans: Vec<Span>,
    /// Freed span-table slots binned by capacity (`free_by_cap[cap]`).
    free_by_cap: Vec<Vec<u32>>,
    live: usize,
}

impl<T: Copy> Default for SliceArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> SliceArena<T> {
    pub fn new() -> Self {
        SliceArena {
            data: Vec::new(),
            spans: Vec::new(),
            free_by_cap: Vec::new(),
            live: 0,
        }
    }

    /// Store a copy of `items`; returns its handle.
    pub fn alloc(&mut self, items: &[T]) -> SpanHandle {
        let len = u32::try_from(items.len()).expect("span length fits u32");
        self.live += 1;
        // Exact-fit reuse of a freed span of the same capacity.
        if let Some(bin) = self.free_by_cap.get_mut(items.len()) {
            if let Some(slot) = bin.pop() {
                let span = &mut self.spans[slot as usize];
                span.len = len;
                let off = span.off as usize;
                self.data[off..off + items.len()].copy_from_slice(items);
                return SpanHandle(slot);
            }
        }
        // Bump allocation at the end of the backing store.
        let off = u32::try_from(self.data.len()).expect("arena offset fits u32");
        self.data.extend_from_slice(items);
        let slot = u32::try_from(self.spans.len()).expect("span count fits u32");
        self.spans.push(Span { off, len, cap: len });
        SpanHandle(slot)
    }

    /// The stored slice for `h`. Panics on a freed or foreign handle
    /// only if the slot was since reused with a different length — the
    /// caller owns handle lifetime discipline, as with any slab.
    pub fn get(&self, h: SpanHandle) -> &[T] {
        let span = &self.spans[h.0 as usize];
        &self.data[span.off as usize..(span.off + span.len) as usize]
    }

    /// Release `h`, making its storage available to a future `alloc`
    /// of the same capacity.
    pub fn free(&mut self, h: SpanHandle) {
        let cap = self.spans[h.0 as usize].cap as usize;
        if self.free_by_cap.len() <= cap {
            self.free_by_cap.resize_with(cap + 1, Vec::new);
        }
        self.free_by_cap[cap].push(h.0);
        self.live -= 1;
    }

    /// Number of live (allocated, not freed) spans.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total backing-store elements (high-water mark, includes freed
    /// spans awaiting reuse).
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut a = SliceArena::new();
        let h1 = a.alloc(&[1u32, 2, 3]);
        let h2 = a.alloc(&[9u32]);
        let h3 = a.alloc(&[] as &[u32]);
        assert_eq!(a.get(h1), &[1, 2, 3]);
        assert_eq!(a.get(h2), &[9]);
        assert_eq!(a.get(h3), &[] as &[u32]);
        assert_eq!(a.live(), 3);
    }

    #[test]
    fn free_then_alloc_reuses_exact_fit() {
        let mut a = SliceArena::new();
        let h1 = a.alloc(&[1u8, 2, 3]);
        let watermark = a.backing_len();
        a.free(h1);
        assert_eq!(a.live(), 0);
        let h2 = a.alloc(&[7u8, 8, 9]);
        assert_eq!(a.get(h2), &[7, 8, 9]);
        assert_eq!(a.backing_len(), watermark, "exact fit must not grow");
    }

    #[test]
    fn mismatched_size_bumps_instead() {
        let mut a = SliceArena::new();
        let h1 = a.alloc(&[1u8, 2, 3]);
        a.free(h1);
        let before = a.backing_len();
        let h2 = a.alloc(&[1u8, 2]); // no cap-2 span free → bump
        assert_eq!(a.get(h2), &[1, 2]);
        assert_eq!(a.backing_len(), before + 2);
        // The cap-3 slot is still available for a cap-3 alloc.
        let h3 = a.alloc(&[4u8, 5, 6]);
        assert_eq!(a.get(h3), &[4, 5, 6]);
        assert_eq!(a.backing_len(), before + 2);
    }

    #[test]
    fn steady_state_churn_is_bounded() {
        let mut a = SliceArena::new();
        let mut live = Vec::new();
        for round in 0..100u32 {
            for k in 0..8u32 {
                live.push(a.alloc(&[round, k, round ^ k]));
            }
            let high = a.backing_len();
            for h in live.drain(..) {
                a.free(h);
            }
            if round > 0 {
                assert_eq!(a.backing_len(), high, "churn must reuse, not grow");
            }
        }
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn empty_spans_are_distinct_handles() {
        let mut a: SliceArena<u8> = SliceArena::new();
        let h1 = a.alloc(&[]);
        let h2 = a.alloc(&[]);
        assert_ne!(h1, h2);
        a.free(h1);
        let h3 = a.alloc(&[]);
        assert_eq!(a.get(h3), &[] as &[u8]);
    }
}
