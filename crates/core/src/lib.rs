//! # manet-secure
//!
//! The paper's contribution (Tseng/Jiang/Lee, "Secure Bootstrapping and
//! Routing in an IPv6-Based Ad Hoc Network"): CGA-based address
//! autoconfiguration with secure duplicate address detection, DNS-backed
//! name services, secure DSR route discovery with per-hop identity
//! proofs, and credit-based route maintenance — plus the plain-DSR
//! baseline and the Section 4 attacker models, all running on the
//! `manet-sim` discrete-event engine.
//!
//! Start with [`scenario`] to build whole networks, or [`node::SecureNode`]
//! for a single protocol instance.
//!
//! ```
//! use manet_secure::scenario::ScenarioBuilder;
//! use manet_sim::SimDuration;
//!
//! // Four hosts + a DNS server on a multi-hop chain. Hosts carry no
//! // pre-assigned addresses — only the DNS public key.
//! let mut net = ScenarioBuilder::new().hosts(4).seed(1).secure().build();
//! assert!(net.bootstrap()); // staggered joins, secure DAD, name registration
//!
//! // Discover a route (signed RREQ/RREP) and send acknowledged data.
//! let report = net.run_flows(&[(0, 3)], 5, SimDuration::from_millis(300));
//! assert!(report.delivery_ratio.unwrap() > 0.9);
//! ```

pub mod arena;
pub mod attacks;
pub mod campaign;
pub mod config;
pub mod credit;
pub mod dns;
pub mod envelope;
pub mod fxhash;
pub mod identity;
pub mod intern;
pub mod neighbor;
pub mod node;
pub mod plain;
pub mod routecache;
pub mod scenario;
pub mod sendbuf;
pub mod stats;

pub use config::{Behavior, CreditConfig, ProtocolConfig};
pub use envelope::Envelope;
pub use identity::{
    verify_known_key, verify_known_key_pipeline, verify_known_key_with, verify_proof,
    verify_proof_pipeline, verify_proof_with, HostIdentity, ProofError,
};
pub use node::SecureNode;
pub use plain::PlainDsrNode;
pub use scenario::{Network, NodeApi, RunReport, ScenarioBuilder, Workload};
pub use stats::{NodeStats, ResolvedCache};
