//! The rule engine: seven launch rules over the token stream, with
//! per-crate scoping, `#[cfg(test)]` exclusion, the inline escape
//! hatch, and the `allow.toml` baseline.
//!
//! Scoping. Determinism rules (`default-hasher`, `unordered-iter`,
//! `wall-clock`, `shared-state`, `atomic-ordering`, `panic-budget`)
//! apply to protocol/engine code: `crates/{core,crypto,sim}/src`.
//! `undocumented-unsafe` applies to every scanned crate — an
//! unjustified `unsafe` is never fine. Code under `#[cfg(test)]` /
//! `#[test]` items is exempt from all rules: tests may use `HashMap`,
//! wall clocks, and `unwrap()` freely.
//!
//! Escape hatch. `// lint: allow(rule) — reason` suppresses findings
//! of `rule` on the directive's own line (trailing form) or on the
//! next code line (standalone form). The reason is mandatory: a
//! directive without one suppresses nothing and is itself a finding.
//! A directive that suppresses nothing is stale and is a finding —
//! same for `allow.toml` entries and over-generous panic budgets, so
//! the committed exception list can only shrink.

use crate::config::Config;
use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;

/// Every rule the engine knows. `allow(...)` directives naming
/// anything else are rejected.
pub const RULES: &[&str] = &[
    "default-hasher",
    "unordered-iter",
    "wall-clock",
    "shared-state",
    "atomic-ordering",
    "undocumented-unsafe",
    "panic-budget",
];

/// Crates whose `src/` is protocol/engine code under the determinism
/// rules.
const CORE_CRATES: &[&str] = &["core", "crypto", "sim"];

/// Map-iteration methods whose visit order follows the hasher.
/// `retain` is deliberately absent: it mutates in arbitrary order but
/// yields nothing downstream.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "SeqCst", "Acquire", "Release", "AcqRel"];

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// One parsed `// lint: allow(rule) — reason` directive.
struct Directive {
    file: usize,
    rule: String,
    line: u32,
    /// Lines a finding may sit on to be suppressed: the directive's
    /// own line, and (standalone form) the next code line.
    targets: [u32; 2],
    reason_ok: bool,
    known_rule: bool,
    used: bool,
}

struct FileCtx<'a> {
    path: &'a str,
    toks: Vec<Tok<'a>>,
    /// Indices into `toks` of non-comment tokens, in order.
    code: Vec<usize>,
    /// Parallel to `toks`: true if the token sits inside a
    /// `#[cfg(test)]` / `#[test]` item.
    excluded: Vec<bool>,
}

/// Which crate a workspace-relative path belongs to
/// (`crates/sim/src/mem.rs` → `sim`).
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("workspace")
}

fn in_core_scope(path: &str) -> bool {
    CORE_CRATES.contains(&crate_of(path))
}

/// Lint in-memory sources against a config. `files` holds
/// `(workspace-relative path, contents)` pairs. This is the whole
/// engine; [`crate::run`] is a thin filesystem loader around it.
pub fn lint_sources(files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let ctxs: Vec<FileCtx<'_>> = files
        .iter()
        .map(|(path, text)| {
            let toks = lex(text);
            let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
            let excluded = test_excluded(&toks, &code);
            FileCtx {
                path,
                toks,
                code,
                excluded,
            }
        })
        .collect();

    let mut directives = collect_directives(&ctxs);
    let mut findings: Vec<Finding> = Vec::new();

    // Directive syntax errors are findings in their own right and are
    // never suppressible.
    for d in &directives {
        let path = ctxs[d.file].path;
        if !d.known_rule {
            findings.push(Finding {
                rule: "lint-directive",
                path: path.to_string(),
                line: d.line,
                msg: format!("allow({}) names no known rule", d.rule),
            });
        } else if !d.reason_ok {
            findings.push(Finding {
                rule: "lint-directive",
                path: path.to_string(),
                line: d.line,
                msg: format!(
                    "allow({}) has no reason — write `// lint: allow({}) — why`",
                    d.rule, d.rule
                ),
            });
        }
    }

    // Hash-typed binding names, collected per crate: a field declared
    // in one file is iterated via `self.name` in another.
    let mut hashy: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for ctx in &ctxs {
        if in_core_scope(ctx.path) {
            collect_hashy_names(ctx, hashy.entry(crate_of(ctx.path)).or_default());
        }
    }
    for names in hashy.values_mut() {
        names.sort_unstable();
        names.dedup();
    }

    let mut raw: Vec<Finding> = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        if in_core_scope(ctx.path) {
            rule_default_hasher(ctx, &mut raw);
            rule_unordered_iter(ctx, &hashy[crate_of(ctx.path)], &mut raw);
            rule_wall_clock(ctx, &mut raw);
            rule_shared_state(ctx, &mut raw);
            rule_atomic_ordering(ctx, &mut raw);
            rule_panic_budget(ctx, fi, cfg, &mut directives, &mut raw);
        }
        rule_undocumented_unsafe(ctx, &mut raw);
    }

    // Suppression: inline directive first, then the allow.toml
    // baseline. Both record use so staleness is detectable.
    let mut cfg_used = vec![false; cfg.allows.len()];
    'raw: for f in raw {
        let fi = match ctxs.iter().position(|c| c.path == f.path) {
            Some(i) => i,
            None => {
                findings.push(f);
                continue;
            }
        };
        for d in directives.iter_mut() {
            if d.file == fi
                && d.known_rule
                && d.reason_ok
                && d.rule == f.rule
                && d.targets.contains(&f.line)
            {
                d.used = true;
                continue 'raw;
            }
        }
        for (i, a) in cfg.allows.iter().enumerate() {
            if a.rule == f.rule && a.path == f.path {
                cfg_used[i] = true;
                continue 'raw;
            }
        }
        findings.push(f);
    }

    // Staleness self-checks.
    for d in &directives {
        if d.known_rule && d.reason_ok && !d.used {
            findings.push(Finding {
                rule: "stale-allow",
                path: ctxs[d.file].path.to_string(),
                line: d.line,
                msg: format!("inline allow({}) suppresses nothing — remove it", d.rule),
            });
        }
    }
    for (i, a) in cfg.allows.iter().enumerate() {
        if !cfg_used[i] {
            findings.push(Finding {
                rule: "stale-allow",
                path: "lint/allow.toml".to_string(),
                line: 0,
                msg: format!(
                    "entry allow({}) for {} suppresses nothing — remove it",
                    a.rule, a.path
                ),
            });
        }
    }
    for (path, &budget) in &cfg.budgets {
        if !ctxs.iter().any(|c| c.path == path && in_core_scope(path)) {
            findings.push(Finding {
                rule: "stale-allow",
                path: "lint/allow.toml".to_string(),
                line: 0,
                msg: format!("panic budget of {budget} pinned for unknown file {path}"),
            });
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// Actual panic-site counts per in-scope file, for `--budgets`.
pub fn panic_counts(files: &[(String, String)]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for (path, text) in files {
        if !in_core_scope(path) {
            continue;
        }
        let toks = lex(text);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let excluded = test_excluded(&toks, &code);
        let n = panic_sites(&toks, &code, &excluded).len() as u64;
        if n > 0 {
            out.insert(path.clone(), n);
        }
    }
    out
}

// ---------------------------------------------------------------------
// #[cfg(test)] exclusion
// ---------------------------------------------------------------------

/// Mark tokens inside `#[cfg(test)]` / `#[test]`-attributed items.
/// Works on the code-token view, so braces inside strings or comments
/// cannot confuse the matcher (the lexer already swallowed them).
fn test_excluded(toks: &[Tok<'_>], code: &[usize]) -> Vec<bool> {
    let mut excluded = vec![false; toks.len()];
    let mut p = 0;
    while p < code.len() {
        let t = &toks[code[p]];
        if !t.is_punct('#') || p + 1 >= code.len() || !toks[code[p + 1]].is_punct('[') {
            p += 1;
            continue;
        }
        // Scan the attribute body for the ident `test`.
        let mut q = p + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        while q < code.len() && depth > 0 {
            let a = &toks[code[q]];
            if a.is_punct('[') {
                depth += 1;
            } else if a.is_punct(']') {
                depth -= 1;
            } else if a.is_ident("test") {
                has_test = true;
            }
            q += 1;
        }
        if !has_test {
            p = q;
            continue;
        }
        let attr_start = code[p];
        // Find the item body: `{…}` brace-matched, or a brace-less
        // item ending in `;`. Further attributes in between are fine.
        let mut r = q;
        let mut end_tok = None;
        while r < code.len() {
            let a = &toks[code[r]];
            if a.is_punct('{') {
                let mut bd = 1usize;
                let mut s = r + 1;
                while s < code.len() && bd > 0 {
                    if toks[code[s]].is_punct('{') {
                        bd += 1;
                    } else if toks[code[s]].is_punct('}') {
                        bd -= 1;
                    }
                    s += 1;
                }
                end_tok = Some(code[s.saturating_sub(1)]);
                r = s;
                break;
            }
            if a.is_punct(';') {
                end_tok = Some(code[r]);
                r += 1;
                break;
            }
            r += 1;
        }
        if let Some(end) = end_tok {
            for slot in excluded.iter_mut().take(end + 1).skip(attr_start) {
                *slot = true;
            }
        }
        p = r.max(p + 1);
    }
    excluded
}

// ---------------------------------------------------------------------
// Escape-hatch directives
// ---------------------------------------------------------------------

fn collect_directives(ctxs: &[FileCtx<'_>]) -> Vec<Directive> {
    let mut out = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        for (ti, t) in ctx.toks.iter().enumerate() {
            // Directives are plain `//` comments only: doc comments
            // (`///`, `//!`) merely *describe* the syntax.
            if t.kind != TokKind::LineComment
                || t.text.starts_with("///")
                || t.text.starts_with("//!")
            {
                continue;
            }
            let Some(at) = t.text.find("lint:") else {
                continue;
            };
            let rest = t.text[at + "lint:".len()..].trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || matches!(c, '-' | '—' | '–' | ':' | '*' | '/')
                })
                .trim();
            // Trailing form covers its own line; standalone form covers
            // the next code line.
            let own = t.line;
            let shares_line = ctx.toks[..ti]
                .iter()
                .rev()
                .take_while(|p| p.line == own)
                .any(|p| !p.is_comment());
            let next_code_line = if shares_line {
                own
            } else {
                ctx.toks[ti + 1..]
                    .iter()
                    .find(|p| !p.is_comment())
                    .map_or(own, |p| p.line)
            };
            out.push(Directive {
                file: fi,
                known_rule: RULES.contains(&rule.as_str()),
                rule,
                line: own,
                targets: [own, next_code_line],
                reason_ok: !reason.is_empty(),
                used: false,
            });
        }
    }
    out
}

/// Is there a comment on `line` or the `back` lines above it? Used by
/// the justification rules; lint directives themselves don't count.
fn has_adjacent_comment(ctx: &FileCtx<'_>, line: u32, back: u32, needle: Option<&str>) -> bool {
    ctx.toks.iter().any(|t| {
        t.is_comment()
            && t.line + back >= line
            && t.line <= line
            && !t.text.contains("lint:")
            && needle.is_none_or(|n| t.text.contains(n))
    })
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn rule_default_hasher(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for &i in &ctx.code {
        if ctx.excluded[i] {
            continue;
        }
        let t = &ctx.toks[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Finding {
                rule: "default-hasher",
                path: ctx.path.to_string(),
                line: t.line,
                msg: format!(
                    "std {} uses the per-process randomized hasher; use FxHashMap/FxHashSet or BTreeMap",
                    t.text
                ),
            });
        }
    }
}

/// Pass 1 of `unordered-iter`: names bound to hash-typed values.
/// Walks backwards from each hash-type token through type position
/// (idents, lifetimes, `<`, `&`) to the `name :` or `name =` that
/// binds it.
fn collect_hashy_names(ctx: &FileCtx<'_>, out: &mut Vec<String>) {
    let toks = &ctx.toks;
    let code = &ctx.code;
    for (p, &i) in code.iter().enumerate() {
        if ctx.excluded[i] || !HASH_TYPES.contains(&toks[i].text) || toks[i].kind != TokKind::Ident
        {
            continue;
        }
        let mut q = p;
        while q > 0 {
            q -= 1;
            let t = &toks[code[q]];
            if t.is_punct(':') {
                if q > 0 && toks[code[q - 1]].is_punct(':') {
                    q -= 1; // `::` path separator — keep walking
                    continue;
                }
                if q > 0 && toks[code[q - 1]].kind == TokKind::Ident {
                    out.push(toks[code[q - 1]].text.to_string());
                }
                break;
            }
            if t.is_punct('=') {
                if q > 0 && toks[code[q - 1]].kind == TokKind::Ident {
                    let name = toks[code[q - 1]].text;
                    if name != "Target" && name != "Item" {
                        out.push(name.to_string());
                    }
                }
                break;
            }
            let type_position = t.kind == TokKind::Ident
                || t.kind == TokKind::Lifetime
                || t.is_punct('<')
                || t.is_punct('&');
            if !type_position {
                break;
            }
        }
    }
}

/// Pass 2: flag order-dependent consumption of those names.
fn rule_unordered_iter(ctx: &FileCtx<'_>, hashy: &[String], out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let code = &ctx.code;
    let is_hashy = |t: &Tok<'_>| {
        t.kind == TokKind::Ident && hashy.binary_search_by(|n| n.as_str().cmp(t.text)).is_ok()
    };
    for (p, &i) in code.iter().enumerate() {
        if ctx.excluded[i] || !is_hashy(&toks[i]) {
            continue;
        }
        // `name.iter()` / `name.keys()` / …
        if p + 2 < code.len()
            && toks[code[p + 1]].is_punct('.')
            && ITER_METHODS.contains(&toks[code[p + 2]].text)
            && code.get(p + 3).is_some_and(|&j| toks[j].is_punct('('))
        {
            out.push(Finding {
                rule: "unordered-iter",
                path: ctx.path.to_string(),
                line: toks[code[p + 2]].line,
                msg: format!(
                    "{}.{}() visits hash order — sort first, switch to BTreeMap, or justify with an allow",
                    toks[i].text,
                    toks[code[p + 2]].text
                ),
            });
            continue;
        }
        // `for pat in name` / `for pat in &name` / `for pat in &mut name`
        // (but not `for x in name.len()..` etc. — only when the name is
        // the whole iterated expression).
        let followed_by_access = code
            .get(p + 1)
            .is_some_and(|&j| toks[j].is_punct('.') || toks[j].is_punct('['));
        if followed_by_access {
            continue;
        }
        let mut q = p;
        while q > 0 {
            let t = &toks[code[q - 1]];
            if t.is_punct('&') || t.is_ident("mut") {
                q -= 1;
                continue;
            }
            // Walk over a field path: `self.pending`, `node.acked`, …
            if q > 1 && t.is_punct('.') && toks[code[q - 2]].kind == TokKind::Ident {
                q -= 2;
                continue;
            }
            break;
        }
        if q > 0 && toks[code[q - 1]].is_ident("in") {
            out.push(Finding {
                rule: "unordered-iter",
                path: ctx.path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "`for … in {}` visits hash order — sort first, switch to BTreeMap, or justify with an allow",
                    toks[i].text
                ),
            });
        }
    }
}

fn rule_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // The sanctioned wall-clock homes: the allocator shim (its numbers
    // are masked from fingerprints), bench/perf-gate code, and the
    // campaign runner (its wall totals are display-only — the canonical
    // report masks them exactly like `RunReport::fingerprint`).
    if ctx.path == "crates/sim/src/mem.rs"
        || ctx.path.contains("bench")
        || ctx.path == "crates/core/src/campaign/runner.rs"
    {
        return;
    }
    let toks = &ctx.toks;
    let code = &ctx.code;
    for (p, &i) in code.iter().enumerate() {
        if ctx.excluded[i] {
            continue;
        }
        let t = &toks[i];
        let instant_now = t.is_ident("Instant")
            && p + 3 < code.len()
            && toks[code[p + 1]].is_punct(':')
            && toks[code[p + 2]].is_punct(':')
            && toks[code[p + 3]].is_ident("now");
        if instant_now || t.is_ident("SystemTime") {
            out.push(Finding {
                rule: "wall-clock",
                path: ctx.path.to_string(),
                line: t.line,
                msg: format!(
                    "{} reads the wall clock in engine code — sim time must come from the event clock",
                    if instant_now { "Instant::now" } else { "SystemTime" }
                ),
            });
        }
    }
}

fn rule_shared_state(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let code = &ctx.code;
    let mut push = |line: u32, what: &str| {
        out.push(Finding {
            rule: "shared-state",
            path: ctx.path.to_string(),
            line,
            msg: format!("{what} introduces shared mutable state outside the sanctioned files"),
        });
    };
    for (p, &i) in code.iter().enumerate() {
        if ctx.excluded[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("Mutex") || t.is_ident("RwLock") {
            push(t.line, t.text);
        } else if t.is_ident("static") && code.get(p + 1).is_some_and(|&j| toks[j].is_ident("mut"))
        {
            push(t.line, "static mut");
        } else if t.is_ident("thread_local")
            && code.get(p + 1).is_some_and(|&j| toks[j].is_punct('!'))
        {
            push(t.line, "thread_local!");
        }
    }
}

fn rule_atomic_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let code = &ctx.code;
    for (p, &i) in code.iter().enumerate() {
        if ctx.excluded[i] || !toks[i].is_ident("Ordering") {
            continue;
        }
        let variant = (p + 3 < code.len()
            && toks[code[p + 1]].is_punct(':')
            && toks[code[p + 2]].is_punct(':')
            && ATOMIC_ORDERINGS.contains(&toks[code[p + 3]].text))
        .then(|| toks[code[p + 3]].text);
        let Some(variant) = variant else {
            continue; // cmp::Ordering::Less etc. — not an atomic
        };
        let line = toks[i].line;
        if !has_adjacent_comment(ctx, line, 2, None) {
            out.push(Finding {
                rule: "atomic-ordering",
                path: ctx.path.to_string(),
                line,
                msg: format!(
                    "Ordering::{variant} needs a justification comment on this line or the two above"
                ),
            });
        }
    }
}

fn rule_undocumented_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for &i in &ctx.code {
        if ctx.excluded[i] || !ctx.toks[i].is_ident("unsafe") {
            continue;
        }
        let line = ctx.toks[i].line;
        if !has_adjacent_comment(ctx, line, 3, Some("SAFETY")) {
            out.push(Finding {
                rule: "undocumented-unsafe",
                path: ctx.path.to_string(),
                line,
                msg: "unsafe without a `// SAFETY:` comment on this line or the three above"
                    .to_string(),
            });
        }
    }
}

/// Panic sites (`unwrap(` / `expect(` / `panic!`) outside test code,
/// as `(code-position, line)` pairs.
fn panic_sites(toks: &[Tok<'_>], code: &[usize], excluded: &[bool]) -> Vec<(usize, u32)> {
    let mut sites = Vec::new();
    for (p, &i) in code.iter().enumerate() {
        if excluded[i] {
            continue;
        }
        let t = &toks[i];
        let call = |name: &str| {
            t.is_ident(name) && code.get(p + 1).is_some_and(|&j| toks[j].is_punct('('))
        };
        let is_macro =
            t.is_ident("panic") && code.get(p + 1).is_some_and(|&j| toks[j].is_punct('!'));
        if call("unwrap") || call("expect") || is_macro {
            sites.push((p, t.line));
        }
    }
    sites
}

fn rule_panic_budget(
    ctx: &FileCtx<'_>,
    fi: usize,
    cfg: &Config,
    directives: &mut [Directive],
    out: &mut Vec<Finding>,
) {
    let sites = panic_sites(&ctx.toks, &ctx.code, &ctx.excluded);
    // An inline allow(panic-budget) exempts its site from the count.
    let mut counted: Vec<u32> = Vec::new();
    'site: for &(_, line) in &sites {
        for d in directives.iter_mut() {
            if d.file == fi
                && d.rule == "panic-budget"
                && d.known_rule
                && d.reason_ok
                && d.targets.contains(&line)
            {
                d.used = true;
                continue 'site;
            }
        }
        counted.push(line);
    }
    let budget = cfg.budgets.get(ctx.path).copied().unwrap_or(0);
    let n = counted.len() as u64;
    if n > budget {
        let first_excess = counted[budget as usize];
        out.push(Finding {
            rule: "panic-budget",
            path: ctx.path.to_string(),
            line: first_excess,
            msg: format!(
                "{n} panic sites (unwrap/expect/panic!) but the pinned budget is {budget} — handle the error or re-pin in lint/allow.toml"
            ),
        });
    } else if n < budget {
        out.push(Finding {
            rule: "stale-allow",
            path: ctx.path.to_string(),
            line: 0,
            msg: format!(
                "panic budget {budget} exceeds the real count {n} — tighten the pin in lint/allow.toml"
            ),
        });
    }
}
