//! manet-lint: the workspace's in-repo determinism & shard-safety
//! static analyzer.
//!
//! The simulator's north star is "byte-identical traces under every
//! executor". The golden-trace and differential suites prove that
//! *dynamically*, per run; this crate states the underlying source
//! invariants as rules and rejects violations at build time:
//!
//! | rule                 | invariant                                              |
//! |----------------------|--------------------------------------------------------|
//! | `default-hasher`     | no std `HashMap`/`HashSet` in core/crypto/sim          |
//! | `unordered-iter`     | no hash-order iteration feeding the event stream       |
//! | `wall-clock`         | `Instant::now`/`SystemTime` only in mem.rs / bench / campaign runner |
//! | `shared-state`       | `Mutex`/`RwLock`/`static mut`/`thread_local!` only in  |
//! |                      | sanctioned files (`crypto/src/batch.rs`)               |
//! | `atomic-ordering`    | every `Ordering::Relaxed`/`SeqCst` justified inline    |
//! | `undocumented-unsafe`| every `unsafe` carries a `// SAFETY:` comment          |
//! | `panic-budget`       | per-file `unwrap`/`expect`/`panic!` counts pinned      |
//!
//! Escape hatch: `// lint: allow(rule) — reason` inline (reason
//! mandatory), or a `[[allow]]` entry in `lint/allow.toml`. Both are
//! checked for staleness: an exception that suppresses nothing fails
//! the build.
//!
//! Two entry points keep the pass load-bearing: the `manet-lint` bin
//! (`cargo run -p manet-lint -- --deny`) for CI, and the workspace
//! test `tests/lint.rs`, which calls [`run`] so plain tier-1
//! `cargo test` enforces the same rules.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{lint_sources, panic_counts, Finding, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect the workspace sources under `root`: every `crates/*/src`
/// tree, as `(workspace-relative path, contents)` pairs in sorted
/// order (the report must not depend on directory-walk order).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, fs::read_to_string(&path)?));
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load `lint/allow.toml` under `root` (absent file = empty baseline;
/// a malformed file is a hard error, never a silent allow-all).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint").join("allow.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Lint the workspace at `root`: the single entry point shared by the
/// CLI and `tests/lint.rs`. Returns the surviving findings (empty =
/// clean).
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let cfg = load_config(root)?;
    let files = workspace_sources(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    Ok(lint_sources(&files, &cfg))
}

/// Locate the workspace root from the environment: explicit argument,
/// else `CARGO_MANIFEST_DIR/../..` (this crate lives at
/// `crates/lint`), else the current directory.
pub fn default_root() -> PathBuf {
    if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
        let p = Path::new(dir);
        if let Some(ws) = p.parent().and_then(Path::parent) {
            if ws.join("Cargo.toml").is_file() {
                return ws.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}
