//! The committed baseline: `lint/allow.toml`.
//!
//! Two sections, parsed by a deliberately tiny TOML-subset reader (the
//! workspace is offline; a config format is not worth a vendored
//! dependency):
//!
//! * `[[allow]]` — file-scoped exceptions. Every entry must carry
//!   `rule`, `path` (workspace-relative), and a non-empty `reason`.
//!   An entry that suppresses nothing is *stale* and fails the
//!   self-check, so dead exceptions cannot accumulate.
//! * `[panic-budget]` — per-file pinned counts of panic sites
//!   (`unwrap(` / `expect(` / `panic!`) outside `#[cfg(test)]`.
//!   A file over its budget is a violation; a budget above the real
//!   count is stale (the pin must move down with the code). Files not
//!   listed have budget 0.
//!
//! Supported TOML subset: `#` comments, `[section]`, `[[array-of-
//! tables]]`, `key = "string"` (with `\"`, `\\`, `\n`, `\t` escapes),
//! `"quoted key" = integer`, bare integer values. Anything else is a
//! hard parse error with a line number — a config that cannot be read
//! must fail loudly, not silently allow everything.

use std::collections::BTreeMap;
use std::fmt;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileAllow {
    pub rule: String,
    pub path: String,
    pub reason: String,
}

/// Parsed `lint/allow.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    pub allows: Vec<FileAllow>,
    /// Pinned panic-site counts, keyed by workspace-relative path.
    /// `BTreeMap` so reports iterate in path order.
    pub budgets: BTreeMap<String, u64>,
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

#[derive(PartialEq)]
enum Section {
    None,
    Allow,
    PanicBudget,
}

impl Config {
    pub fn parse(text: &str) -> Result<Config, ParseError> {
        let mut cfg = Config::default();
        let mut section = Section::None;
        // Fields of the [[allow]] entry currently being filled.
        let mut cur: BTreeMap<String, String> = BTreeMap::new();
        let mut cur_open_line = 0usize;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                Self::flush_allow(&mut cfg, &mut cur, cur_open_line)?;
                section = Section::Allow;
                cur_open_line = lineno;
                continue;
            }
            if line == "[panic-budget]" {
                Self::flush_allow(&mut cfg, &mut cur, cur_open_line)?;
                section = Section::PanicBudget;
                continue;
            }
            if line.starts_with('[') {
                return Err(err(
                    lineno,
                    format!("unknown section {line:?} (expected [[allow]] or [panic-budget])"),
                ));
            }
            let (key, value) = split_kv(line, lineno)?;
            match section {
                Section::None => {
                    return Err(err(lineno, "key outside any section"));
                }
                Section::Allow => {
                    let v = parse_string(value, lineno)?;
                    if cur.insert(key.to_string(), v).is_some() {
                        return Err(err(lineno, format!("duplicate key {key:?} in [[allow]]")));
                    }
                }
                Section::PanicBudget => {
                    let n: u64 = value
                        .parse()
                        .map_err(|_| err(lineno, format!("expected an integer, got {value:?}")))?;
                    let path = parse_key(key, lineno)?;
                    if cfg.budgets.insert(path.clone(), n).is_some() {
                        return Err(err(lineno, format!("duplicate budget for {path:?}")));
                    }
                }
            }
        }
        Self::flush_allow(&mut cfg, &mut cur, cur_open_line)?;
        Ok(cfg)
    }

    fn flush_allow(
        cfg: &mut Config,
        cur: &mut BTreeMap<String, String>,
        open_line: usize,
    ) -> Result<(), ParseError> {
        if cur.is_empty() {
            return Ok(());
        }
        let mut take = |k: &str| {
            cur.remove(k)
                .ok_or_else(|| err(open_line, format!("[[allow]] entry missing {k:?}")))
        };
        let entry = FileAllow {
            rule: take("rule")?,
            path: take("path")?,
            reason: take("reason")?,
        };
        if let Some(extra) = cur.keys().next() {
            return Err(err(open_line, format!("unknown [[allow]] key {extra:?}")));
        }
        if entry.reason.trim().is_empty() {
            return Err(err(
                open_line,
                "[[allow]] reason must not be empty — blanket allows are forbidden",
            ));
        }
        cfg.allows.push(entry);
        Ok(())
    }
}

/// Strip a trailing `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str, lineno: usize) -> Result<(&str, &str), ParseError> {
    // The key may be quoted and contain `=`? Paths never do; split on
    // the first `=` outside quotes.
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '=' if !in_str => {
                return Ok((line[..i].trim(), line[i + 1..].trim()));
            }
            _ => {}
        }
    }
    Err(err(lineno, format!("expected `key = value`, got {line:?}")))
}

/// A key: bare (`rule`) or quoted (`"crates/core/src/dns.rs"`).
fn parse_key(key: &str, lineno: usize) -> Result<String, ParseError> {
    if key.starts_with('"') {
        parse_string(key, lineno)
    } else if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_alphanumeric() || "-_./".contains(c))
    {
        Ok(key.to_string())
    } else {
        Err(err(lineno, format!("malformed key {key:?}")))
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ParseError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got {value:?}")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(err(
                    lineno,
                    format!(
                        "unsupported escape \\{}",
                        other.map_or(String::new(), String::from)
                    ),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allows_and_budgets() {
        let cfg = Config::parse(
            r##"
# comment
[[allow]]
rule = "shared-state"           # trailing comment
path = "crates/crypto/src/batch.rs"
reason = "sanctioned shared state"

[[allow]]
rule = "default-hasher"
path = "crates/sim/src/fxhash.rs"
reason = "alias definition site"

[panic-budget]
"crates/core/src/dns.rs" = 12
"crates/sim/src/engine.rs" = 3
"##,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "shared-state");
        assert_eq!(cfg.allows[0].path, "crates/crypto/src/batch.rs");
        assert_eq!(cfg.budgets["crates/core/src/dns.rs"], 12);
        assert_eq!(cfg.budgets.len(), 2);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let e =
            Config::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"  \"\n").unwrap_err();
        assert!(e.msg.contains("blanket"), "{e}");
    }

    #[test]
    fn missing_field_is_rejected_with_entry_line() {
        let e = Config::parse("\n\n[[allow]]\nrule = \"x\"\nreason = \"r\"\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("path"));
    }

    #[test]
    fn unknown_section_and_stray_keys_fail() {
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse("rule = \"x\"\n").is_err());
        assert!(Config::parse(
            "[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"r\"\nbogus = \"z\"\n"
        )
        .is_err());
    }

    #[test]
    fn duplicate_budget_fails() {
        let e = Config::parse("[panic-budget]\n\"a.rs\" = 1\n\"a.rs\" = 2\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn hash_inside_quoted_value_is_not_a_comment() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"issue #42 says so\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows[0].reason, "issue #42 says so");
    }

    #[test]
    fn garbage_integer_fails() {
        assert!(Config::parse("[panic-budget]\n\"a.rs\" = twelve\n").is_err());
    }
}
