//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p manet-lint -- --deny            # CI: exit 1 on findings
//! cargo run -p manet-lint                      # report only, exit 0
//! cargo run -p manet-lint -- --budgets         # print the real panic
//!                                              # counts as a [panic-budget]
//!                                              # section to paste into
//!                                              # lint/allow.toml
//! cargo run -p manet-lint -- --root path/to/ws
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut budgets = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--budgets" => budgets = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("manet-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: manet-lint [--root DIR] [--deny] [--budgets]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("manet-lint: unknown flag {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(manet_lint::default_root);

    if budgets {
        return match manet_lint::workspace_sources(&root) {
            Ok(files) => {
                println!("[panic-budget]");
                for (path, n) in manet_lint::panic_counts(&files) {
                    println!("\"{path}\" = {n}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("manet-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match manet_lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("manet-lint: clean ({} rules)", manet_lint::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("manet-lint: {} finding(s)", findings.len());
            if deny {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("manet-lint: {e}");
            ExitCode::from(2)
        }
    }
}
