//! A small but honest Rust lexer.
//!
//! The rules in [`crate::rules`] must match *tokens*, never text that
//! happens to sit inside a string literal or a comment — a doc comment
//! mentioning `HashMap` or a test fixture embedding `unsafe` in a raw
//! string is not a violation. This lexer covers exactly the surface
//! needed for that guarantee:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   nested arbitrarily, doc or not) — kept as tokens, because the
//!   escape-hatch (`// lint: allow(..)`) and the justification rules
//!   (`// SAFETY:`) read them;
//! * string-ish literals: `"…"` with escapes, raw strings `r"…"` /
//!   `r#"…"#` (any hash depth), byte strings `b"…"` / `br#"…"#`,
//!   C strings `c"…"` / `cr#"…"#`;
//! * char literals vs lifetimes: `'a'` is a char, `'a` is a lifetime,
//!   `'\''` and `'\u{41}'` are chars;
//! * identifiers (including raw `r#ident`), numbers, and single-char
//!   punctuation — enough to recognize `Ordering::Relaxed`,
//!   `.keys()`, `panic!`, `static mut`, and `#[cfg(test)]` shapes.
//!
//! It does not build an AST and does not need to: every launch rule is
//! expressible over this token stream plus line numbers.

/// Token classes. Code rules skip `LineComment`/`BlockComment`;
/// comment-driven rules (allow directives, SAFETY checks) read them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    CharLit,
    StrLit,
    NumLit,
    Punct,
    LineComment,
    BlockComment,
}

/// One token: class, exact source text, and 1-based line of its first
/// character.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Tokenize `src`. Unterminated constructs (string, block comment) are
/// closed at EOF rather than erroring: the linter must degrade
/// gracefully on code that rustc itself will reject.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment(start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment(start, line);
                }
                b'"' => {
                    self.pos += 1;
                    self.take_str_body(start, line);
                }
                b'\'' => self.take_char_or_lifetime(start, line),
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    self.take_ident_or_prefixed(start, line)
                }
                _ if b.is_ascii_digit() => self.take_number(start, line),
                _ => {
                    // One punct per char; multi-byte UTF-8 advances whole.
                    let ch_len = utf8_len(b);
                    self.pos += ch_len;
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn bump_lines(&mut self, from: usize) {
        self.line += self.bytes[from..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn take_line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn take_block_comment(&mut self, start: usize, line: u32) {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let from = start;
        self.push(TokKind::BlockComment, start, line);
        self.bump_lines(from);
    }

    /// Body of a non-raw string/byte-string; `self.pos` sits after the
    /// opening quote.
    fn take_str_body(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2.min(self.bytes.len() - self.pos),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::StrLit, start, line);
        self.bump_lines(start);
    }

    /// Raw string at `r`/`br`/`cr` prefix: `self.pos` sits on the first
    /// `#` or the opening quote. Returns false if it is not actually a
    /// raw string (e.g. `r#ident`).
    fn try_take_raw_str(&mut self, start: usize, line: u32) -> bool {
        let mut p = self.pos;
        let mut hashes = 0usize;
        while self.bytes.get(p) == Some(&b'#') {
            hashes += 1;
            p += 1;
        }
        if self.bytes.get(p) != Some(&b'"') {
            return false;
        }
        p += 1;
        // Scan for `"` followed by `hashes` hashes.
        loop {
            match self.bytes.get(p) {
                None => break,
                Some(b'"') => {
                    let end = p + 1;
                    if self.bytes[end..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count()
                        == hashes
                    {
                        p = end + hashes;
                        break;
                    }
                    p += 1;
                }
                Some(_) => p += 1,
            }
        }
        self.pos = p;
        self.push(TokKind::StrLit, start, line);
        self.bump_lines(start);
        true
    }

    fn take_char_or_lifetime(&mut self, start: usize, line: u32) {
        // self.pos is on the opening `'`.
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => after != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, start, line);
            return;
        }
        // Char literal: 'x', '\n', '\'', '\u{1F600}'.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2.min(self.bytes.len() - self.pos),
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // malformed; don't swallow the file
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::CharLit, start, line);
    }

    fn take_ident_or_prefixed(&mut self, start: usize, line: u32) {
        // Raw-string / byte-string / c-string prefixes first.
        let rest = &self.bytes[self.pos..];
        let prefix_len = raw_str_prefix(rest);
        if let Some(len) = prefix_len {
            self.pos += len;
            if self.bytes.get(self.pos) == Some(&b'"') && rest[len - 1] != b'r' {
                // b"…" / c"…": escaped like a normal string.
                self.pos += 1;
                self.take_str_body(start, line);
                return;
            }
            if rest[len - 1] == b'r' && self.try_take_raw_str(start, line) {
                return;
            }
            // Not a literal after all (e.g. `r#ident`, or plain ident
            // starting with b/c/r): fall through to ident lexing.
            self.pos = start;
        }
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            // Raw identifier r#type: skip the prefix, keep the ident text.
            self.pos += 2;
            let id_start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.out.push(Tok {
                kind: TokKind::Ident,
                text: &self.src[id_start..self.pos],
                line,
            });
            return;
        }
        if self.bytes.get(self.pos) == Some(&b'b') && self.peek(1) == Some(b'\'') {
            // Byte char b'x'.
            self.pos += 1;
            self.take_char_or_lifetime(start, line);
            return;
        }
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, line);
    }

    fn take_number(&mut self, start: usize, line: u32) {
        while let Some(b) = self.peek(0) {
            let part_of_number = b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !part_of_number {
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::NumLit, start, line);
    }
}

/// If `rest` starts with a string-literal prefix (`r`, `b`, `br`, `c`,
/// `cr`) that *could* introduce a literal, return the prefix length.
/// The caller still verifies a quote/hash actually follows.
fn raw_str_prefix(rest: &[u8]) -> Option<usize> {
    let two = |a: u8, b: u8| rest.len() >= 2 && rest[0] == a && rest[1] == b;
    let follows_literal = |at: usize| matches!(rest.get(at), Some(b'"') | Some(b'#'));
    if (two(b'b', b'r') || two(b'c', b'r')) && follows_literal(2) {
        return Some(2);
    }
    if !rest.is_empty() && matches!(rest[0], b'r' | b'b' | b'c') && rest.get(1) == Some(&b'"') {
        return Some(1);
    }
    if !rest.is_empty() && rest[0] == b'r' && rest.get(1) == Some(&b'#') {
        // Could be r#"…"# or a raw ident r#foo; try_take_raw_str decides.
        return Some(1);
    }
    None
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_inside_strings_is_not_tokenized() {
        let src = r##"let s = "use std::collections::HashMap; unsafe {}";"##;
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ HashMap";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "HashMap"));
    }

    #[test]
    fn block_comment_line_counting_spans_newlines() {
        let src = "/* a\nb\nc */\nHashMap";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4, "ident after 3-line comment");
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_code() {
        let src = r###"let x = r#"embedded "quote" and HashMap::new()"#; y"###;
        assert_eq!(idents(src), vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_string_zero_hashes() {
        let src = r#"r"no hashes HashMap" z"#;
        assert_eq!(idents(src), vec!["z"]);
    }

    #[test]
    fn byte_strings_and_c_strings_are_literals() {
        assert_eq!(idents(r#"b"HashMap" x"#), vec!["x"]);
        assert_eq!(idents(r##"br#"HashMap"# x"##), vec!["x"]);
        assert_eq!(idents(r#"c"HashMap" x"#), vec!["x"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn quote_escape_char_literal() {
        let toks = kinds(r"let q = '\''; let bs = '\\'; x");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'"]);
        assert!(toks.contains(&(TokKind::Ident, "x")));
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = kinds("static S: &'static str = \"s\";");
        assert!(toks.contains(&(TokKind::Lifetime, "'static")));
    }

    #[test]
    fn raw_identifier_keeps_name_without_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_char_is_a_char_literal() {
        let toks = kinds("let b = b'x'; y");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::CharLit && t.contains('x')));
        assert!(toks.contains(&(TokKind::Ident, "y")));
    }

    #[test]
    fn line_comment_runs_to_eol_only() {
        let toks = kinds("// HashMap here\nHashSet");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert_eq!(toks[1], (TokKind::Ident, "HashSet"));
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(u32, &str)> = toks.iter().map(|t| (t.line, t.text)).collect();
        assert_eq!(lines, vec![(1, "a"), (2, "b"), (4, "c")]);
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = kinds("0..10 1.5 0xff_u32 1e3");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::NumLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "0xff_u32", "1e3"]);
    }

    #[test]
    fn unterminated_string_closes_at_eof() {
        let toks = kinds("let s = \"unterminated");
        assert_eq!(toks.last().unwrap().0, TokKind::StrLit);
    }

    #[test]
    fn multiline_string_line_accounting() {
        let toks = lex("\"a\nb\"\nident");
        assert_eq!(toks[0].kind, TokKind::StrLit);
        assert_eq!(toks[1].line, 3);
    }
}
