//! End-to-end runs of the `manet-lint` binary: the real workspace must
//! be clean under `--deny`, and a fixture tree with a known violation
//! must make `--deny` exit non-zero.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_manet-lint"))
}

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

/// A throwaway tree under the target dir with one deliberately bad file.
/// (target/ is outside the scanner's view of the real workspace, and the
/// test recreates the tree from scratch on every run.)
fn fixture_root(name: &str, src: &str) -> PathBuf {
    let root = workspace_root()
        .join("target")
        .join("lint-fixtures")
        .join(name);
    let dir = root.join("crates/core/src");
    std::fs::create_dir_all(&dir).expect("create fixture tree");
    std::fs::write(dir.join("lib.rs"), src).expect("write fixture source");
    root
}

#[test]
fn deny_is_clean_on_the_real_workspace() {
    let out = bin()
        .arg("--deny")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run manet-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "manet-lint --deny failed on the workspace:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("clean"), "unexpected output: {stdout}");
}

#[test]
fn deny_fails_on_a_known_bad_tree() {
    let root = fixture_root(
        "bad-hasher",
        "use std::collections::HashMap;\npub fn f() -> HashMap<u8, u8> { HashMap::new() }\n",
    );
    let out = bin()
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run manet-lint");
    assert_eq!(out.status.code(), Some(1), "expected deny exit code 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("default-hasher"),
        "finding not reported: {stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/lib.rs:1"),
        "path:line missing: {stdout}"
    );
}

#[test]
fn budgets_flag_emits_a_pin_section() {
    let root = fixture_root("budgets", "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n");
    let out = bin()
        .arg("--budgets")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run manet-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[panic-budget]"), "got: {stdout}");
    assert!(
        stdout.contains("\"crates/core/src/lib.rs\" = 1"),
        "got: {stdout}"
    );
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let root = fixture_root("bad-config", "pub fn f() {}\n");
    let lint_dir = root.join("lint");
    std::fs::create_dir_all(&lint_dir).expect("create lint dir");
    std::fs::write(
        lint_dir.join("allow.toml"),
        "[[allow]]\nrule = \"shared-state\"\npath = \"crates/core/src/lib.rs\"\n",
    )
    .expect("write baseline");
    let out = bin()
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run manet-lint");
    assert_eq!(out.status.code(), Some(2), "config errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("allow.toml"), "got: {stderr}");
}
