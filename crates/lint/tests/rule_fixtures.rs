//! Per-rule fixtures: every launch rule has (a) a known-bad snippet
//! that must fire and (b) an escape-hatch snippet that must suppress it
//! — but only when the allow carries a reason. Paths matter: rules are
//! scoped per crate, so fixtures place themselves in `crates/core/src`
//! (in scope) or `crates/wire/src` (out of scope) as needed.

use manet_lint::{lint_sources, Config, Finding};

fn lint_one(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())], &Config::default())
}

fn lint_one_with(path: &str, src: &str, cfg: &str) -> Vec<Finding> {
    let cfg = Config::parse(cfg).expect("fixture config parses");
    lint_sources(&[(path.to_string(), src.to_string())], &cfg)
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// --- default-hasher --------------------------------------------------

#[test]
fn default_hasher_fires_in_core_scope() {
    let f = lint_one(
        "crates/core/src/fixture.rs",
        "use std::collections::HashMap;\n",
    );
    assert_eq!(rules_fired(&f), vec!["default-hasher"]);
    assert_eq!(f[0].line, 1);
}

#[test]
fn default_hasher_ignores_out_of_scope_crates_and_strings_and_tests() {
    // Out of scope: wire is codec code, not protocol/engine state.
    assert!(lint_one(
        "crates/wire/src/fixture.rs",
        "use std::collections::HashMap;\n"
    )
    .is_empty());
    // Inside a string or comment: the lexer must shield it.
    assert!(lint_one(
        "crates/core/src/fixture.rs",
        "// HashMap in prose\nconst S: &str = \"HashMap\";\n"
    )
    .is_empty());
    // Inside #[cfg(test)]: tests may use std maps freely.
    assert!(lint_one(
        "crates/core/src/fixture.rs",
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n"
    )
    .is_empty());
}

#[test]
fn default_hasher_allow_needs_a_reason() {
    // With a reason: suppressed, nothing else fires.
    let ok = lint_one(
        "crates/core/src/fixture.rs",
        "// lint: allow(default-hasher) — alias definition site\nuse std::collections::HashMap;\n",
    );
    assert!(ok.is_empty(), "allowed with reason, got {ok:?}");
    // Without a reason: the violation stays AND the directive is flagged.
    let bad = lint_one(
        "crates/core/src/fixture.rs",
        "// lint: allow(default-hasher)\nuse std::collections::HashMap;\n",
    );
    assert_eq!(rules_fired(&bad), vec!["default-hasher", "lint-directive"]);
}

#[test]
fn unknown_rule_in_allow_is_flagged() {
    let f = lint_one(
        "crates/core/src/fixture.rs",
        "// lint: allow(no-such-rule) — whatever\nfn f() {}\n",
    );
    assert_eq!(rules_fired(&f), vec!["lint-directive"]);
}

#[test]
fn stale_inline_allow_is_flagged() {
    let f = lint_one(
        "crates/core/src/fixture.rs",
        "// lint: allow(default-hasher) — left over after a refactor\nfn f() {}\n",
    );
    assert_eq!(rules_fired(&f), vec!["stale-allow"]);
}

// --- unordered-iter --------------------------------------------------

#[test]
fn unordered_iter_fires_on_field_and_for_loop() {
    let src = "\
use crate::fxhash::FxHashMap;
struct S { pending: FxHashMap<u64, u32> }
impl S {
    fn f(&self) -> u32 { self.pending.values().sum() }
    fn g(&self) { for (_k, _v) in &self.pending {} }
}
";
    let f = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&f), vec!["unordered-iter"]);
    assert_eq!(f.len(), 2, "both the .values() and the for-loop: {f:?}");
}

#[test]
fn unordered_iter_lookups_are_fine_and_allow_suppresses() {
    let ok = "\
use crate::fxhash::FxHashMap;
struct S { pending: FxHashMap<u64, u32> }
impl S {
    fn f(&self, k: u64) -> Option<u32> { self.pending.get(&k).copied() }
}
";
    assert!(lint_one("crates/core/src/fixture.rs", ok).is_empty());
    let allowed = "\
use crate::fxhash::FxHashMap;
struct S { pending: FxHashMap<u64, u32> }
impl S {
    fn f(&self) -> u32 {
        // lint: allow(unordered-iter) — sum is order-insensitive
        self.pending.values().sum()
    }
}
";
    assert!(lint_one("crates/core/src/fixture.rs", allowed).is_empty());
}

#[test]
fn unordered_iter_sees_fields_declared_in_sibling_files_of_same_crate() {
    let decl = (
        "crates/core/src/state.rs".to_string(),
        "use crate::fxhash::FxHashMap;\npub struct S { pub pending: FxHashMap<u64, u32> }\n"
            .to_string(),
    );
    let usage = (
        "crates/core/src/logic.rs".to_string(),
        "fn f(s: &crate::state::S) -> u32 { s.pending.keys().count() as u32 }\n".to_string(),
    );
    let f = lint_sources(&[decl, usage], &Config::default());
    assert_eq!(rules_fired(&f), vec!["unordered-iter"]);
    assert_eq!(f[0].path, "crates/core/src/logic.rs");
}

// --- wall-clock ------------------------------------------------------

#[test]
fn wall_clock_fires_except_in_sanctioned_files() {
    let src = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let f = lint_one("crates/sim/src/engine_fixture.rs", src);
    assert_eq!(rules_fired(&f), vec!["wall-clock"]);
    // The allocator shim, bench code, and the campaign runner (wall
    // totals are display-only, masked out of the canonical report) are
    // the sanctioned homes.
    assert!(lint_one("crates/sim/src/mem.rs", src).is_empty());
    assert!(lint_one("crates/bench/src/tables.rs", src).is_empty());
    assert!(lint_one("crates/core/src/campaign/runner.rs", src).is_empty());
    // SystemTime is never fine in engine code.
    let f = lint_one(
        "crates/core/src/fixture.rs",
        "fn t() { let _ = std::time::SystemTime::now(); }\n",
    );
    assert_eq!(rules_fired(&f), vec!["wall-clock"]);
}

// --- shared-state ----------------------------------------------------

#[test]
fn shared_state_fires_and_file_allowlist_suppresses() {
    let src = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
    let f = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&f), vec!["shared-state"]);
    let cfg = "[[allow]]\nrule = \"shared-state\"\npath = \"crates/core/src/fixture.rs\"\nreason = \"fixture: sanctioned\"\n";
    assert!(lint_one_with("crates/core/src/fixture.rs", src, cfg).is_empty());
}

#[test]
fn shared_state_catches_static_mut_and_thread_local() {
    let f = lint_one(
        "crates/sim/src/fixture.rs",
        "static mut COUNTER: u32 = 0;\nthread_local! { static TL: u8 = 0; }\n",
    );
    assert_eq!(rules_fired(&f), vec!["shared-state"]);
    assert_eq!(f.len(), 2);
    // A plain (immutable, non-cell) static is not shared *mutable* state.
    assert!(lint_one("crates/sim/src/fixture.rs", "static N: u32 = 7;\n").is_empty());
}

#[test]
fn stale_config_allow_is_flagged() {
    let cfg = "[[allow]]\nrule = \"shared-state\"\npath = \"crates/core/src/fixture.rs\"\nreason = \"nothing here uses locks anymore\"\n";
    let f = lint_one_with("crates/core/src/fixture.rs", "fn f() {}\n", cfg);
    assert_eq!(rules_fired(&f), vec!["stale-allow"]);
}

// --- atomic-ordering -------------------------------------------------

#[test]
fn atomic_ordering_needs_adjacent_justification() {
    let bare = "use std::sync::atomic::{AtomicU64, Ordering};\nstatic C: AtomicU64 = AtomicU64::new(0);\nfn f() { C.fetch_add(1, Ordering::Relaxed); }\n";
    let f = lint_one("crates/sim/src/fixture.rs", bare);
    assert_eq!(rules_fired(&f), vec!["atomic-ordering"]);
    let justified = "use std::sync::atomic::{AtomicU64, Ordering};\nstatic C: AtomicU64 = AtomicU64::new(0);\nfn f() { C.fetch_add(1, Ordering::Relaxed); } // Relaxed: test counter\n";
    assert!(lint_one("crates/sim/src/fixture.rs", justified).is_empty());
}

#[test]
fn cmp_ordering_is_not_an_atomic() {
    let src = "use std::cmp::Ordering;\nfn f(a: u32, b: u32) -> Ordering { a.cmp(&b).then(Ordering::Less) }\n";
    assert!(lint_one("crates/core/src/fixture.rs", src).is_empty());
}

// --- undocumented-unsafe ---------------------------------------------

#[test]
fn undocumented_unsafe_needs_safety_comment() {
    let bare = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let f = lint_one("crates/sim/src/fixture.rs", bare);
    assert_eq!(rules_fired(&f), vec!["undocumented-unsafe"]);
    let documented = "// SAFETY: caller guarantees p is valid for reads\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", documented).is_empty());
}

#[test]
fn undocumented_unsafe_applies_even_outside_core_crates() {
    let f = lint_one(
        "crates/wire/src/fixture.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_eq!(rules_fired(&f), vec!["undocumented-unsafe"]);
}

// --- panic-budget ----------------------------------------------------

#[test]
fn panic_budget_defaults_to_zero_and_pins_exactly() {
    let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\nfn g() { panic!(\"no\"); }\n";
    // No budget: both sites are over.
    let f = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&f), vec!["panic-budget"]);
    // Exact budget: clean.
    let exact = "[panic-budget]\n\"crates/core/src/fixture.rs\" = 2\n";
    assert!(lint_one_with("crates/core/src/fixture.rs", src, exact).is_empty());
    // Over-generous budget: stale pin.
    let loose = "[panic-budget]\n\"crates/core/src/fixture.rs\" = 3\n";
    let f = lint_one_with("crates/core/src/fixture.rs", src, loose);
    assert_eq!(rules_fired(&f), vec!["stale-allow"]);
}

#[test]
fn panic_budget_ignores_test_code_and_counts_expect() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(lint_one("crates/core/src/fixture.rs", src).is_empty());
    let f = lint_one(
        "crates/core/src/fixture.rs",
        "fn f(v: Option<u8>) -> u8 { v.expect(\"present\") }\n",
    );
    assert_eq!(rules_fired(&f), vec!["panic-budget"]);
}

#[test]
fn panic_budget_inline_allow_exempts_the_site() {
    let src = "\
fn f(v: Option<u8>) -> u8 {
    // lint: allow(panic-budget) — invariant: caller checked is_some
    v.unwrap()
}
";
    assert!(lint_one("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn budget_for_unknown_file_is_stale() {
    let cfg = "[panic-budget]\n\"crates/core/src/gone.rs\" = 4\n";
    let f = lint_one_with("crates/core/src/fixture.rs", "fn f() {}\n", cfg);
    assert_eq!(rules_fired(&f), vec!["stale-allow"]);
}
