//! Virtual time.
//!
//! The simulator counts microseconds in a `u64`, which covers ~584k years
//! of simulated time — arithmetic can stay unchecked-by-inspection while
//! still being `debug_assert`ed at the few places overflow could matter.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics (debug) if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "time ran backwards");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e6) as u64)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!((t2 - t).as_micros(), 1_000_000);
        assert_eq!(t2.since(t), SimDuration::from_secs(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_elapsed_panics_in_debug() {
        let _ = SimTime(0).since(SimTime(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
