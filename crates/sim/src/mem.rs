//! Process memory accounting for the memory-diet exhibits.
//!
//! Two independent probes:
//!
//! * [`peak_rss_bytes`] reads the process-lifetime resident-set
//!   high-water mark from `/proc/self/status` (`VmHWM`). It is a
//!   process-wide number — meaningful for a bin whose dominant phase is
//!   the scenario being measured (the S3 exhibit dwarfs everything else
//!   the `tables` bin does by an order of magnitude), less so inside a
//!   multi-test harness.
//! * [`CountingAlloc`] wraps the system allocator and counts every
//!   allocation (count + bytes requested). It costs two relaxed atomic
//!   adds per allocation, so it is **not** installed by default: bins
//!   and tests that want it opt in with `#[global_allocator]` behind
//!   the `alloc-metrics` cargo feature.
//!
//! Both numbers are machine/allocator-dependent observables, like
//! `wall_s` — report fields built from them must be masked out of
//! determinism fingerprints.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] over [`System`] that counts allocations.
///
/// Install in a bin or test with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: manet_sim::mem::CountingAlloc = manet_sim::mem::CountingAlloc;
/// ```
///
/// Reallocations count the full new size (the growth pattern of a
/// `Vec` that was never reserved shows up as repeated counted
/// reallocs — exactly the signal the memory diet hunts).
pub struct CountingAlloc;

// SAFETY: defers all allocation to `System`; only adds relaxed
// counter updates, which cannot affect the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (nonzero,
    // valid layout); it is forwarded to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Relaxed: independent monotonic counters, read post-run for
        // reporting only; they synchronize nothing.
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller's layout, passed through to the system
        // allocator, which is the one that will also free this block.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // this `layout`, which is exactly `System`'s requirement.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair is forwarded untouched; every
        // pointer we hand out originates from `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller guarantees `ptr` was allocated here with `layout`
    // and `new_size` is nonzero; forwarded to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Relaxed: same monotonic counters as `alloc`; the full new
        // size is counted on purpose (growth-pattern signal).
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `ptr`/`layout`/`new_size` triple the caller
        // vouched for, handed to the allocator that owns the block.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Cumulative `(bytes, count)` since process start, or `None` if the
/// counting allocator is not installed in this process. (A Rust
/// process that has reached user code has allocated *something*, so a
/// zero count means the hooks never ran.)
pub fn alloc_totals() -> Option<(u64, u64)> {
    // Relaxed: monotonic counter reads for reporting; no ordering needed.
    let count = ALLOC_COUNT.load(Ordering::Relaxed);
    (count > 0).then(|| (ALLOC_BYTES.load(Ordering::Relaxed), count))
}

/// A point-in-time snapshot for differential measurements:
/// `alloc_since(&before)` is the traffic between two snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub bytes: u64,
    pub count: u64,
}

/// Snapshot the counting allocator (zeros when not installed).
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        // Relaxed: counter snapshot for differential reporting; the two
        // loads need not be mutually consistent to the byte.
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        count: ALLOC_COUNT.load(Ordering::Relaxed),
    }
}

/// Allocation traffic since `before`.
pub fn alloc_since(before: &AllocSnapshot) -> AllocSnapshot {
    let now = alloc_snapshot();
    AllocSnapshot {
        bytes: now.bytes.saturating_sub(before.bytes),
        count: now.count.saturating_sub(before.count),
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface is absent.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parse the `VmHWM:` line of a `/proc/self/status` document. The unit
/// is always kB on Linux.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\ttables\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(doc), Some(2048 * 1024));
    }

    #[test]
    fn missing_or_malformed_hwm_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t12 MB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_a_positive_value() {
        let rss = peak_rss_bytes().expect("linux always has VmHWM");
        assert!(rss > 0);
    }

    #[test]
    fn snapshot_diff_is_monotonic() {
        let before = alloc_snapshot();
        let v: Vec<u8> = Vec::with_capacity(1024);
        drop(v);
        let d = alloc_since(&before);
        // Without the counting allocator installed both are zero; with
        // it, the vec shows up. Either way the diff never underflows.
        assert!(d.bytes == 0 || d.bytes >= 1024);
    }
}
