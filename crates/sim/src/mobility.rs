//! Node placement and mobility models.
//!
//! The protocol's route-maintenance path (RERR, credit slashing, route
//! re-discovery) only activates under link churn, so the random-waypoint
//! model is the workhorse of experiments E2–E4. Placement generators give
//! the deterministic topologies used by the unit tests and the Figure 2/3
//! trace exhibits.

use crate::geom::{Field, Pos};
use rand::Rng;

/// How a node moves.
#[derive(Clone, Debug)]
pub enum Mobility {
    /// Never moves.
    Static,
    /// Random waypoint: pick a uniform target, walk at a uniform speed in
    /// `[min_speed, max_speed]` m/s, pause `pause_s` seconds, repeat.
    RandomWaypoint {
        min_speed: f64,
        max_speed: f64,
        pause_s: f64,
    },
    /// Scripted waypoints: walk to each point in order at `speed` m/s,
    /// then stop at the last one. Deterministic — the tool for staging
    /// partitions and reconnections in tests ("walk out of range at
    /// t≈30 s, come back at t≈60 s").
    Scripted { points: Vec<Pos>, speed: f64 },
}

impl Mobility {
    /// Can this model ever move a node? Lets the engine skip scheduling
    /// mobility ticks (and spatial-index updates) for all-static runs.
    pub fn is_static(&self) -> bool {
        matches!(self, Mobility::Static)
    }
}

/// Per-node mobility state advanced by the engine's mobility tick.
#[derive(Clone, Debug)]
pub struct MobilityState {
    pub model: Mobility,
    target: Pos,
    speed: f64,
    /// Seconds of pause remaining before the next leg.
    pause_left: f64,
    /// Next index into a scripted waypoint list.
    script_idx: usize,
}

impl MobilityState {
    pub fn new(model: Mobility) -> Self {
        MobilityState {
            model,
            target: Pos::default(),
            speed: 0.0,
            pause_left: 0.0,
            script_idx: 0,
        }
    }

    /// Advance `dt` seconds, mutating `pos`.
    pub fn step<R: Rng>(&mut self, pos: &mut Pos, field: &Field, dt: f64, rng: &mut R) {
        match self.model {
            Mobility::Static => {}
            Mobility::RandomWaypoint {
                min_speed,
                max_speed,
                pause_s,
            } => {
                if self.pause_left > 0.0 {
                    self.pause_left -= dt;
                    return;
                }
                if self.speed == 0.0 {
                    // First leg (or re-init): pick a target and speed.
                    self.target = Pos::new(
                        rng.gen_range(0.0..=field.width),
                        rng.gen_range(0.0..=field.height),
                    );
                    self.speed = if max_speed > min_speed {
                        rng.gen_range(min_speed..=max_speed)
                    } else {
                        max_speed
                    };
                }
                let (new_pos, arrived) = pos.step_toward(&self.target, self.speed * dt);
                *pos = field.clamp(new_pos);
                if arrived {
                    self.pause_left = pause_s;
                    self.speed = 0.0; // triggers a new leg after the pause
                }
            }
            Mobility::Scripted { ref points, speed } => {
                let Some(&target) = points.get(self.script_idx) else {
                    return; // script exhausted: parked
                };
                let (new_pos, arrived) = pos.step_toward(&target, speed * dt);
                *pos = field.clamp(new_pos);
                if arrived {
                    self.script_idx += 1;
                }
            }
        }
    }
}

/// Deterministic placements for tests and trace exhibits.
pub mod placement {
    use super::*;

    /// `n` nodes evenly spaced on a horizontal line, `spacing` metres
    /// apart, starting at (0, y). With radio range `r` and
    /// `spacing < r ≤ 2·spacing`, node `i` only hears `i±1`: the
    /// canonical multi-hop chain.
    pub fn chain(n: usize, spacing: f64, y: f64) -> Vec<Pos> {
        (0..n).map(|i| Pos::new(i as f64 * spacing, y)).collect()
    }

    /// `n` nodes on a `cols`-wide grid with the given spacing.
    pub fn grid(n: usize, cols: usize, spacing: f64) -> Vec<Pos> {
        assert!(cols > 0, "grid needs at least one column");
        (0..n)
            .map(|i| Pos::new((i % cols) as f64 * spacing, (i / cols) as f64 * spacing))
            .collect()
    }

    /// `n` nodes uniformly at random on the field.
    pub fn uniform<R: Rng>(n: usize, field: &Field, rng: &mut R) -> Vec<Pos> {
        (0..n)
            .map(|_| {
                Pos::new(
                    rng.gen_range(0.0..=field.width),
                    rng.gen_range(0.0..=field.height),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn static_nodes_do_not_move() {
        let mut st = MobilityState::new(Mobility::Static);
        let field = Field::new(100.0, 100.0);
        let mut pos = Pos::new(10.0, 20.0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..100 {
            st.step(&mut pos, &field, 1.0, &mut rng);
        }
        assert_eq!(pos, Pos::new(10.0, 20.0));
    }

    #[test]
    fn waypoint_nodes_stay_in_field_and_move() {
        let mut st = MobilityState::new(Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 5.0,
            pause_s: 0.5,
        });
        let field = Field::new(50.0, 50.0);
        let mut pos = Pos::new(25.0, 25.0);
        let start = pos;
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut moved = false;
        for _ in 0..1000 {
            st.step(&mut pos, &field, 0.1, &mut rng);
            assert!(field.contains(&pos), "escaped field: {pos:?}");
            if pos.dist(&start) > 1.0 {
                moved = true;
            }
        }
        assert!(moved, "random waypoint never moved");
    }

    #[test]
    fn waypoint_respects_speed_limit() {
        let mut st = MobilityState::new(Mobility::RandomWaypoint {
            min_speed: 2.0,
            max_speed: 2.0,
            pause_s: 0.0,
        });
        let field = Field::new(1000.0, 1000.0);
        let mut pos = Pos::new(500.0, 500.0);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..500 {
            let before = pos;
            st.step(&mut pos, &field, 0.5, &mut rng);
            // ≤ speed * dt, with slack for the arrival-snap step.
            assert!(pos.dist(&before) <= 2.0 * 0.5 + 1e-9);
        }
    }

    #[test]
    fn pause_halts_movement() {
        let mut st = MobilityState::new(Mobility::RandomWaypoint {
            min_speed: 10.0,
            max_speed: 10.0,
            pause_s: 5.0,
        });
        let field = Field::new(10.0, 10.0);
        let mut pos = Pos::new(5.0, 5.0);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        // Walk until some arrival triggers a pause.
        for _ in 0..200 {
            st.step(&mut pos, &field, 0.1, &mut rng);
            if st.pause_left > 0.0 {
                break;
            }
        }
        assert!(st.pause_left > 0.0, "never arrived");
        let frozen = pos;
        st.step(&mut pos, &field, 1.0, &mut rng);
        assert_eq!(pos, frozen, "moved during pause");
    }

    #[test]
    fn scripted_walks_waypoints_in_order_then_parks() {
        let mut st = MobilityState::new(Mobility::Scripted {
            points: vec![Pos::new(10.0, 0.0), Pos::new(10.0, 10.0)],
            speed: 1.0,
        });
        let field = Field::new(100.0, 100.0);
        let mut pos = Pos::new(0.0, 0.0);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        // 10 s to the first point, 10 more to the second.
        for _ in 0..11 {
            st.step(&mut pos, &field, 1.0, &mut rng);
        }
        assert!(
            pos.dist(&Pos::new(10.0, 0.0)) < 1.5,
            "past waypoint 1: {pos:?}"
        );
        for _ in 0..12 {
            st.step(&mut pos, &field, 1.0, &mut rng);
        }
        assert_eq!(pos, Pos::new(10.0, 10.0), "parked at the last waypoint");
        // Further steps do nothing.
        st.step(&mut pos, &field, 5.0, &mut rng);
        assert_eq!(pos, Pos::new(10.0, 10.0));
    }

    #[test]
    fn scripted_is_deterministic() {
        let walk = || {
            let mut st = MobilityState::new(Mobility::Scripted {
                points: vec![Pos::new(50.0, 50.0)],
                speed: 3.0,
            });
            let field = Field::new(100.0, 100.0);
            let mut pos = Pos::new(0.0, 0.0);
            let mut rng = ChaCha12Rng::seed_from_u64(7);
            for _ in 0..7 {
                st.step(&mut pos, &field, 1.0, &mut rng);
            }
            (pos.x.to_bits(), pos.y.to_bits())
        };
        assert_eq!(walk(), walk());
    }

    #[test]
    fn chain_placement_spacing() {
        let ps = placement::chain(5, 10.0, 3.0);
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0], Pos::new(0.0, 3.0));
        assert_eq!(ps[4], Pos::new(40.0, 3.0));
        for w in ps.windows(2) {
            assert!((w[0].dist(&w[1]) - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_placement_shape() {
        let ps = placement::grid(6, 3, 5.0);
        assert_eq!(ps[0], Pos::new(0.0, 0.0));
        assert_eq!(ps[2], Pos::new(10.0, 0.0));
        assert_eq!(ps[3], Pos::new(0.0, 5.0));
        assert_eq!(ps[5], Pos::new(10.0, 5.0));
    }

    #[test]
    fn uniform_placement_in_bounds() {
        let field = Field::new(30.0, 40.0);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for p in placement::uniform(100, &field, &mut rng) {
            assert!(field.contains(&p));
        }
    }
}
