//! Hierarchical timer wheel — the O(1) event queue behind the engine.
//!
//! Eleven levels of 64 slots each cover the full `u64` microsecond
//! range: a slot at level `l` spans `64^l` ticks, so an event lands at
//! the lowest level whose slot span still separates it from the wheel's
//! cursor (`level_for`, the hashed-wheel trick of taking the highest
//! bit where `elapsed ^ when` differ). Scheduling is a push onto a
//! slot's `Vec` plus one bitmask OR; advancing skips empty slots with
//! `trailing_zeros` on the per-level occupancy masks instead of walking
//! ticks one by one.
//!
//! ## Exact heap equivalence
//!
//! The wheel must dispatch in exactly the order the binary-heap oracle
//! ([`crate::queue::EventQueue`]) does: ascending `(time, seq)`, where
//! `seq` is the engine-assigned insertion sequence carried on every
//! push. Two properties make that hold:
//!
//! * a level-0 slot spans exactly one tick, so every item in a fired
//!   slot shares one timestamp and a sort by `seq` restores sequence
//!   order — necessary because cascades can append an early-scheduled
//!   item after a late-scheduled one;
//! * among equal deadlines, higher levels are processed (cascaded)
//!   first, so items trickle down into the level-0 slot before it
//!   fires and same-tick events are never split across two firings.
//!
//! `tests/determinism.rs` pins the equivalence with a randomized
//! schedule/cancel differential; the unit tests here cover the wheel's
//! own edges (far-future times, same-tick ties, re-entrant pushes, and
//! deadlines within a slot span of `u64::MAX` on every level — the
//! top-level shift arithmetic flirts with the 64-bit boundary, so it is
//! computed in `u128` and pinned by a proptest against a sorted model).
//!
//! Steady state allocates nothing: slot `Vec`s keep their capacity, the
//! firing buffer is a reused `VecDeque`, and cascades drain through one
//! scratch `Vec`.

use crate::queue::Event;
use crate::time::SimTime;
use std::collections::VecDeque;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// 11 × 6 = 66 bits ≥ the 64-bit time range.
const LEVELS: usize = 11;

struct WheelItem {
    time: SimTime,
    seq: u64,
    event: Event,
}

struct Level {
    /// Bit `s` set ⇔ slot `s` is non-empty.
    occupied: u64,
    slots: Vec<Vec<WheelItem>>,
}

impl Level {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// Level an event at `when` belongs to, seen from cursor `elapsed`:
/// index of the highest 6-bit group where the two differ (0 if they
/// agree everywhere above the low 6 bits).
#[inline]
fn level_for(elapsed: u64, when: u64) -> usize {
    let masked = (elapsed ^ when) | SLOT_MASK;
    let hi = 63 - masked.leading_zeros();
    (hi / SLOT_BITS) as usize
}

#[inline]
fn slot_of(when: u64, level: usize) -> usize {
    ((when >> (SLOT_BITS as usize * level)) & SLOT_MASK) as usize
}

/// The timer wheel. Same contract as [`crate::queue::EventQueue`]:
/// `push_seq` anywhere at or after the last popped time, `pop_due_seq`
/// yields strictly `(time, seq)`-ascending events up to a horizon.
pub(crate) struct TimerWheel {
    levels: Vec<Level>,
    /// Cursor: every event before this tick has been popped.
    elapsed: u64,
    /// Events currently stored (wheel + firing buffer).
    len: usize,
    /// The tick currently being dispatched, sorted by `seq`.
    firing: VecDeque<WheelItem>,
    /// Reused drain buffer for cascades.
    cascade_scratch: Vec<WheelItem>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            elapsed: 0,
            len: 0,
            firing: VecDeque::new(),
            cascade_scratch: Vec::new(),
        }
    }

    pub(crate) fn push_seq(&mut self, time: SimTime, seq: u64, event: Event) {
        // The engine never schedules into the past (`time >= now`, and
        // the cursor only advances to dispatched times); clamp in
        // release so a violation degrades to "fires now" like the heap
        // would, instead of waiting a whole wheel rotation.
        debug_assert!(time.0 >= self.elapsed, "event scheduled into the past");
        let when = time.0.max(self.elapsed);
        self.insert(WheelItem {
            time: SimTime(when),
            seq,
            event,
        });
        self.len += 1;
    }

    fn insert(&mut self, item: WheelItem) {
        let level = level_for(self.elapsed, item.time.0);
        let slot = slot_of(item.time.0, level);
        let lvl = &mut self.levels[level];
        lvl.slots[slot].push(item);
        lvl.occupied |= 1 << slot;
    }

    /// Earliest `(deadline, level)` across all levels, preferring the
    /// highest level on a deadline tie so cascades run before the
    /// level-0 slot they feed is fired.
    fn next_expiration(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for (level, lvl) in self.levels.iter().enumerate() {
            if lvl.occupied == 0 {
                continue;
            }
            let cursor = slot_of(self.elapsed, level) as u32;
            let dist = lvl.occupied.rotate_right(cursor).trailing_zeros() as u64;
            // Slots strictly behind the cursor can't be occupied: an
            // event whose slot index already passed would differ from
            // `elapsed` in a higher bit group and live on a higher
            // level.
            debug_assert!(cursor as u64 + dist < SLOTS as u64, "slot behind cursor");
            let slot = cursor as u64 + dist;
            // The slot-base arithmetic runs against the top of the u64
            // range: at the top level the "bits above this level" shift
            // is ≥ 64 (guarded to 0), and `slot << 60` overflows u64 for
            // slot ≥ 16 — which valid contents never produce, but a
            // silent wrap here would fire a far-future event *early*
            // and corrupt the dispatch order. Compute in u128 and
            // saturate so the boundary is explicit.
            let shift = SLOT_BITS as usize * (level + 1);
            let high = if shift >= 64 {
                0
            } else {
                (self.elapsed >> shift) << shift
            };
            let wide = (high as u128) + ((slot as u128) << (SLOT_BITS as usize * level));
            debug_assert!(wide <= u64::MAX as u128, "deadline past u64::MAX");
            let deadline = u64::try_from(wide).unwrap_or(u64::MAX);
            let better = match best {
                None => true,
                // Higher level first on ties: those items still need to
                // cascade down before the tick can fire completely.
                Some((d, l)) => deadline < d || (deadline == d && level > l),
            };
            if better {
                best = Some((deadline, level));
            }
        }
        best
    }

    /// Advance cascades until the firing buffer holds the next due tick
    /// (or prove nothing is due). True ⇔ the front of `firing` is an
    /// event with `time <= until`.
    fn prime(&mut self, until: SimTime) -> bool {
        loop {
            if let Some(front) = self.firing.front() {
                return front.time <= until;
            }
            let Some((deadline, level)) = self.next_expiration() else {
                return false;
            };
            if deadline > until.0 {
                return false;
            }
            // Advance, never retreat: a level>0 slot's start can sit at
            // or before the cursor when its slot index equals the
            // cursor's.
            self.elapsed = self.elapsed.max(deadline);
            let cursor_slot = slot_of(deadline, level);
            let lvl = &mut self.levels[level];
            lvl.occupied &= !(1 << cursor_slot);
            if level == 0 {
                // One tick's worth of events: restore sequence order.
                debug_assert!(self.firing.is_empty());
                self.firing.extend(lvl.slots[cursor_slot].drain(..));
                self.firing
                    .make_contiguous()
                    .sort_unstable_by_key(|i| i.seq);
                debug_assert!(self.firing.iter().all(|i| i.time.0 == deadline));
            } else {
                // Cascade one coarse slot down a level (or several).
                let mut scratch = std::mem::take(&mut self.cascade_scratch);
                debug_assert!(scratch.is_empty());
                std::mem::swap(&mut scratch, &mut lvl.slots[cursor_slot]);
                for item in scratch.drain(..) {
                    debug_assert!(item.time.0 >= self.elapsed);
                    self.insert(item);
                }
                self.cascade_scratch = scratch;
            }
        }
    }

    /// Pop the next event if it is due at or before `until`. Identical
    /// observable behavior to the heap's `pop_due_seq`.
    pub(crate) fn pop_due_seq(&mut self, until: SimTime) -> Option<(SimTime, u64, Event)> {
        if !self.prime(until) {
            return None;
        }
        let item = self.firing.pop_front().expect("primed");
        self.len -= 1;
        Some((item.time, item.seq, item.event))
    }

    /// A lower bound on the earliest stored event's time: exact when a
    /// tick already sits in the firing buffer, otherwise the earliest
    /// occupied slot's base time. Unlike [`TimerWheel::peek_due`], this
    /// never cascades — the cursor does not move, so nothing commits
    /// the wheel past times that a concurrent shard may still schedule
    /// into (the sharded executor's epoch picker depends on this).
    pub(crate) fn next_time_hint(&self) -> Option<SimTime> {
        if let Some(front) = self.firing.front() {
            return Some(front.time);
        }
        self.next_expiration()
            .map(|(d, _)| SimTime(d.max(self.elapsed)))
    }

    /// `(time, seq)` of the next due event without consuming it. The
    /// cascades this may run are the same ones `pop_due_seq` would run —
    /// internal cursor motion, observably a no-op.
    pub(crate) fn peek_due(&mut self, until: SimTime) -> Option<(SimTime, u64)> {
        if !self.prime(until) {
            return None;
        }
        let front = self.firing.front().expect("primed");
        Some((front.time, front.seq))
    }

    /// Events currently queued (including a partially dispatched tick).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::NodeId;
    use proptest::prelude::*;

    fn start(n: usize) -> Event {
        Event::Start(NodeId(n))
    }

    /// Push helper carrying its own monotone sequence, like the engine.
    struct Pusher {
        seq: u64,
    }

    impl Pusher {
        fn new() -> Self {
            Pusher { seq: 0 }
        }
        fn push(&mut self, w: &mut TimerWheel, t: u64, n: usize) {
            w.push_seq(SimTime(t), self.seq, start(n));
            self.seq += 1;
        }
    }

    fn drain(w: &mut TimerWheel, until: SimTime) -> Vec<(u64, usize)> {
        std::iter::from_fn(|| w.pop_due_seq(until))
            .map(|(t, _, e)| match e {
                Event::Start(NodeId(n)) => (t.0, n),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, 5, 0);
        p.push(&mut w, 1, 1);
        p.push(&mut w, 1, 2);
        assert_eq!(
            drain(&mut w, SimTime(u64::MAX)),
            vec![(1, 1), (1, 2), (5, 0)]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn respects_horizon() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, 10, 0);
        assert!(w.pop_due_seq(SimTime(9)).is_none());
        assert!(w.pop_due_seq(SimTime(10)).is_some());
        assert!(w.pop_due_seq(SimTime(u64::MAX)).is_none());
    }

    #[test]
    fn peek_previews_pop_without_consuming() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, 70, 4);
        p.push(&mut w, 70, 9);
        assert_eq!(w.peek_due(SimTime(69)), None);
        assert_eq!(w.peek_due(SimTime(70)), Some((SimTime(70), 0)));
        assert_eq!(w.peek_due(SimTime(70)), Some((SimTime(70), 0)), "consumed");
        assert_eq!(w.len(), 2, "peek must not drop items");
        assert_eq!(drain(&mut w, SimTime(u64::MAX)), vec![(70, 4), (70, 9)]);
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        // One event per level's range, plus two in the same far tick to
        // exercise seq ordering after a long cascade chain.
        let far = 1u64 << 40;
        p.push(&mut w, far, 0);
        p.push(&mut w, far, 1);
        p.push(&mut w, 64, 2);
        p.push(&mut w, 4096 + 3, 3);
        p.push(&mut w, 262_144 + 9, 4);
        assert_eq!(
            drain(&mut w, SimTime(u64::MAX)),
            vec![(64, 2), (4096 + 3, 3), (262_144 + 9, 4), (far, 0), (far, 1)]
        );
    }

    #[test]
    fn same_tick_push_during_dispatch_fires_after() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, 7, 0);
        p.push(&mut w, 7, 1);
        let (t, _, _) = w.pop_due_seq(SimTime(u64::MAX)).expect("first");
        assert_eq!(t, SimTime(7));
        // Mid-tick push at the tick being dispatched (delay-0 timer).
        p.push(&mut w, 7, 2);
        assert_eq!(drain(&mut w, SimTime(u64::MAX)), vec![(7, 1), (7, 2)]);
    }

    #[test]
    fn interleaves_pushes_and_pops_across_rotations() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        let mut fired = Vec::new();
        let mut t = 0u64;
        for round in 0..300u64 {
            p.push(&mut w, t + 1 + (round * 37) % 511, round as usize);
            while let Some((at, _, _)) = w.pop_due_seq(SimTime(t + 64)) {
                assert!(at.0 >= t, "time went backwards");
                t = at.0;
                fired.push(at.0);
            }
            t += 64;
        }
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(fired, sorted, "fire order must be time-ascending");
        fired.extend(drain(&mut w, SimTime(u64::MAX)).iter().map(|&(at, _)| at));
        assert_eq!(fired.len(), 300, "every scheduled event fired exactly once");
    }

    #[test]
    fn zero_time_and_max_horizon_edges() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, 0, 0);
        p.push(&mut w, u64::MAX - 1, 1);
        assert_eq!(
            w.pop_due_seq(SimTime(u64::MAX)).map(|(t, _, _)| t),
            Some(SimTime(0))
        );
        assert_eq!(
            w.pop_due_seq(SimTime(u64::MAX)).map(|(t, _, _)| t),
            Some(SimTime(u64::MAX - 1))
        );
    }

    #[test]
    fn u64_max_deadline_fires_exactly_once_at_the_end_of_time() {
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        p.push(&mut w, u64::MAX, 0);
        p.push(&mut w, 5, 1);
        assert!(w.pop_due_seq(SimTime(u64::MAX - 1)).map(|(t, _, _)| t) == Some(SimTime(5)));
        assert!(w.pop_due_seq(SimTime(u64::MAX - 1)).is_none());
        assert_eq!(
            w.pop_due_seq(SimTime(u64::MAX)).map(|(t, _, _)| t),
            Some(SimTime(u64::MAX))
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn near_max_deadlines_fire_in_order_through_every_level() {
        // One deadline a slot-span below u64::MAX per level: cascading
        // each one walks the top-level shift arithmetic right at the
        // 64-bit boundary (the regression this pins: a wrapped shift
        // would compute a tiny deadline and fire these out of order).
        let mut w = TimerWheel::new();
        let mut p = Pusher::new();
        let mut expect = Vec::new();
        for level in 0..LEVELS {
            let span = 1u128 << (SLOT_BITS as usize * level);
            let t = (u64::MAX as u128 - span) as u64;
            p.push(&mut w, t, level);
            expect.push((t, level));
        }
        p.push(&mut w, u64::MAX, LEVELS);
        expect.push((u64::MAX, LEVELS));
        expect.sort_unstable();
        assert_eq!(drain(&mut w, SimTime(u64::MAX)), expect);
    }

    #[test]
    fn empty_wheel_is_cheap_and_none() {
        let mut w = TimerWheel::new();
        assert!(w.pop_due_seq(SimTime(u64::MAX)).is_none());
        assert_eq!(w.len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Regression proptest for the ≥64-bit shift boundary: random
        /// schedules clustered near u64::MAX (offsets spanning every
        /// wheel level) must drain in exactly sorted `(time, seq)`
        /// order, matching a sorted-vec model.
        #[test]
        fn near_max_schedules_match_sorted_model(
            offsets in proptest::collection::vec((0usize..LEVELS, 0u64..64), 1..40),
        ) {
            let mut w = TimerWheel::new();
            let mut model = Vec::new();
            for (seq, &(level, k)) in offsets.iter().enumerate() {
                // u64::MAX minus k slot-spans of the chosen level: lands
                // the deadline in the top slots of that level.
                let span = 1u128 << (SLOT_BITS as usize * level);
                let t = (u64::MAX as u128 - (k as u128 * span).min(u64::MAX as u128)) as u64;
                w.push_seq(SimTime(t), seq as u64, Event::Start(NodeId(seq)));
                model.push((t, seq as u64));
            }
            model.sort_unstable();
            let drained: Vec<(u64, u64)> =
                std::iter::from_fn(|| w.pop_due_seq(SimTime(u64::MAX)))
                    .map(|(t, s, _)| (t.0, s))
                    .collect();
            prop_assert_eq!(drained, model);
        }
    }
}
