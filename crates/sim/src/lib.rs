//! # manet-sim
//!
//! A from-scratch discrete-event MANET simulator (DESIGN.md §2): the
//! substrate the paper's authors would have had in ns-2-era tooling.
//!
//! * [`engine`] — deterministic event loop and node lifecycle, composed
//!   from [`ctx`] (the protocol window), `queue` (event heap + timer
//!   table), `grid` (uniform spatial index), and [`link`]
//!   (transmit/deliver channel logic, neighborhood queries);
//! * [`radio`] — unit-disk channel with loss, latency and bandwidth;
//! * [`mobility`] — random waypoint + deterministic placements;
//! * [`metrics`] / [`trace`] — measurement and protocol-trace capture;
//! * [`runner`] — rayon-parallel experiment sweeps over (param, seed)
//!   grids.
//!
//! The engine is intentionally protocol-agnostic: everything MANET-secure
//! lives in the `manet-secure` crate behind the [`engine::Protocol`]
//! trait.

pub mod ctx;
pub mod engine;
pub mod fxhash;
pub mod geom;
mod grid;
pub mod link;
pub mod mem;
pub mod metrics;
pub mod mobility;
mod queue;
pub mod radio;
pub mod runner;
pub mod time;
pub mod trace;
mod wheel;

pub use engine::{Ctx, Engine, EngineConfig, ExecMode, LinkDst, NodeId, Protocol, TimerHandle};
pub use geom::{Field, Pos};
pub use link::ChannelMode;
pub use metrics::{Metrics, Series};
pub use mobility::{placement, Mobility};
pub use queue::QueueImpl;
pub use radio::RadioConfig;
pub use time::{SimDuration, SimTime};
pub use trace::{Dir, TraceEvent, Tracer};
