//! Parallel experiment execution.
//!
//! A simulation cell (one parameter point × one seed) is deterministic and
//! single-threaded; experiments are grids of independent cells. This
//! module fans the grid out over rayon's thread pool — the canonical
//! data-parallel shape from the hpc-parallel guides — and aggregates per
//! parameter point.

use crate::metrics::Metrics;
use rayon::prelude::*;

/// Run `f` once per `(param, seed)` pair in parallel and return
/// `(param, per-seed results)` grouped in input order.
///
/// `f` must build its entire simulation from the given seed so cells stay
/// independent; nothing is shared across cells except read-only params.
pub fn sweep<P, T, F>(params: &[P], seeds: &[u64], f: F) -> Vec<(P, Vec<T>)>
where
    P: Clone + Send + Sync,
    T: Send,
    F: Fn(&P, u64) -> T + Sync,
{
    params
        .par_iter()
        .map(|p| {
            let results: Vec<T> = seeds.par_iter().map(|&s| f(p, s)).collect();
            (p.clone(), results)
        })
        .collect()
}

/// Run `f` once per seed and merge all resulting [`Metrics`] into one.
pub fn merged_metrics<F>(seeds: &[u64], f: F) -> Metrics
where
    F: Fn(u64) -> Metrics + Sync,
{
    let all: Vec<Metrics> = seeds.par_iter().map(|&s| f(s)).collect();
    let mut out = Metrics::new();
    for m in &all {
        out.merge(m);
    }
    out
}

/// Mean of a per-seed scalar extracted by `f`, or `None` for an empty
/// seed list — the empty denominator is explicit rather than a silent
/// NaN leaking into a table.
pub fn mean_over_seeds<F>(seeds: &[u64], f: F) -> Option<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    if seeds.is_empty() {
        return None;
    }
    let sum: f64 = seeds.par_iter().map(|&s| f(s)).sum();
    Some(sum / seeds.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_param_order_and_runs_all_cells() {
        let params = vec![1u64, 2, 3];
        let seeds = vec![10u64, 20];
        let out = sweep(&params, &seeds, |p, s| p * 1000 + s);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, vec![1010, 1020]);
        assert_eq!(out[2].1, vec![3010, 3020]);
    }

    #[test]
    fn merged_metrics_sums_counters() {
        let seeds = vec![1u64, 2, 3, 4];
        let m = merged_metrics(&seeds, |s| {
            let mut m = Metrics::new();
            m.count("runs", 1);
            m.count("seed_sum", s);
            m.sample("x", s as f64);
            m
        });
        assert_eq!(m.counter("runs"), 4);
        assert_eq!(m.counter("seed_sum"), 10);
        assert_eq!(m.series("x").len(), 4);
    }

    #[test]
    fn mean_over_seeds_averages() {
        assert_eq!(mean_over_seeds(&[1, 2, 3], |s| s as f64), Some(2.0));
    }

    #[test]
    fn mean_over_seeds_is_explicit_about_the_empty_grid() {
        assert_eq!(mean_over_seeds(&[], |_| 0.0), None, "no seeds — no mean");
    }

    #[test]
    fn parallel_execution_is_deterministic_in_aggregate() {
        // Whatever the thread interleaving, per-cell results only depend
        // on (param, seed), so repeated sweeps agree exactly.
        let params = vec![5u64, 7];
        let seeds: Vec<u64> = (0..16).collect();
        let f = |p: &u64, s: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng =
                rand_chacha::ChaCha12Rng::seed_from_u64(p.wrapping_mul(31).wrapping_add(s));
            rng.gen::<u64>()
        };
        assert_eq!(sweep(&params, &seeds, f), sweep(&params, &seeds, f));
    }
}
