//! Measurement collection.
//!
//! Counters and sample series keyed by static names. Protocols record
//! into this through [`crate::engine::Ctx`]; experiment harnesses read it
//! out after the run. Everything is plain data so results can cross
//! thread boundaries in the parallel runner.

use std::collections::BTreeMap;

/// A series of f64 samples with summary accessors.
#[derive(Clone, Debug, Default)]
pub struct Series {
    samples: Vec<f64>,
}

impl Series {
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.sum() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let m = self.mean();
        (self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64)
            .sqrt()
    }

    /// Percentile in `[0, 100]` by nearest-rank on a sorted copy.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// All measurements of one simulation run.
///
/// Counters are a small flat table scanned with pointer-first equality
/// and a move-toward-front heuristic: `count` runs several times per
/// dispatched event, and the B-tree's string comparisons used to show
/// up in scale-run profiles. A simulation touches a few dozen distinct
/// counter names, the hot `phy.*`/`ctl.*` handful settles at the head,
/// and `&'static str` call sites make the pointer test hit virtually
/// always (the `==` fallback keeps correctness if two call sites carry
/// duplicate literals at different addresses).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: Vec<(&'static str, u64)>,
    series: BTreeMap<&'static str, Series>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name`.
    #[inline]
    pub fn count(&mut self, name: &'static str, by: u64) {
        for i in 0..self.counters.len() {
            let (key, v) = &mut self.counters[i];
            if std::ptr::eq(*key, name) || *key == name {
                *v += by;
                if i > 3 {
                    self.counters.swap(i, i / 2);
                }
                return;
            }
        }
        self.counters.push((name, by));
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Record a sample into series `name`.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.series.entry(name).or_default().record(v);
    }

    /// Read a series (empty if never touched).
    pub fn series(&self, name: &str) -> Series {
        self.series.get(name).cloned().unwrap_or_default()
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        let mut names: Vec<&'static str> = self.counters.iter().map(|&(k, _)| k).collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.series.keys().copied()
    }

    /// Drain this instance's counter totals into `dst`, zeroing them
    /// here but keeping the table (names, order, capacity) so the hot
    /// `count` path stays warm. The sharded executor calls this per
    /// epoch to fold order-insensitive per-shard counts into the global
    /// metrics without reallocating.
    pub(crate) fn drain_counts_into(&mut self, dst: &mut Metrics) {
        for i in 0..self.counters.len() {
            let (k, v) = self.counters[i];
            if v > 0 {
                dst.count(k, v);
                self.counters[i].1 = 0;
            }
        }
    }

    /// Merge another run's metrics into this one (for aggregation across
    /// seeds).
    pub fn merge(&mut self, other: &Metrics) {
        for &(k, v) in &other.counters {
            self.count(k, v);
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k).or_default();
            dst.samples.extend_from_slice(&s.samples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("tx", 1);
        m.count("tx", 2);
        assert_eq!(m.counter("tx"), 3);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn series_stats() {
        let mut s = Series::default();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert!((s.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_series_yields_nan_not_panic() {
        let s = Series::default();
        assert!(s.mean().is_nan());
        assert!(s.percentile(50.0).is_nan());
        assert!(s.std_dev().is_nan());
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = Metrics::new();
        a.count("x", 1);
        a.sample("lat", 1.0);
        let mut b = Metrics::new();
        b.count("x", 2);
        b.count("y", 5);
        b.sample("lat", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.series("lat").len(), 2);
        assert_eq!(a.series("lat").mean(), 2.0);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Series::default();
        s.record(7.0);
        assert_eq!(s.percentile(99.0), 7.0);
    }

    #[test]
    fn counter_names_stay_sorted_regardless_of_touch_order() {
        let mut m = Metrics::new();
        for name in ["zz", "aa", "mm", "aa", "zz", "zz"] {
            m.count(name, 1);
        }
        let names: Vec<&str> = m.counter_names().collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
        assert_eq!(m.counter("zz"), 3);
        assert_eq!(m.counter("aa"), 2);
    }

    #[test]
    fn drain_counts_zeroes_source_and_accumulates_dest() {
        let mut src = Metrics::new();
        let mut dst = Metrics::new();
        src.count("tx", 3);
        src.count("rx", 1);
        src.drain_counts_into(&mut dst);
        assert_eq!(dst.counter("tx"), 3);
        assert_eq!(src.counter("tx"), 0, "source zeroed, not dropped");
        src.count("tx", 2);
        src.drain_counts_into(&mut dst);
        assert_eq!(dst.counter("tx"), 5);
        assert_eq!(dst.counter("rx"), 1);
    }

    #[test]
    fn hot_counters_move_toward_front_without_losing_counts() {
        let mut m = Metrics::new();
        // Ten distinct names, then hammer the last one: totals must stay
        // exact whatever the internal reordering does.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "hot"];
        for n in names {
            m.count(n, 1);
        }
        for _ in 0..1000 {
            m.count("hot", 2);
        }
        assert_eq!(m.counter("hot"), 2001);
        for n in &names[..9] {
            assert_eq!(m.counter(n), 1, "{n} clobbered");
        }
    }
}
