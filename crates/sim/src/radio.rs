//! The wireless channel: unit-disk propagation with loss, delay and
//! per-byte transmission time.
//!
//! This deliberately simple model preserves exactly what the protocol
//! logic depends on (DESIGN.md §2): who hears a broadcast, that unicast
//! to an out-of-range node silently fails (→ RERR path), that packets are
//! sometimes lost, and that bigger packets take longer — which is how the
//! security overhead becomes a latency cost in E2.

use crate::time::SimDuration;
use rand::Rng;

/// Channel parameters.
#[derive(Clone, Debug)]
pub struct RadioConfig {
    /// Reception range in metres (unit disk).
    pub range: f64,
    /// Independent per-reception loss probability in `[0, 1)`.
    pub loss: f64,
    /// Fixed per-hop processing + propagation latency.
    pub base_delay: SimDuration,
    /// Random extra delay, uniform in `[0, jitter]`; also serves as a
    /// cheap stand-in for MAC contention so simultaneous broadcasts
    /// interleave rather than arrive in lockstep.
    pub jitter: SimDuration,
    /// Link bandwidth in bits per second (transmission delay = size/bw).
    pub bits_per_sec: f64,
    /// Optional gray zone: broadcast reception probability falls off
    /// linearly from `(1 - loss)` at `range` to zero at this radius.
    /// Models the marginal-link band real radios have instead of a hard
    /// edge. `None` (default) keeps the crisp unit disk. Unicast (MAC
    /// ARQ) still requires `d ≤ range`.
    pub gray_zone: Option<f64>,
}

impl Default for RadioConfig {
    /// 250 m range, 1% loss, 1 ms base latency, 2 ms jitter, 2 Mb/s —
    /// 802.11-era ad hoc numbers matching the paper's 2003 context.
    fn default() -> Self {
        RadioConfig {
            range: 250.0,
            loss: 0.01,
            base_delay: SimDuration::from_micros(1_000),
            jitter: SimDuration::from_micros(2_000),
            bits_per_sec: 2_000_000.0,
            gray_zone: None,
        }
    }
}

impl RadioConfig {
    /// Is a receiver at distance `d` within (reliable) range?
    pub fn in_range(&self, d: f64) -> bool {
        d <= self.range
    }

    /// Farthest distance at which any reception is possible.
    pub fn max_range(&self) -> f64 {
        self.gray_zone.unwrap_or(self.range).max(self.range)
    }

    /// Sample whether a given reception is lost.
    pub fn sample_loss<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss > 0.0 && rng.gen::<f64>() < self.loss
    }

    /// Probability that a broadcast is received at distance `d`.
    pub fn reception_prob(&self, d: f64) -> f64 {
        if d <= self.range {
            return 1.0 - self.loss;
        }
        match self.gray_zone {
            Some(gz) if d <= gz && gz > self.range => {
                (1.0 - (d - self.range) / (gz - self.range)) * (1.0 - self.loss)
            }
            _ => 0.0,
        }
    }

    /// Sample whether a broadcast at distance `d` is received.
    pub fn sample_broadcast_reception<R: Rng>(&self, d: f64, rng: &mut R) -> bool {
        let p = self.reception_prob(d);
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        rng.gen::<f64>() < p
    }

    /// Sample the total delay for delivering `bytes` over one hop.
    pub fn sample_delay<R: Rng>(&self, bytes: usize, rng: &mut R) -> SimDuration {
        let tx_us = (bytes as f64 * 8.0 / self.bits_per_sec * 1e6) as u64;
        let jitter_us = if self.jitter.as_micros() > 0 {
            rng.gen_range(0..=self.jitter.as_micros())
        } else {
            0
        };
        SimDuration::from_micros(self.base_delay.as_micros() + tx_us + jitter_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn range_check_is_inclusive() {
        let r = RadioConfig {
            range: 100.0,
            ..RadioConfig::default()
        };
        assert!(r.in_range(100.0));
        assert!(!r.in_range(100.01));
        assert!(r.in_range(0.0));
    }

    #[test]
    fn zero_loss_never_drops() {
        let r = RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!((0..1000).all(|_| !r.sample_loss(&mut rng)));
    }

    #[test]
    fn loss_rate_close_to_configured() {
        let r = RadioConfig {
            loss: 0.25,
            ..RadioConfig::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let drops = (0..10_000).filter(|_| r.sample_loss(&mut rng)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn gray_zone_probability_falls_linearly() {
        let r = RadioConfig {
            range: 100.0,
            loss: 0.0,
            gray_zone: Some(200.0),
            ..RadioConfig::default()
        };
        assert_eq!(r.reception_prob(50.0), 1.0);
        assert_eq!(r.reception_prob(100.0), 1.0);
        assert!((r.reception_prob(150.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.reception_prob(200.0), 0.0);
        assert_eq!(r.reception_prob(300.0), 0.0);
        assert_eq!(r.max_range(), 200.0);
        // Unicast range stays crisp.
        assert!(r.in_range(100.0));
        assert!(!r.in_range(150.0));
    }

    #[test]
    fn gray_zone_composes_with_loss() {
        let r = RadioConfig {
            range: 100.0,
            loss: 0.2,
            gray_zone: Some(200.0),
            ..RadioConfig::default()
        };
        assert!((r.reception_prob(0.0) - 0.8).abs() < 1e-12);
        assert!((r.reception_prob(150.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn no_gray_zone_is_a_crisp_disk() {
        let r = RadioConfig {
            range: 100.0,
            loss: 0.0,
            ..RadioConfig::default()
        };
        assert_eq!(r.reception_prob(100.0), 1.0);
        assert_eq!(r.reception_prob(100.01), 0.0);
        assert_eq!(r.max_range(), 100.0);
    }

    #[test]
    fn gray_zone_sampling_tracks_probability() {
        let r = RadioConfig {
            range: 100.0,
            loss: 0.0,
            gray_zone: Some(200.0),
            ..RadioConfig::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let hits = (0..10_000)
            .filter(|_| r.sample_broadcast_reception(150.0, &mut rng))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn delay_scales_with_size() {
        let r = RadioConfig {
            jitter: SimDuration::ZERO,
            ..RadioConfig::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let small = r.sample_delay(100, &mut rng);
        let large = r.sample_delay(10_000, &mut rng);
        assert!(large > small);
        // 10_000 bytes at 2 Mb/s = 40 ms of pure transmission.
        assert_eq!(
            large.as_micros() - small.as_micros(),
            (9_900.0 * 8.0 / 2.0) as u64
        );
    }

    #[test]
    fn delay_includes_base_and_bounded_jitter() {
        let r = RadioConfig::default();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let d = r.sample_delay(0, &mut rng);
            assert!(d >= r.base_delay);
            assert!(d.as_micros() <= r.base_delay.as_micros() + r.jitter.as_micros());
        }
    }
}
