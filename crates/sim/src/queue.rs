//! Event scheduling: the pending-event queue and timer bookkeeping.
//!
//! [`PendingQueue`] is the engine's event store, in one of two
//! implementations selected by [`QueueImpl`] in the engine config:
//!
//! * **Wheel** (default): the hierarchical timer wheel
//!   ([`crate::wheel`]) — O(1) schedule, occupancy-bitmask advance;
//! * **Heap**: the original binary heap ordered by `(time, insertion
//!   sequence)` — kept alive as the differential-testing oracle,
//!   exactly like the linear channel scan backs the spatial grid.
//!
//! Both dispatch simultaneous events in the order they were scheduled —
//! the backbone of the determinism contract — and same-seed runs are
//! bit-identical under either (`tests/determinism.rs` gates this).
//!
//! [`TimerTable`] tracks which timer handles are armed and which armed
//! handles have been cancelled. Both sets are bounded: a handle leaves
//! `pending` when its event pops, and `cancelled` only ever holds
//! handles that are still in flight — cancelling an already-fired timer
//! is dropped on the floor instead of lingering forever, so long runs
//! with heavy timer churn don't leak memory.

use crate::ctx::NodeId;
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// Which pending-event store the engine runs on. `Wheel` unless a
/// differential test or baseline measurement asks for the `Heap`
/// oracle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueImpl {
    #[default]
    Wheel,
    Heap,
}

impl QueueImpl {
    /// Stable lowercase name, as serialized into `RunReport::to_json`.
    pub fn name(self) -> &'static str {
        match self {
            QueueImpl::Wheel => "wheel",
            QueueImpl::Heap => "heap",
        }
    }
}

/// The engine's pending-event store (see [`QueueImpl`]).
pub(crate) enum PendingQueue {
    Wheel(TimerWheel),
    Heap(EventQueue),
}

impl PendingQueue {
    pub(crate) fn new(kind: QueueImpl) -> Self {
        match kind {
            QueueImpl::Wheel => PendingQueue::Wheel(TimerWheel::new()),
            QueueImpl::Heap => PendingQueue::Heap(EventQueue::new()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, event: Event) {
        match self {
            PendingQueue::Wheel(w) => w.push(time, event),
            PendingQueue::Heap(h) => h.push(time, event),
        }
    }

    #[inline]
    pub(crate) fn pop_due(&mut self, until: SimTime) -> Option<(SimTime, Event)> {
        match self {
            PendingQueue::Wheel(w) => w.pop_due(until),
            PendingQueue::Heap(h) => h.pop_due(until),
        }
    }
}

/// Everything the engine can dispatch.
pub(crate) enum Event {
    Start(NodeId),
    Deliver {
        to: NodeId,
        src: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    Timer {
        node: NodeId,
        handle: u64,
        tag: u64,
    },
    LinkFailure {
        node: NodeId,
        to: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    MobilityTick,
    Kill(NodeId),
}

struct QueueItem {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of pending events with a monotonically increasing tiebreak
/// sequence.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<QueueItem>>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QueueItem { time, seq, event }));
    }

    /// Pop the next event if it is due at or before `until`.
    pub(crate) fn pop_due(&mut self, until: SimTime) -> Option<(SimTime, Event)> {
        match self.heap.peek() {
            Some(Reverse(head)) if head.time <= until => {}
            _ => return None,
        }
        let Reverse(item) = self.heap.pop().expect("peeked");
        Some((item.time, item.event))
    }
}

/// Armed-timer and cancellation bookkeeping (see module docs for the
/// boundedness invariant).
pub(crate) struct TimerTable {
    /// Source of fresh [`crate::TimerHandle`] values.
    pub(crate) next_handle: u64,
    /// Handles armed and not yet popped from the event queue.
    pending: HashSet<u64>,
    /// Armed handles whose owners cancelled them before they fired.
    cancelled: HashSet<u64>,
}

impl TimerTable {
    pub(crate) fn new() -> Self {
        TimerTable {
            next_handle: 0,
            pending: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// A timer event for `handle` was pushed onto the queue.
    pub(crate) fn arm(&mut self, handle: u64) {
        self.pending.insert(handle);
    }

    /// Cancel `handle`. Cancels of already-fired (or never-armed) handles
    /// are dropped immediately instead of being remembered.
    pub(crate) fn cancel(&mut self, handle: u64) {
        if self.pending.remove(&handle) {
            self.cancelled.insert(handle);
        }
    }

    /// The timer event for `handle` just popped: should it be delivered?
    /// Either way, all bookkeeping for the handle is released.
    pub(crate) fn should_fire(&mut self, handle: u64) -> bool {
        if self.cancelled.remove(&handle) {
            return false;
        }
        self.pending.remove(&handle)
    }

    /// Live cancellation entries (bounded-growth regression hook).
    #[cfg(test)]
    pub(crate) fn cancelled_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Armed-and-unfired entries (bounded-growth regression hook).
    #[cfg(test)]
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), Event::Start(NodeId(0)));
        q.push(SimTime(1), Event::Start(NodeId(1)));
        q.push(SimTime(1), Event::Start(NodeId(2)));
        let order: Vec<NodeId> = std::iter::from_fn(|| q.pop_due(SimTime(u64::MAX)))
            .map(|(_, e)| match e {
                Event::Start(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), Event::MobilityTick);
        assert!(q.pop_due(SimTime(9)).is_none());
        assert!(q.pop_due(SimTime(10)).is_some());
        assert!(q.pop_due(SimTime(u64::MAX)).is_none());
    }

    #[test]
    fn cancel_before_fire_suppresses_and_releases() {
        let mut t = TimerTable::new();
        t.arm(1);
        t.cancel(1);
        assert!(!t.should_fire(1));
        assert_eq!(t.cancelled_len(), 0, "entry released on pop");
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn cancel_after_fire_does_not_leak() {
        let mut t = TimerTable::new();
        t.arm(7);
        assert!(t.should_fire(7));
        // The protocol cancels a timer that already fired — common when a
        // reply and its timeout race. Must not accumulate state.
        t.cancel(7);
        t.cancel(7);
        assert_eq!(t.cancelled_len(), 0);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn duplicate_cancels_are_idempotent() {
        let mut t = TimerTable::new();
        t.arm(3);
        t.cancel(3);
        t.cancel(3);
        assert_eq!(t.cancelled_len(), 1);
        assert!(!t.should_fire(3));
        assert_eq!(t.cancelled_len(), 0);
    }

    #[test]
    fn unrelated_timers_are_untouched() {
        let mut t = TimerTable::new();
        t.arm(1);
        t.arm(2);
        t.cancel(1);
        assert!(!t.should_fire(1));
        assert!(t.should_fire(2));
        assert_eq!(t.pending_len(), 0);
        assert_eq!(t.cancelled_len(), 0);
    }
}
