//! Event scheduling: the pending-event queue and timer bookkeeping.
//!
//! [`PendingQueue`] is the engine's event store, in one of two
//! implementations selected by [`QueueImpl`] in the engine config:
//!
//! * **Wheel** (default): the hierarchical timer wheel
//!   ([`crate::wheel`]) — O(1) schedule, occupancy-bitmask advance;
//! * **Heap**: the original binary heap ordered by `(time, insertion
//!   sequence)` — kept alive as the differential-testing oracle,
//!   exactly like the linear channel scan backs the spatial grid.
//!
//! Both dispatch simultaneous events in `(time, seq)` order — the
//! backbone of the determinism contract — and same-seed runs are
//! bit-identical under either (`tests/determinism.rs` gates this).
//!
//! The insertion sequence is owned by the *engine*, not the queue:
//! every push carries an explicit `seq` ([`PendingQueue::push_seq`]).
//! That is what lets the sharded executor keep one global sequence
//! stream across K per-shard queues — an event's `(time, seq)` key is
//! identical whichever queue physically holds it, so the merged
//! dispatch order is the single-threaded order by construction.
//!
//! [`TimerTable`] tracks which timer handles are armed and which armed
//! handles have been cancelled. Both sets are bounded: a handle leaves
//! `pending` when its event pops, and `cancelled` only ever holds
//! handles that are still in flight — cancelling an already-fired timer
//! is dropped on the floor instead of lingering forever, so long runs
//! with heavy timer churn don't leak memory.

use crate::ctx::NodeId;
use crate::fxhash::FxHashSet;
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Which pending-event store the engine runs on. `Wheel` unless a
/// differential test or baseline measurement asks for the `Heap`
/// oracle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueImpl {
    #[default]
    Wheel,
    Heap,
}

impl QueueImpl {
    /// Stable lowercase name, as serialized into `RunReport::to_json`.
    pub fn name(self) -> &'static str {
        match self {
            QueueImpl::Wheel => "wheel",
            QueueImpl::Heap => "heap",
        }
    }
}

/// The engine's pending-event store (see [`QueueImpl`]).
pub(crate) enum PendingQueue {
    Wheel(TimerWheel),
    Heap(EventQueue),
}

impl PendingQueue {
    pub(crate) fn new(kind: QueueImpl) -> Self {
        match kind {
            QueueImpl::Wheel => PendingQueue::Wheel(TimerWheel::new()),
            QueueImpl::Heap => PendingQueue::Heap(EventQueue::new()),
        }
    }

    /// Schedule `event` at `time` with the caller-assigned tiebreak
    /// sequence (globally unique and monotone within a run).
    #[inline]
    pub(crate) fn push_seq(&mut self, time: SimTime, seq: u64, event: Event) {
        match self {
            PendingQueue::Wheel(w) => w.push_seq(time, seq, event),
            PendingQueue::Heap(h) => h.push_seq(time, seq, event),
        }
    }

    /// Pop the next event (with its sequence) if due at or before `until`.
    #[inline]
    pub(crate) fn pop_due_seq(&mut self, until: SimTime) -> Option<(SimTime, u64, Event)> {
        match self {
            PendingQueue::Wheel(w) => w.pop_due_seq(until),
            PendingQueue::Heap(h) => h.pop_due_seq(until),
        }
    }

    /// The `(time, seq)` key of the next event if due at or before
    /// `until`, without removing it. (The wheel may advance internal
    /// cascades to answer this; that is observably a no-op *within one
    /// queue* — but it commits the wheel's cursor up to the answer, so
    /// the sharded executor must bound `until` by what other shards may
    /// still push; see [`PendingQueue::next_time_hint`].)
    #[inline]
    pub(crate) fn peek_due(&mut self, until: SimTime) -> Option<(SimTime, u64)> {
        match self {
            PendingQueue::Wheel(w) => w.peek_due(until),
            PendingQueue::Heap(h) => h.peek_due(until),
        }
    }

    /// A lower bound on the earliest pending event's time that is
    /// guaranteed not to move any internal cursor: exact for the heap,
    /// the earliest occupied slot's base time for the wheel. `None` iff
    /// the queue is empty.
    #[inline]
    pub(crate) fn next_time_hint(&self) -> Option<SimTime> {
        match self {
            PendingQueue::Wheel(w) => w.next_time_hint(),
            PendingQueue::Heap(h) => h.next_time_hint(),
        }
    }
}

/// Everything the engine can dispatch.
pub(crate) enum Event {
    Start(NodeId),
    Deliver {
        to: NodeId,
        src: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    Timer {
        node: NodeId,
        handle: u64,
        tag: u64,
    },
    LinkFailure {
        node: NodeId,
        to: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    MobilityTick,
    Kill(NodeId),
}

struct QueueItem {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of pending events keyed by `(time, seq)`.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<QueueItem>>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    pub(crate) fn push_seq(&mut self, time: SimTime, seq: u64, event: Event) {
        self.heap.push(Reverse(QueueItem { time, seq, event }));
    }

    /// Pop the next event if it is due at or before `until`.
    pub(crate) fn pop_due_seq(&mut self, until: SimTime) -> Option<(SimTime, u64, Event)> {
        match self.heap.peek() {
            Some(Reverse(head)) if head.time <= until => {}
            _ => return None,
        }
        let Reverse(item) = self.heap.pop().expect("peeked");
        Some((item.time, item.seq, item.event))
    }

    pub(crate) fn peek_due(&mut self, until: SimTime) -> Option<(SimTime, u64)> {
        match self.heap.peek() {
            Some(Reverse(head)) if head.time <= until => Some((head.time, head.seq)),
            _ => None,
        }
    }

    /// Exact time of the earliest event (the heap has no cursor, so
    /// the "hint" is exact and free of side effects).
    pub(crate) fn next_time_hint(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(head)| head.time)
    }
}

/// Armed-timer and cancellation bookkeeping (see module docs for the
/// boundedness invariant). Handle *allocation* lives with the node
/// (`NodeSlot::next_handle`, namespaced by node id) so both execution
/// modes and all shards draw from identical handle streams.
pub(crate) struct TimerTable {
    /// Handles armed and not yet popped from the event queue.
    pending: FxHashSet<u64>,
    /// Armed handles whose owners cancelled them before they fired.
    cancelled: FxHashSet<u64>,
}

impl TimerTable {
    pub(crate) fn new() -> Self {
        TimerTable {
            pending: FxHashSet::default(),
            cancelled: FxHashSet::default(),
        }
    }

    /// A timer event for `handle` was pushed onto the queue.
    pub(crate) fn arm(&mut self, handle: u64) {
        self.pending.insert(handle);
    }

    /// Cancel `handle`. Cancels of already-fired (or never-armed) handles
    /// are dropped immediately instead of being remembered.
    pub(crate) fn cancel(&mut self, handle: u64) {
        if self.pending.remove(&handle) {
            self.cancelled.insert(handle);
        }
    }

    /// The timer event for `handle` just popped: should it be delivered?
    /// Either way, all bookkeeping for the handle is released.
    pub(crate) fn should_fire(&mut self, handle: u64) -> bool {
        if self.cancelled.remove(&handle) {
            return false;
        }
        self.pending.remove(&handle)
    }

    /// Live cancellation entries (bounded-growth regression hook).
    #[cfg(test)]
    pub(crate) fn cancelled_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Armed-and-unfired entries (bounded-growth regression hook).
    #[cfg(test)]
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_seq() {
        let mut q = EventQueue::new();
        q.push_seq(SimTime(5), 0, Event::Start(NodeId(0)));
        q.push_seq(SimTime(1), 1, Event::Start(NodeId(1)));
        q.push_seq(SimTime(1), 2, Event::Start(NodeId(2)));
        let order: Vec<NodeId> = std::iter::from_fn(|| q.pop_due_seq(SimTime(u64::MAX)))
            .map(|(_, _, e)| match e {
                Event::Start(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn seq_breaks_ties_regardless_of_push_order() {
        // The engine owns the sequence stream; the queue must honor it
        // even when pushes arrive out of seq order (the sharded replay
        // path routes deferred events into queues in merge order, which
        // is not push order).
        let mut q = EventQueue::new();
        q.push_seq(SimTime(3), 9, Event::Start(NodeId(9)));
        q.push_seq(SimTime(3), 4, Event::Start(NodeId(4)));
        let first = q.pop_due_seq(SimTime(u64::MAX)).unwrap();
        assert_eq!(first.1, 4);
        assert_eq!(q.pop_due_seq(SimTime(u64::MAX)).unwrap().1, 9);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.push_seq(SimTime(10), 0, Event::MobilityTick);
        assert!(q.pop_due_seq(SimTime(9)).is_none());
        assert!(q.pop_due_seq(SimTime(10)).is_some());
        assert!(q.pop_due_seq(SimTime(u64::MAX)).is_none());
    }

    #[test]
    fn peek_matches_pop_and_does_not_consume() {
        let mut q = EventQueue::new();
        q.push_seq(SimTime(7), 3, Event::MobilityTick);
        assert_eq!(q.peek_due(SimTime(6)), None);
        assert_eq!(q.peek_due(SimTime(7)), Some((SimTime(7), 3)));
        assert_eq!(
            q.peek_due(SimTime(7)),
            Some((SimTime(7), 3)),
            "peek consumed"
        );
        let (t, s, _) = q.pop_due_seq(SimTime(7)).unwrap();
        assert_eq!((t, s), (SimTime(7), 3));
    }

    #[test]
    fn cancel_before_fire_suppresses_and_releases() {
        let mut t = TimerTable::new();
        t.arm(1);
        t.cancel(1);
        assert!(!t.should_fire(1));
        assert_eq!(t.cancelled_len(), 0, "entry released on pop");
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn cancel_after_fire_does_not_leak() {
        let mut t = TimerTable::new();
        t.arm(7);
        assert!(t.should_fire(7));
        // The protocol cancels a timer that already fired — common when a
        // reply and its timeout race. Must not accumulate state.
        t.cancel(7);
        t.cancel(7);
        assert_eq!(t.cancelled_len(), 0);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn duplicate_cancels_are_idempotent() {
        let mut t = TimerTable::new();
        t.arm(3);
        t.cancel(3);
        t.cancel(3);
        assert_eq!(t.cancelled_len(), 1);
        assert!(!t.should_fire(3));
        assert_eq!(t.cancelled_len(), 0);
    }

    #[test]
    fn unrelated_timers_are_untouched() {
        let mut t = TimerTable::new();
        t.arm(1);
        t.arm(2);
        t.cancel(1);
        assert!(!t.should_fire(1));
        assert!(t.should_fire(2));
        assert_eq!(t.pending_len(), 0);
        assert_eq!(t.cancelled_len(), 0);
    }
}
