//! A fast, deterministic hasher for the workspace's hot maps.
//!
//! The per-frame maps (timer tables here; neighbor cache, RREQ dedup
//! set, pending-ack table in `manet-secure`) are touched once or more
//! per delivered frame; SipHash's keyed setup and finalization showed
//! up in scale-run profiles. This is the well-known Fx/rustc
//! multiply-rotate fold: not DoS-resistant — irrelevant here, keys
//! come from the simulation itself — but seed-free, so
//! iteration-independent lookups stay deterministic run-to-run (map
//! *iteration order* must still never leak into protocol behavior;
//! that contract predates this hasher and is pinned by the determinism
//! and golden-trace suites, and statically by manet-lint's
//! `unordered-iter` rule).
//!
//! This module is the canonical copy; `manet-secure` re-exports it as
//! `crate::fxhash`, and `manet-crypto` (which sits below this crate in
//! the dependency graph) carries a byte-for-byte mirror.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` alias pair on the Fx hasher.
// lint: allow(default-hasher) — alias definition site: the std type is rebound onto the Fx hasher here
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
// lint: allow(default-hasher) — alias definition site: the std type is rebound onto the Fx hasher here
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash folding hasher (64-bit variant).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint: allow(panic-budget) — chunks_exact(8) guarantees 8-byte slices; the conversion cannot fail
            self.add(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche. The folding multiply in `add` only
        // propagates entropy *upward*, so a key whose variation sits in
        // the top bytes of its last word (e.g. addresses differing only
        // in their final big-endian groups, which land in the high bits
        // of the little-endian chunk) would leave the low — bucket-index
        // — bits constant and degrade the map to a linked list. One
        // fold-multiply-fold round pushes high-bit entropy back down;
        // two extra ALU ops per lookup, still far below SipHash setup.
        let h = self.hash;
        let h = (h ^ (h >> 32)).wrapping_mul(SEED);
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(b"hello world!!"), hash_of(b"hello world!!"));
        assert_ne!(hash_of(b"hello world!!"), hash_of(b"hello world!?"));
        // Tail handling: same prefix, differing short remainder.
        assert_ne!(hash_of(b"12345678a"), hash_of(b"12345678b"));
    }

    #[test]
    fn map_basics_work() {
        let mut m: FxHashMap<[u8; 16], u32> = FxHashMap::default();
        for i in 0..100u32 {
            let mut k = [0u8; 16];
            k[..4].copy_from_slice(&i.to_le_bytes());
            m.insert(k, i);
        }
        assert_eq!(m.len(), 100);
        let mut k = [0u8; 16];
        k[..4].copy_from_slice(&42u32.to_le_bytes());
        assert_eq!(m.get(&k), Some(&42));
    }

    #[test]
    fn high_byte_entropy_reaches_the_bucket_bits() {
        // Keys differing only in the last two bytes of a 16-byte key —
        // the shape of structured IPv6 addresses (`fec0::…::d`) — must
        // not collide in the low bits hashbrown uses for bucket
        // selection. Without the finishing avalanche, every one of
        // these collided in the bottom 48 bits.
        let mut low_bits = std::collections::HashSet::new();
        for d in 0..1024u16 {
            let mut k = [0u8; 16];
            k[0] = 0xfe;
            k[1] = 0xc0;
            k[14..16].copy_from_slice(&d.to_be_bytes());
            low_bits.insert(hash_of(&k) & 0xfff);
        }
        // 1024 keys into 4096 buckets: expect ~900 distinct values;
        // anything below half signals clustering.
        assert!(
            low_bits.len() > 512,
            "low-bit clustering: {} distinct of 1024",
            low_bits.len()
        );
    }

    #[test]
    fn set_dedup_works() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
    }
}
