//! The protocol-facing surface of the engine: node identity, frame
//! destinations, the [`Protocol`] trait, and the [`Ctx`] window through
//! which a protocol callback interacts with the world.
//!
//! Everything a protocol can do during a callback is buffered in a
//! [`CtxOut`] and applied by the engine when the callback returns, so
//! protocol code can never observe (or corrupt) engine internals
//! mid-event.

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Dir, TraceEvent, Tracer};
use rand_chacha::ChaCha12Rng;
use std::any::Any;

/// Identifies a node (index into the engine's node table). This is the
/// *link-layer* identity; IP addresses live entirely in the protocol layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

/// Where a frame is headed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDst {
    Broadcast,
    Unicast(NodeId),
}

/// Handle for cancelling a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(pub(crate) u64);

/// A node's behaviour. Implementations hold all protocol state; the
/// engine only knows about frames and timers.
///
/// `Send` because the sharded executor moves node slabs onto scoped
/// worker threads; protocol state is plain owned data, so this costs
/// implementations nothing.
pub trait Protocol: Send {
    /// Called once when the node joins the network.
    fn on_start(&mut self, ctx: &mut Ctx);

    /// A frame arrived from link-layer neighbor `src`.
    fn on_frame(&mut self, ctx: &mut Ctx, src: NodeId, bytes: &[u8]);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, tag: u64);

    /// A unicast frame could not be delivered (peer dead or out of range).
    /// Models the MAC-layer ACK timeout that DSR uses to detect broken
    /// links. Default: ignore.
    fn on_link_failure(&mut self, _ctx: &mut Ctx, _to: NodeId, _bytes: &[u8]) {}

    /// Speculative pass over a frame that will be delivered to this node
    /// later in the current tick/window, run *before* any of the batch's
    /// [`Protocol::on_frame`] calls. Implementations may enqueue
    /// signature triples for batch verification but MUST NOT cause any
    /// observable protocol effect: no state changes, no sends, no
    /// timers, no metrics. Takes `&self` so the no-side-effects rule is
    /// enforced by the compiler (batch queues live behind shared
    /// handles with interior mutability). A wrong or missing prefetch
    /// may only cost performance, never correctness. Default: do
    /// nothing.
    fn prefetch_frame(&self, _src: NodeId, _bytes: &[u8]) {}

    /// Downcasting support so harnesses can inspect protocol state after
    /// a run.
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Commands a protocol issues during a callback; applied by the engine
/// when the callback returns. The engine keeps one instance and reuses
/// its buffers across callbacks (drained, never dropped), so dispatch
/// allocates nothing in steady state.
#[derive(Default)]
pub(crate) struct CtxOut {
    pub(crate) sends: Vec<(LinkDst, Vec<u8>)>,
    pub(crate) timers: Vec<(SimDuration, u64, u64)>, // (delay, handle, tag)
    pub(crate) cancels: Vec<u64>,
}

/// The protocol's window onto the world during a callback.
pub struct Ctx<'a> {
    /// The node being called.
    pub node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) out: &'a mut CtxOut,
    pub(crate) rng: &'a mut ChaCha12Rng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) tracer: &'a mut Tracer,
    pub(crate) next_handle: &'a mut u64,
    pub(crate) frame_pool: &'a mut Vec<Vec<u8>>,
    /// When `Some`, samples are buffered here instead of hitting
    /// `metrics` directly — the sharded executor's parallel phase logs
    /// samples per shard and applies them in merge order during replay,
    /// so the global series see the exact single-threaded sequence.
    pub(crate) sample_log: Option<&'a mut Vec<(&'static str, f64)>>,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// An empty byte buffer for encoding an outgoing frame — recycled
    /// from a previously delivered frame when one is available, so the
    /// encode→transmit→deliver cycle reuses storage instead of
    /// allocating per frame. Hand the filled buffer to
    /// [`Ctx::broadcast`] / [`Ctx::unicast`] as usual.
    pub fn frame_buf(&mut self) -> Vec<u8> {
        self.frame_pool.pop().unwrap_or_default()
    }

    /// Queue a broadcast frame.
    pub fn broadcast(&mut self, bytes: Vec<u8>) {
        self.out.sends.push((LinkDst::Broadcast, bytes));
    }

    /// Queue a unicast frame to link-layer neighbor `to`.
    pub fn unicast(&mut self, to: NodeId, bytes: Vec<u8>) {
        self.out.sends.push((LinkDst::Unicast(to), bytes));
    }

    /// Arm a timer that fires after `delay` with the given tag.
    ///
    /// Handles are namespaced by node (`node_id << 32 | local counter`)
    /// so every node draws from its own stream — the allocation order
    /// is then a per-node fact, identical under single-threaded and
    /// sharded execution.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let handle = ((self.node.0 as u64) << 32) | *self.next_handle;
        *self.next_handle += 1;
        self.out.timers.push((delay, handle, tag));
        TimerHandle(handle)
    }

    /// Cancel a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.out.cancels.push(h.0);
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }

    /// Bump a counter.
    pub fn count(&mut self, name: &'static str, by: u64) {
        self.metrics.count(name, by);
    }

    /// Record a sample.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        match self.sample_log.as_deref_mut() {
            Some(log) => log.push((name, v)),
            None => self.metrics.sample(name, v),
        }
    }

    /// Record a trace event (no-op unless tracing is enabled).
    pub fn trace(&mut self, dir: Dir, kind: &'static str, detail: impl Into<String>) {
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent {
                time: self.now,
                node: self.node,
                dir,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// Is tracing on? Lets protocols skip building expensive detail strings.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }
}
