//! The link layer: how frames find their receivers.
//!
//! Broadcast delivery, [`Engine::neighbors`], and
//! [`Engine::connected_component`] all reduce to one primitive — "which
//! nodes could possibly hear a transmission from this position?" — and
//! this module answers it two ways, selected by
//! [`ChannelMode`](crate::link::ChannelMode) in the engine config:
//!
//! * **Grid** (default): query the 3×3 cell neighborhood of the uniform
//!   spatial index ([`crate::grid`]), O(density) per transmission;
//! * **Linear**: scan the whole node table, O(n) per transmission — the
//!   original implementation, kept alive as the differential-testing
//!   oracle and the baseline for the scale exhibits.
//!
//! Both paths visit candidates in ascending [`NodeId`] order and apply
//! identical liveness/range filters before any RNG draw, so same-seed
//! runs are bit-identical across modes (`tests/determinism.rs` and
//! `tests/grid_channel.rs` gate this).
//!
//! Transmission itself ([`transmit_into`]) is a free function over a
//! borrowed [`LinkEnv`] rather than an `Engine` method: the sharded
//! executor runs it concurrently from worker threads (each with its own
//! RNG, metrics, and output buffer) against the same shared read-only
//! world, and the single-threaded path calls the identical code — one
//! implementation, so the two modes cannot drift.

use crate::ctx::{LinkDst, NodeId};
use crate::engine::{Engine, HotNode};
use crate::geom::Pos;
use crate::grid::SpatialGrid;
use crate::metrics::Metrics;
use crate::queue::Event;
use crate::radio::RadioConfig;
use crate::time::SimTime;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// How broadcast delivery and neighborhood queries enumerate candidate
/// receivers. See the module docs; `Grid` is the default and `Linear`
/// exists for differential tests and baseline measurements.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChannelMode {
    #[default]
    Grid,
    Linear,
}

/// The read-only world a transmission consults: radio model, node
/// positions/liveness, and the optional spatial index. Borrowed
/// immutably so any number of shard workers can transmit concurrently.
pub(crate) struct LinkEnv<'a> {
    pub(crate) radio: &'a RadioConfig,
    pub(crate) hot: &'a [HotNode],
    pub(crate) grid: Option<&'a SpatialGrid>,
}

/// Fill `out` with candidate receivers around `pos`, ascending by
/// NodeId: the grid's 3×3 neighborhood, or every node in linear mode.
#[inline]
pub(crate) fn candidates_into(env: &LinkEnv<'_>, pos: &Pos, out: &mut Vec<NodeId>) {
    match env.grid {
        Some(grid) => grid.candidates_into(pos, out),
        None => {
            out.clear();
            out.extend((0..env.hot.len()).map(NodeId));
        }
    }
}

/// Transmit `bytes` from `src`, resolving receivers and delays against
/// `env` at time `now`, and append the resulting future events (with
/// their times) to `out` instead of scheduling them directly. `rng`
/// must be the *sender's* deterministic stream and `cand` is a reused
/// scratch buffer.
///
/// Every delay this emits is `>= radio.base_delay` (see
/// `RadioConfig::sample_delay`), which is the lookahead guarantee the
/// sharded executor's epoch windows rely on: a frame sent inside a
/// window can never need delivery inside that same window.
// Three of the nine parameters are reused scratch/output buffers; the
// zero-alloc contract is worth more than a tidy signature here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transmit_into(
    env: &LinkEnv<'_>,
    now: SimTime,
    src: NodeId,
    dst: LinkDst,
    bytes: Vec<u8>,
    rng: &mut ChaCha12Rng,
    metrics: &mut Metrics,
    cand: &mut Vec<NodeId>,
    out: &mut Vec<(SimTime, Event)>,
) {
    if !env.hot[src.0].alive {
        return;
    }
    metrics.count("phy.tx_frames", 1);
    metrics.count("phy.tx_bytes", bytes.len() as u64);
    let bytes = Arc::new(bytes);
    let src_pos = env.hot[src.0].pos;
    match dst {
        LinkDst::Broadcast => {
            metrics.count("phy.tx_broadcasts", 1);
            candidates_into(env, &src_pos, cand);
            for &to in cand.iter() {
                if to == src {
                    continue;
                }
                let n = &env.hot[to.0];
                // `join_at <= now` rather than `started`: peers whose
                // Start event is queued for this same instant are
                // physically present; they will have started by the
                // time the delivery (≥ base_delay later) arrives.
                if !n.alive || n.join_at > now {
                    continue;
                }
                let d = src_pos.dist(&n.pos);
                if d > env.radio.max_range() {
                    continue;
                }
                if !env.radio.sample_broadcast_reception(d, rng) {
                    metrics.count("phy.rx_dropped_loss", 1);
                    continue;
                }
                let delay = env.radio.sample_delay(bytes.len(), rng);
                out.push((
                    now + delay,
                    Event::Deliver {
                        to,
                        src,
                        bytes: Arc::clone(&bytes),
                    },
                ));
            }
        }
        LinkDst::Unicast(to) => {
            metrics.count("phy.tx_unicasts", 1);
            let reachable = {
                let n = &env.hot[to.0];
                n.alive && n.join_at <= now && env.radio.in_range(src_pos.dist(&n.pos))
            };
            if reachable {
                // MAC ARQ abstraction: no random loss on unicast.
                let delay = env.radio.sample_delay(bytes.len(), rng);
                out.push((
                    now + delay,
                    Event::Deliver {
                        to,
                        src,
                        bytes: Arc::clone(&bytes),
                    },
                ));
            } else {
                metrics.count("phy.tx_unicast_unreachable", 1);
                // ACK-timeout feedback after ~MAC retry budget.
                let delay = env.radio.sample_delay(bytes.len(), rng);
                let t = now + delay + env.radio.base_delay + env.radio.base_delay;
                out.push((
                    t,
                    Event::LinkFailure {
                        node: src,
                        to,
                        bytes: Arc::clone(&bytes),
                    },
                ));
            }
        }
    }
}

impl Engine {
    /// Link-layer neighbors of `node` right now (alive and in range),
    /// ascending by NodeId, written into a caller-owned buffer (prior
    /// contents are replaced) — the allocation-free variant for hot
    /// call-sites.
    pub fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        let env = self.link_env();
        let me_pos = env.hot[node.0].pos;
        candidates_into(&env, &me_pos, out);
        let now = self.now();
        out.retain(|&other| {
            let n = &env.hot[other.0];
            other != node && n.alive && n.join_at <= now && env.radio.in_range(me_pos.dist(&n.pos))
        });
    }

    /// Link-layer neighbors of `node` right now (alive and in range),
    /// ascending by NodeId.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(node, &mut out);
        out
    }

    /// All nodes reachable from `from` over current radio links (BFS on
    /// the unit-disk graph of alive, joined nodes), including `from`.
    pub fn connected_component(&self, from: NodeId) -> Vec<NodeId> {
        let n_nodes = self.node_count();
        let mut seen = vec![false; n_nodes];
        let mut queue = std::collections::VecDeque::new();
        if self.is_alive(from) {
            seen[from.0] = true;
            queue.push_back(from);
        }
        let mut out = Vec::new();
        let mut nbrs = Vec::new();
        while let Some(n) = queue.pop_front() {
            out.push(n);
            self.neighbors_into(n, &mut nbrs);
            for &next in &nbrs {
                if !seen[next.0] {
                    seen[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Is the set of alive, joined nodes one connected radio graph?
    /// Useful as a scenario sanity check — a partitioned topology makes
    /// most delivery assertions meaningless.
    pub fn is_connected(&self) -> bool {
        let now = self.now();
        let alive: Vec<NodeId> = (0..self.node_count())
            .map(NodeId)
            .filter(|&n| {
                let s = self.hot_slot(n);
                s.alive && s.join_at <= now
            })
            .collect();
        match alive.first() {
            None => true,
            Some(&first) => self.connected_component(first).len() == alive.len(),
        }
    }
}
