//! The link layer: how frames find their receivers.
//!
//! Broadcast delivery, [`Engine::neighbors`], and
//! [`Engine::connected_component`] all reduce to one primitive — "which
//! nodes could possibly hear a transmission from this position?" — and
//! this module answers it two ways, selected by
//! [`ChannelMode`](crate::link::ChannelMode) in the engine config:
//!
//! * **Grid** (default): query the 3×3 cell neighborhood of the uniform
//!   spatial index ([`crate::grid`]), O(density) per transmission;
//! * **Linear**: scan the whole node table, O(n) per transmission — the
//!   original implementation, kept alive as the differential-testing
//!   oracle and the baseline for the scale exhibits.
//!
//! Both paths visit candidates in ascending [`NodeId`] order and apply
//! identical liveness/range filters before any RNG draw, so same-seed
//! runs are bit-identical across modes (`tests/determinism.rs` and
//! `tests/grid_channel.rs` gate this).

use crate::ctx::{LinkDst, NodeId};
use crate::engine::Engine;
use crate::geom::Pos;
use crate::queue::Event;
use std::sync::Arc;

/// How broadcast delivery and neighborhood queries enumerate candidate
/// receivers. See the module docs; `Grid` is the default and `Linear`
/// exists for differential tests and baseline measurements.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChannelMode {
    #[default]
    Grid,
    Linear,
}

impl Engine {
    /// Fill `out` with candidate receivers around `pos`, ascending by
    /// NodeId: the grid's 3×3 neighborhood, or every node in linear mode.
    fn candidates_into(&self, pos: &Pos, out: &mut Vec<NodeId>) {
        match &self.grid {
            Some(grid) => grid.candidates_into(pos, out),
            None => {
                out.clear();
                out.extend((0..self.hot.len()).map(NodeId));
            }
        }
    }

    /// Link-layer neighbors of `node` right now (alive and in range),
    /// ascending by NodeId, written into a caller-owned buffer (prior
    /// contents are replaced) — the allocation-free variant for hot
    /// call-sites.
    pub fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        let me_pos = self.hot[node.0].pos;
        self.candidates_into(&me_pos, out);
        out.retain(|&other| {
            let n = &self.hot[other.0];
            other != node
                && n.alive
                && n.join_at <= self.now
                && self.cfg.radio.in_range(me_pos.dist(&n.pos))
        });
    }

    /// Link-layer neighbors of `node` right now (alive and in range),
    /// ascending by NodeId.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(node, &mut out);
        out
    }

    /// All nodes reachable from `from` over current radio links (BFS on
    /// the unit-disk graph of alive, joined nodes), including `from`.
    pub fn connected_component(&self, from: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.hot.len()];
        let mut queue = std::collections::VecDeque::new();
        if self.hot[from.0].alive {
            seen[from.0] = true;
            queue.push_back(from);
        }
        let mut out = Vec::new();
        let mut nbrs = Vec::new();
        while let Some(n) = queue.pop_front() {
            out.push(n);
            self.neighbors_into(n, &mut nbrs);
            for &next in &nbrs {
                if !seen[next.0] {
                    seen[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Is the set of alive, joined nodes one connected radio graph?
    /// Useful as a scenario sanity check — a partitioned topology makes
    /// most delivery assertions meaningless.
    pub fn is_connected(&self) -> bool {
        let alive: Vec<NodeId> = (0..self.hot.len())
            .map(NodeId)
            .filter(|&n| {
                let s = &self.hot[n.0];
                s.alive && s.join_at <= self.now
            })
            .collect();
        match alive.first() {
            None => true,
            Some(&first) => self.connected_component(first).len() == alive.len(),
        }
    }

    pub(crate) fn transmit(&mut self, src: NodeId, dst: LinkDst, bytes: Vec<u8>) {
        if !self.hot[src.0].alive {
            return;
        }
        self.metrics.count("phy.tx_frames", 1);
        self.metrics.count("phy.tx_bytes", bytes.len() as u64);
        let bytes = Arc::new(bytes);
        let src_pos = self.hot[src.0].pos;
        match dst {
            LinkDst::Broadcast => {
                self.metrics.count("phy.tx_broadcasts", 1);
                // Scratch buffer reuse: broadcast is the hottest path in
                // flooding workloads, one allocation per call adds up.
                let mut cand = std::mem::take(&mut self.bcast_scratch);
                self.candidates_into(&src_pos, &mut cand);
                for &to in &cand {
                    if to == src {
                        continue;
                    }
                    let n = &self.hot[to.0];
                    // `join_at <= now` rather than `started`: peers whose
                    // Start event is queued for this same instant are
                    // physically present; they will have started by the
                    // time the delivery (≥ base_delay later) arrives.
                    if !n.alive || n.join_at > self.now {
                        continue;
                    }
                    let d = src_pos.dist(&n.pos);
                    if d > self.cfg.radio.max_range() {
                        continue;
                    }
                    if !self.cfg.radio.sample_broadcast_reception(d, &mut self.rng) {
                        self.metrics.count("phy.rx_dropped_loss", 1);
                        continue;
                    }
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t = self.now + delay;
                    self.queue.push(
                        t,
                        Event::Deliver {
                            to,
                            src,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                }
                self.bcast_scratch = cand;
            }
            LinkDst::Unicast(to) => {
                self.metrics.count("phy.tx_unicasts", 1);
                let reachable = {
                    let n = &self.hot[to.0];
                    n.alive
                        && n.join_at <= self.now
                        && self.cfg.radio.in_range(src_pos.dist(&n.pos))
                };
                if reachable {
                    // MAC ARQ abstraction: no random loss on unicast.
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t = self.now + delay;
                    self.queue.push(
                        t,
                        Event::Deliver {
                            to,
                            src,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                } else {
                    self.metrics.count("phy.tx_unicast_unreachable", 1);
                    // ACK-timeout feedback after ~MAC retry budget.
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t =
                        self.now + delay + self.cfg.radio.base_delay + self.cfg.radio.base_delay;
                    self.queue.push(
                        t,
                        Event::LinkFailure {
                            node: src,
                            to,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                }
            }
        }
    }
}
