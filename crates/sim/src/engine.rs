//! The discrete-event engine.
//!
//! Deterministic whatever the executor: a global `(time, insertion
//! sequence)` dispatch order, per-node RNG streams, and node protocols
//! that interact with the world only through [`Ctx`]. Two executors
//! share all of the dispatch code ([`EngineConfig::exec`]):
//!
//! * [`ExecMode::Single`]: the classic one-queue pop loop — the
//!   differential oracle;
//! * [`ExecMode::Sharded`]\(K\): the field is split into K contiguous
//!   x-bands; each shard owns the event queue, timer table, and
//!   protocol slabs of its nodes and runs on scoped `rayon` workers
//!   under conservative synchronization (see below). Same-seed runs
//!   are byte-identical to `Single` — traces, metrics, and event
//!   counts — which `tests/determinism.rs` enforces at scenario level
//!   and `exhibits` at S2 scale.
//!
//! Coarser parallelism (independent simulation cells on a rayon pool)
//! still lives one level up in [`crate::runner`].
//!
//! ## How sharding keeps the single-threaded universe
//!
//! * **Lookahead.** Every transmission is delivered at least
//!   `radio.base_delay` after it is sent (`RadioConfig::sample_delay`
//!   can only add to the base), so inside a window of that length a
//!   shard can dispatch its own events knowing no other shard can
//!   inject new work into it. Each epoch processes the half-open
//!   window `[t, t+lookahead)` clipped to the next barrier event and
//!   the run horizon.
//! * **Epoch barrier.** Events with global effects — mobility ticks
//!   (every node moves, the spatial grid mutates) and kills — live in
//!   a separate barrier queue and are dispatched serially, merged with
//!   all shard queues in `(time, seq)` order. Between barriers the
//!   hot slab (positions, liveness) and grid are frozen, so shard
//!   workers share them read-only.
//! * **Deterministic merge.** The engine owns one global sequence
//!   counter. During a window a shard *logs* its would-be pushes and
//!   side effects (trace lines, metric samples) per callback; at the
//!   epoch end the per-shard logs are replayed serially in merged
//!   `(time, seq)` order, assigning real sequence numbers to new
//!   events exactly as the single-threaded loop would have. Timers a
//!   callback schedules inside its own window are pushed immediately
//!   under a provisional sequence (they sort after every pre-window
//!   event of the same tick, which is where their real sequence lands
//!   too) and resolved at replay. Counters are order-insensitive and
//!   folded per epoch.
//! * **Per-node streams.** RNG draws (protocol, transmit, mobility)
//!   come from a per-node ChaCha stream seeded from `(cfg.seed, node
//!   id)`, and timer handles are namespaced per node — so the order
//!   two *different* nodes dispatch in never changes what either
//!   draws. [`Engine::rng`] stays a separate harness stream for
//!   construction-time draws.
//!
//! ## Link-layer semantics
//!
//! * **Broadcast** frames reach every alive node within radio range, each
//!   reception independently subject to the configured loss probability.
//! * **Unicast** frames model a MAC with ARQ (802.11-style): delivery is
//!   reliable while the peer is alive and in range; if it is not, the
//!   sender gets an [`Protocol::on_link_failure`] callback — this is the
//!   trigger for the protocol's RERR path.
//!
//! ## Channel & spatial index
//!
//! Receiver lookup is either a uniform spatial grid with cell size
//! `radio.max_range()` ([`ChannelMode::Grid`], the default, O(density)
//! per broadcast) or the original linear scan kept as the differential
//! oracle ([`ChannelMode::Linear`]). Candidates are always visited in
//! ascending [`NodeId`] order with liveness/range filters ahead of any
//! RNG draw, so same-seed runs are bit-identical under either mode.

pub use crate::ctx::{Ctx, LinkDst, NodeId, Protocol, TimerHandle};
pub use crate::link::ChannelMode;
pub use crate::queue::QueueImpl;

use crate::ctx::CtxOut;
use crate::geom::{Field, Pos};
use crate::grid::SpatialGrid;
use crate::link::{transmit_into, LinkEnv};
use crate::metrics::Metrics;
use crate::mobility::{Mobility, MobilityState};
use crate::queue::{Event, PendingQueue, TimerTable};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;

/// Which executor runs the event loop (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// One queue, one thread — the differential oracle.
    Single,
    /// K field-band shards on scoped worker threads, byte-identical to
    /// `Single` by construction.
    Sharded(usize),
}

impl ExecMode {
    /// Stable lowercase name, as serialized into `RunReport::to_json`.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Single => "single",
            ExecMode::Sharded(_) => "sharded",
        }
    }

    /// Number of shards this mode runs (1 for `Single`).
    pub fn shard_count(self) -> usize {
        match self {
            ExecMode::Single => 1,
            ExecMode::Sharded(k) => k,
        }
    }
}

fn parse_exec(v: &str) -> Option<ExecMode> {
    if v == "single" {
        return Some(ExecMode::Single);
    }
    let k: usize = v.strip_prefix("sharded:")?.parse().ok()?;
    (k >= 1).then_some(ExecMode::Sharded(k))
}

impl Default for ExecMode {
    /// `MANET_EXEC` env knob (`single` | `sharded:K`), read once — the
    /// CI matrix uses it to run the whole test suite under each
    /// executor. Defaults to `Single`; an unparseable value panics
    /// rather than silently testing the wrong mode.
    fn default() -> Self {
        static MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("MANET_EXEC") {
            Err(_) => ExecMode::Single,
            Ok(v) => parse_exec(&v)
                .unwrap_or_else(|| panic!("invalid MANET_EXEC={v:?} (want single|sharded:K)")),
        })
    }
}

/// Cold per-node state: touched once per dispatched callback (protocol)
/// or once per mobility tick (mobility), never in the candidate-filter
/// loop. Lives in its owner shard's slab.
///
/// Stored struct-of-arrays: the AoS layout interleaved a ~250-byte
/// stride of protocol box + mobility + RNG between consecutive
/// `started` flags, so the per-dispatch liveness check dragged a cache
/// line of cold state per node. Split into parallel vectors, the
/// `started` column is one byte per node and the RNG/handle columns
/// only fault in when a callback actually fires.
#[derive(Default)]
pub(crate) struct NodeSlab {
    protos: Vec<Option<Box<dyn Protocol>>>,
    mobility: Vec<MobilityState>,
    /// Per-node deterministic streams: protocol draws, transmit
    /// loss/delay draws (as sender), and mobility steps.
    rngs: Vec<ChaCha12Rng>,
    /// Checked on every dispatched delivery/timer — the hot column.
    started: Vec<bool>,
    /// Next local timer-handle counters (namespaced by node id in
    /// [`Ctx::set_timer`]).
    next_handles: Vec<u64>,
}

impl NodeSlab {
    fn len(&self) -> usize {
        self.protos.len()
    }

    fn push(&mut self, proto: Box<dyn Protocol>, mobility: MobilityState, rng: ChaCha12Rng) {
        self.protos.push(Some(proto));
        self.mobility.push(mobility);
        self.rngs.push(rng);
        self.started.push(false);
        self.next_handles.push(0);
    }
}

/// Hot per-node state, packed into one global slab so the broadcast
/// delivery filter (position + liveness + join check per candidate)
/// touches a few bytes per node instead of dragging the protocol box
/// through the cache. Frozen between barriers, so shard workers read it
/// lock-free.
pub(crate) struct HotNode {
    pub(crate) pos: Pos,
    pub(crate) join_at: SimTime,
    pub(crate) alive: bool,
}

/// Recycled frame buffers kept at most this many deep (largest scale
/// exhibit uses a few hundred in flight; frames are ~100–300 bytes).
const FRAME_POOL_CAP: usize = 1024;

/// Marks a provisional sequence number (assigned inside a window,
/// resolved at replay). Real sequences would need 2^63 events to get
/// here; `max_events` caps runs ten orders of magnitude earlier.
const PROV_BIT: u64 = 1 << 63;

/// splitmix64 finalizer over `(seed, node id)`: decorrelates per-node
/// streams even for adjacent seeds/ids.
fn node_stream_seed(seed: u64, id: usize) -> u64 {
    let mut z = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One dispatched callback in a shard's window log: its `(time, seq)`
/// sort key (seq may be provisional) plus cumulative end offsets into
/// the shard's trace/sample/push logs. A record's range starts where
/// the previous record's ended; no-op pops (cancelled timers, dead
/// receivers) produce no record and no log entries.
struct Rec {
    time: SimTime,
    seq: u64,
    trace_end: usize,
    sample_end: usize,
    push_end: usize,
}

/// A push a window callback deferred to replay (where it receives its
/// real sequence number and is routed to its owner queue).
enum PushOp {
    Timer {
        at: SimTime,
        node: NodeId,
        handle: u64,
        tag: u64,
        /// Already pushed into the shard's own queue under a
        /// provisional sequence (it fires inside this same window);
        /// replay only records the resolved sequence.
        provisional: bool,
    },
    Ev {
        at: SimTime,
        /// `Option` so replay can move the event out of the borrowed log.
        ev: Option<Event>,
    },
}

/// Per-shard window logs, taken out of the shard during replay so the
/// engine can route pushes into *other* shards' queues while reading
/// this one's log.
struct EpochLog {
    recs: Vec<Rec>,
    push_log: Vec<PushOp>,
    samples: Vec<(&'static str, f64)>,
    trace: Vec<TraceEvent>,
    prov_seq: Vec<u64>,
}

/// One shard: the event queue, timer table, and node slabs of the nodes
/// whose initial position falls in its field band, plus the window logs
/// and scratch buffers its worker thread uses.
struct Shard {
    queue: PendingQueue,
    timers: TimerTable,
    nodes: NodeSlab,
    /// Order-insensitive counters accumulated during windows, folded
    /// into the global metrics at each replay.
    metrics: Metrics,
    /// Trace lines recorded during windows, moved to the global tracer
    /// in merge order at replay.
    tracer: Tracer,
    sample_log: Vec<(&'static str, f64)>,
    push_log: Vec<PushOp>,
    recs: Vec<Rec>,
    /// Replay-resolved real sequences of this window's provisional
    /// pushes, indexed by provisional counter.
    prov_seq: Vec<u64>,
    prov_ctr: u64,
    /// Window pops not yet folded into `events_processed`.
    pops: u64,
    /// Events collected (and prefetch-scanned) by `collect_window`,
    /// awaiting dispatch by `run_window_buffered`. Empty outside the
    /// hooked three-phase epoch.
    win_buf: Vec<(SimTime, u64, Event)>,
    frame_pool: Vec<Vec<u8>>,
    bcast_scratch: Vec<NodeId>,
    send_scratch: Vec<(SimTime, Event)>,
    ctx_scratch: CtxOut,
}

impl Shard {
    fn new(queue: QueueImpl, trace: bool) -> Self {
        Shard {
            queue: PendingQueue::new(queue),
            timers: TimerTable::new(),
            nodes: NodeSlab::default(),
            metrics: Metrics::new(),
            tracer: Tracer::new(trace),
            sample_log: Vec::new(),
            push_log: Vec::new(),
            recs: Vec::new(),
            prov_seq: Vec::new(),
            prov_ctr: 0,
            pops: 0,
            win_buf: Vec::new(),
            frame_pool: Vec::new(),
            bcast_scratch: Vec::new(),
            send_scratch: Vec::new(),
            ctx_scratch: CtxOut::default(),
        }
    }

    /// Dispatch this shard's events in `[window start, w_last]`
    /// (concurrently with the other shards' windows). `hot`, `grid`,
    /// and `radio` are frozen until the next barrier; `local` maps
    /// global node ids to slab indices.
    #[allow(clippy::too_many_arguments)]
    fn run_window(
        &mut self,
        w_last: SimTime,
        w_end: SimTime,
        hot: &[HotNode],
        grid: Option<&SpatialGrid>,
        radio: &RadioConfig,
        local: &[u32],
    ) {
        while let Some((time, seq, ev)) = self.queue.pop_due_seq(w_last) {
            self.pops += 1;
            self.dispatch_window_event(time, seq, ev, w_end, hot, grid, radio, local);
        }
    }

    /// Pop this shard's events in `[window start, w_last]` into
    /// `win_buf` *without dispatching*, running the speculative
    /// [`Protocol::prefetch_frame`] pass over deliveries to live,
    /// started nodes. Phase A of the hooked three-phase epoch; the
    /// engine's tick hook runs between this and `run_window_buffered`.
    /// Liveness is rechecked at dispatch — prefetching a frame whose
    /// receiver dies mid-window only wastes a backend op (prefetch has
    /// no observable effects by contract).
    fn collect_window(&mut self, w_last: SimTime, hot: &[HotNode], local: &[u32]) {
        debug_assert!(self.win_buf.is_empty(), "window buffer not drained");
        while let Some((time, seq, ev)) = self.queue.pop_due_seq(w_last) {
            self.pops += 1;
            if let Event::Deliver { to, src, bytes } = &ev {
                let li = local[to.0] as usize;
                if hot[to.0].alive && self.nodes.started[li] {
                    if let Some(p) = self.nodes.protos[li].as_deref() {
                        p.prefetch_frame(*src, bytes);
                    }
                }
            }
            self.win_buf.push((time, seq, ev));
        }
    }

    /// Phase C of the hooked epoch: dispatch the events
    /// `collect_window` buffered, merged with anything the dispatches
    /// push back into this window (provisional-sequence timers) in raw
    /// `(time, seq)` order. At collection time the queue held only
    /// real sequences, and provisional sequences (bit 63 set) sort
    /// after every real sequence of the same tick — exactly where
    /// replay resolves them to — so this merge reproduces
    /// `run_window`'s dispatch order event for event.
    #[allow(clippy::too_many_arguments)]
    fn run_window_buffered(
        &mut self,
        w_last: SimTime,
        w_end: SimTime,
        hot: &[HotNode],
        grid: Option<&SpatialGrid>,
        radio: &RadioConfig,
        local: &[u32],
    ) {
        let mut buf = std::mem::take(&mut self.win_buf);
        {
            let mut it = buf.drain(..).peekable();
            loop {
                let take_queued = match (it.peek(), self.queue.peek_due(w_last)) {
                    (None, None) => break,
                    (Some(_), None) => false,
                    (None, Some(_)) => true,
                    (Some(&(bt, bs, _)), Some((qt, qs))) => (qt, qs) < (bt, bs),
                };
                let (time, seq, ev) = if take_queued {
                    self.pops += 1;
                    self.queue.pop_due_seq(w_last).expect("peeked")
                } else {
                    it.next().expect("peeked")
                };
                self.dispatch_window_event(time, seq, ev, w_end, hot, grid, radio, local);
            }
        }
        self.win_buf = buf;
    }

    /// Dispatch one already-popped window event. Shared by
    /// `run_window` and `run_window_buffered` so the pop-and-dispatch
    /// and collect-then-dispatch paths cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_window_event(
        &mut self,
        time: SimTime,
        seq: u64,
        ev: Event,
        w_end: SimTime,
        hot: &[HotNode],
        grid: Option<&SpatialGrid>,
        radio: &RadioConfig,
        local: &[u32],
    ) {
        match ev {
            Event::Start(id) => {
                let li = local[id.0] as usize;
                if !hot[id.0].alive || self.nodes.started[li] {
                    return;
                }
                self.nodes.started[li] = true;
                self.fire(time, seq, id, w_end, hot, grid, radio, local, |p, ctx| {
                    p.on_start(ctx)
                });
            }
            Event::Deliver { to, src, bytes } => {
                let li = local[to.0] as usize;
                if !hot[to.0].alive || !self.nodes.started[li] {
                    self.metrics.count("phy.rx_dropped_dead", 1);
                    self.recycle_frame(bytes);
                    return;
                }
                self.metrics.count("phy.rx_frames", 1);
                self.metrics.count("phy.rx_bytes", bytes.len() as u64);
                self.fire(time, seq, to, w_end, hot, grid, radio, local, |p, ctx| {
                    p.on_frame(ctx, src, &bytes)
                });
                self.recycle_frame(bytes);
            }
            Event::Timer { node, handle, tag } => {
                if !self.timers.should_fire(handle) {
                    return;
                }
                let li = local[node.0] as usize;
                if !hot[node.0].alive || !self.nodes.started[li] {
                    return;
                }
                self.fire(time, seq, node, w_end, hot, grid, radio, local, |p, ctx| {
                    p.on_timer(ctx, tag)
                });
            }
            Event::LinkFailure { node, to, bytes } => {
                let li = local[node.0] as usize;
                if hot[node.0].alive && self.nodes.started[li] {
                    self.metrics.count("phy.link_failures", 1);
                    self.fire(time, seq, node, w_end, hot, grid, radio, local, |p, ctx| {
                        p.on_link_failure(ctx, to, &bytes)
                    });
                }
                self.recycle_frame(bytes);
            }
            Event::MobilityTick | Event::Kill(_) => {
                unreachable!("barrier events never reach shard queues")
            }
        }
    }

    /// Run one protocol callback inside a window and log its outputs.
    #[allow(clippy::too_many_arguments)]
    fn fire(
        &mut self,
        time: SimTime,
        seq: u64,
        id: NodeId,
        w_end: SimTime,
        hot: &[HotNode],
        grid: Option<&SpatialGrid>,
        radio: &RadioConfig,
        local: &[u32],
        f: impl FnOnce(&mut dyn Protocol, &mut Ctx),
    ) {
        let li = local[id.0] as usize;
        let mut proto = self.nodes.protos[li]
            .take()
            .expect("re-entrant protocol call");
        let mut out = std::mem::take(&mut self.ctx_scratch);
        {
            let NodeSlab {
                rngs, next_handles, ..
            } = &mut self.nodes;
            let mut ctx = Ctx {
                node: id,
                now: time,
                out: &mut out,
                rng: &mut rngs[li],
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                next_handle: &mut next_handles[li],
                frame_pool: &mut self.frame_pool,
                sample_log: Some(&mut self.sample_log),
            };
            f(proto.as_mut(), &mut ctx);
        }
        self.nodes.protos[li] = Some(proto);
        self.apply_out_window(time, id, w_end, hot, grid, radio, local, &mut out);
        self.ctx_scratch = out;
        self.recs.push(Rec {
            time,
            seq,
            trace_end: self.tracer.events().len(),
            sample_end: self.sample_log.len(),
            push_end: self.push_log.len(),
        });
    }

    /// The window-mode counterpart of the serial `apply_out`: same
    /// command order (timers, cancels, sends), but pushes are logged
    /// for replay instead of receiving sequence numbers now. Timers
    /// firing inside this same window are additionally pushed under a
    /// provisional sequence so the window sees them.
    #[allow(clippy::too_many_arguments)]
    fn apply_out_window(
        &mut self,
        time: SimTime,
        id: NodeId,
        w_end: SimTime,
        hot: &[HotNode],
        grid: Option<&SpatialGrid>,
        radio: &RadioConfig,
        local: &[u32],
        out: &mut CtxOut,
    ) {
        for (delay, handle, tag) in out.timers.drain(..) {
            let at = time + delay;
            self.timers.arm(handle);
            let provisional = at < w_end;
            if provisional {
                let pseq = PROV_BIT | self.prov_ctr;
                self.prov_ctr += 1;
                self.queue.push_seq(
                    at,
                    pseq,
                    Event::Timer {
                        node: id,
                        handle,
                        tag,
                    },
                );
            }
            self.push_log.push(PushOp::Timer {
                at,
                node: id,
                handle,
                tag,
                provisional,
            });
        }
        for h in out.cancels.drain(..) {
            self.timers.cancel(h);
        }
        if out.sends.is_empty() {
            return;
        }
        let env = LinkEnv { radio, hot, grid };
        let mut cand = std::mem::take(&mut self.bcast_scratch);
        let mut sends = std::mem::take(&mut self.send_scratch);
        for (dst, bytes) in out.sends.drain(..) {
            let rng = &mut self.nodes.rngs[local[id.0] as usize];
            transmit_into(
                &env,
                time,
                id,
                dst,
                bytes,
                rng,
                &mut self.metrics,
                &mut cand,
                &mut sends,
            );
        }
        for (at, ev) in sends.drain(..) {
            debug_assert!(at >= w_end, "lookahead violation: send lands inside window");
            self.push_log.push(PushOp::Ev { at, ev: Some(ev) });
        }
        self.bcast_scratch = cand;
        self.send_scratch = sends;
    }

    fn recycle_frame(&mut self, bytes: std::sync::Arc<Vec<u8>>) {
        if let Some(mut buf) = std::sync::Arc::into_inner(bytes) {
            if self.frame_pool.len() < FRAME_POOL_CAP {
                buf.clear();
                self.frame_pool.push(buf);
            }
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub field: Field,
    pub radio: RadioConfig,
    /// Mobility integration step.
    pub mobility_tick: SimDuration,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Record a full event trace?
    pub trace: bool,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Receiver lookup strategy (see the module docs); `Grid` unless a
    /// differential test or baseline measurement asks for `Linear`.
    pub channel: ChannelMode,
    /// Pending-event store; `Wheel` unless a differential test or
    /// baseline measurement asks for the `Heap` oracle.
    pub queue: QueueImpl,
    /// Executor (see the module docs); `Single` unless set here, via
    /// [`crate::runner`]-level builders, or the `MANET_EXEC` env knob.
    pub exec: ExecMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            field: Field::new(1000.0, 1000.0),
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(200),
            seed: 1,
            trace: false,
            max_events: 50_000_000,
            channel: ChannelMode::Grid,
            queue: QueueImpl::Wheel,
            exec: ExecMode::default(),
        }
    }
}

/// The discrete-event simulator.
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    shards: Vec<Shard>,
    /// Kill / mobility-tick events (global effects) in sharded mode;
    /// unused under `Single`, where everything lives in shard 0's queue.
    barrier: PendingQueue,
    /// Global node id → owner shard.
    owner: Vec<u32>,
    /// Global node id → index into the owner shard's `nodes` slab.
    local: Vec<u32>,
    /// Hot slab, indexed by global node id (see [`HotNode`]).
    pub(crate) hot: Vec<HotNode>,
    now: SimTime,
    /// The global insertion-sequence stream; every queued event's
    /// tiebreak key, identical across executors.
    seq: u64,
    /// Harness stream (construction-time draws: keys, placements,
    /// churn). Run-time draws use the per-node streams.
    rng: ChaCha12Rng,
    metrics: Metrics,
    tracer: Tracer,
    /// `None` in [`ChannelMode::Linear`] — the index is then neither
    /// maintained nor queried.
    pub(crate) grid: Option<SpatialGrid>,
    /// Serial-path scratch buffers (windows use the per-shard ones).
    bcast_scratch: Vec<NodeId>,
    send_scratch: Vec<(SimTime, Event)>,
    ctx_scratch: CtxOut,
    frame_pool: Vec<Vec<u8>>,
    events_processed: u64,
    /// When set, each tick (Single) or parallel window (Sharded) runs
    /// as collect → prefetch → hook → dispatch instead of
    /// pop-and-dispatch: the events due now are buffered, every
    /// pending delivery gets a speculative [`Protocol::prefetch_frame`]
    /// pass, the hook runs once (the batch-verification drain), and
    /// only then does dispatch proceed in unchanged `(time, seq)`
    /// order. `None` (the default) keeps the classic loops
    /// byte-for-byte.
    tick_hook: Option<Box<dyn FnMut() + Send>>,
    /// Wall-clock time spent inside `run_until` — the denominator of
    /// the machine-dependent `events/sec (engine)` rate the scale
    /// exhibits and the CI perf gate report.
    busy: std::time::Duration,
    mobility_scheduled: bool,
    /// Any node with a non-static mobility model? (Cached: models are
    /// fixed at `add_node` time.)
    has_mobile: bool,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Self {
        let k = cfg.exec.shard_count();
        assert!(k >= 1, "ExecMode::Sharded requires at least one shard");
        if let ExecMode::Sharded(_) = cfg.exec {
            assert!(
                cfg.radio.base_delay > SimDuration::ZERO,
                "sharded execution requires a positive base_delay (the lookahead)"
            );
        }
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let tracer = Tracer::new(cfg.trace);
        let grid = match cfg.channel {
            ChannelMode::Grid => Some(SpatialGrid::new(&cfg.field, cfg.radio.max_range())),
            ChannelMode::Linear => None,
        };
        Engine {
            shards: (0..k).map(|_| Shard::new(cfg.queue, cfg.trace)).collect(),
            barrier: PendingQueue::new(cfg.queue),
            cfg,
            owner: Vec::new(),
            local: Vec::new(),
            hot: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            metrics: Metrics::new(),
            tracer,
            grid,
            bcast_scratch: Vec::new(),
            send_scratch: Vec::new(),
            ctx_scratch: CtxOut::default(),
            frame_pool: Vec::new(),
            events_processed: 0,
            tick_hook: None,
            busy: std::time::Duration::ZERO,
            mobility_scheduled: false,
            has_mobile: false,
        }
    }

    /// Owner shard for a position: its contiguous x-band of the field.
    fn shard_of_pos(&self, pos: &Pos) -> usize {
        let k = self.shards.len();
        if k == 1 {
            return 0;
        }
        let w = self.cfg.field.width;
        let x = pos.x.clamp(0.0, w);
        (((x / w) * k as f64) as usize).min(k - 1)
    }

    /// Assign `event` the next global sequence number and route it to
    /// the queue that owns it.
    fn push_event(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        let qi = self.queue_of(&event);
        match qi {
            Some(s) => self.shards[s].queue.push_seq(at, seq, event),
            None => self.barrier.push_seq(at, seq, event),
        }
    }

    /// `Some(shard)` for node-owned events, `None` for barrier events
    /// (which go to shard 0 anyway under `Single` — there is no
    /// parallel phase to protect).
    fn queue_of(&self, event: &Event) -> Option<usize> {
        let node = match event {
            Event::Start(n) => *n,
            Event::Deliver { to, .. } => *to,
            Event::Timer { node, .. } => *node,
            Event::LinkFailure { node, .. } => *node,
            Event::MobilityTick | Event::Kill(_) => {
                return match self.cfg.exec {
                    ExecMode::Single => Some(0),
                    ExecMode::Sharded(_) => None,
                };
            }
        };
        Some(self.owner[node.0] as usize)
    }

    /// Add a node joining at t=0.
    pub fn add_node(&mut self, proto: Box<dyn Protocol>, pos: Pos, mobility: Mobility) -> NodeId {
        self.add_node_at(proto, pos, mobility, SimTime::ZERO)
    }

    /// Add a node that joins (runs `on_start`) at `join_at`. Staggered
    /// joins drive the bootstrap experiments (E1, E5).
    pub fn add_node_at(
        &mut self,
        proto: Box<dyn Protocol>,
        pos: Pos,
        mobility: Mobility,
        join_at: SimTime,
    ) -> NodeId {
        let id = NodeId(self.hot.len());
        if !mobility.is_static() {
            self.has_mobile = true;
        }
        let sh = self.shard_of_pos(&pos);
        self.owner.push(sh as u32);
        self.local.push(self.shards[sh].nodes.len() as u32);
        self.shards[sh].nodes.push(
            proto,
            MobilityState::new(mobility),
            ChaCha12Rng::seed_from_u64(node_stream_seed(self.cfg.seed, id.0)),
        );
        self.hot.push(HotNode {
            pos,
            join_at,
            alive: true,
        });
        if let Some(grid) = &mut self.grid {
            grid.insert(id, &pos);
        }
        self.push_event(join_at, Event::Start(id));
        id
    }

    /// Schedule a node's death (failure injection).
    pub fn kill_at(&mut self, node: NodeId, at: SimTime) {
        self.push_event(at, Event::Kill(node));
    }

    /// Current position of a node.
    pub fn position(&self, node: NodeId) -> Pos {
        self.hot[node.0].pos
    }

    /// Teleport a node (scripted topology changes in tests). Shard
    /// ownership stays with the initial band — ownership is a work
    /// partition, not a correctness constraint.
    pub fn set_position(&mut self, node: NodeId, pos: Pos) {
        let pos = self.cfg.field.clamp(pos);
        self.hot[node.0].pos = pos;
        if let Some(grid) = &mut self.grid {
            grid.relocate(node, &pos);
        }
    }

    /// Is the node alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.hot[node.0].alive
    }

    /// Number of nodes (alive or not).
    pub fn node_count(&self) -> usize {
        self.hot.len()
    }

    /// Events dispatched so far — the wall-clock-independent measure of
    /// how much simulation work a run did (events/sec in the scale
    /// exhibits).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Wall-clock seconds spent inside [`Engine::run_until`] so far.
    /// `events_processed() / busy_secs()` is the engine-only throughput
    /// rate — free of scenario construction and key generation, which
    /// is what the perf-regression gate compares.
    pub fn busy_secs(&self) -> f64 {
        self.busy.as_secs_f64()
    }

    /// Which pending-event store this engine runs on.
    pub fn queue_impl(&self) -> QueueImpl {
        self.cfg.queue
    }

    /// Which executor this engine runs on.
    pub fn exec_mode(&self) -> ExecMode {
        self.cfg.exec
    }

    /// Has the node's `on_start` run? (Cold-slab lookup.)
    fn started(&self, node: NodeId) -> bool {
        self.shards[self.owner[node.0] as usize].nodes.started[self.local[node.0] as usize]
    }

    /// The read-only world transmissions and neighbor queries consult.
    pub(crate) fn link_env(&self) -> LinkEnv<'_> {
        LinkEnv {
            radio: &self.cfg.radio,
            hot: &self.hot,
            grid: self.grid.as_ref(),
        }
    }

    pub(crate) fn hot_slot(&self, node: NodeId) -> &HotNode {
        &self.hot[node.0]
    }

    /// Borrow a protocol for post-run inspection.
    ///
    /// # Panics
    /// Panics if called re-entrantly (from inside a protocol callback).
    pub fn protocol(&self, node: NodeId) -> &dyn Protocol {
        let (sh, li) = (self.owner[node.0] as usize, self.local[node.0] as usize);
        self.shards[sh].nodes.protos[li]
            .as_deref()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Mutably borrow a protocol (e.g. to inject an application request).
    pub fn protocol_mut(&mut self, node: NodeId) -> &mut dyn Protocol {
        let (sh, li) = (self.owner[node.0] as usize, self.local[node.0] as usize);
        self.shards[sh].nodes.protos[li]
            .as_deref_mut()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Typed view of a node's protocol.
    pub fn protocol_as<T: 'static>(&self, node: NodeId) -> &T {
        self.protocol(node)
            .as_any()
            .downcast_ref::<T>()
            .expect("protocol type mismatch")
    }

    /// Run a protocol callback "from outside" (applications injecting
    /// work between run() calls — e.g. "node 3: start a flow to D").
    pub fn with_protocol<T: 'static, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx) -> R,
    ) -> R {
        let (sh, li) = (self.owner[node.0] as usize, self.local[node.0] as usize);
        let mut proto = self.shards[sh].nodes.protos[li]
            .take()
            .expect("protocol checked out");
        let mut out = std::mem::take(&mut self.ctx_scratch);
        let r = {
            let NodeSlab {
                rngs, next_handles, ..
            } = &mut self.shards[sh].nodes;
            let mut ctx = Ctx {
                node,
                now: self.now,
                out: &mut out,
                rng: &mut rngs[li],
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                next_handle: &mut next_handles[li],
                frame_pool: &mut self.frame_pool,
                sample_log: None,
            };
            f(
                proto
                    .as_any_mut()
                    .downcast_mut::<T>()
                    .expect("protocol type mismatch"),
                &mut ctx,
            )
        };
        self.shards[sh].nodes.protos[li] = Some(proto);
        self.apply_out_serial(node, &mut out);
        self.ctx_scratch = out;
        r
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `cfg.trace`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic RNG (for harness-level draws that must stay inside
    /// the simulation's random universe).
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    /// Install the per-tick hook (see the `tick_hook` field docs). The
    /// scenario builder uses this to drain the batch verifier between
    /// collecting a tick's deliveries and dispatching them; any
    /// replacement must preserve the same contract: verdict-pure work
    /// only, no protocol side effects.
    pub fn set_tick_hook(&mut self, hook: impl FnMut() + Send + 'static) {
        self.tick_hook = Some(Box::new(hook));
    }

    /// Process events until `until` (inclusive) or the queue drains.
    pub fn run_until(&mut self, until: SimTime) {
        // lint: allow(wall-clock) — perf-gate instrumentation: busy_secs feeds the perf tables, never the event stream
        let t0 = std::time::Instant::now();
        self.ensure_mobility_tick(until);
        match self.cfg.exec {
            ExecMode::Single => self.run_single(until),
            ExecMode::Sharded(_) => self.run_sharded(until),
        }
        if self.now < until {
            self.now = until;
        }
        self.busy += t0.elapsed();
    }

    /// The oracle: one queue, strictly ascending `(time, seq)` pops.
    fn run_single(&mut self, until: SimTime) {
        if self.tick_hook.is_some() {
            return self.run_single_hooked(until);
        }
        while let Some((time, _seq, event)) = self.shards[0].queue.pop_due_seq(until) {
            self.count_event();
            debug_assert!(time >= self.now, "event from the past");
            self.now = time;
            self.dispatch_serial(event, until);
        }
    }

    /// The hooked single loop: buffer one tick's due events, prefetch
    /// its deliveries, run the tick hook, then dispatch the buffer in
    /// the order it was popped. Events a dispatch pushes back onto the
    /// same tick are *not* folded into the running buffer — they form
    /// the next iteration's batch, which `pop_due_seq`'s global
    /// `(time, seq)` minimum ordering makes identical to the unhooked
    /// loop's dispatch order.
    fn run_single_hooked(&mut self, until: SimTime) {
        let mut buf: Vec<(SimTime, Event)> = Vec::new();
        while let Some((time, _seq, event)) = self.shards[0].queue.pop_due_seq(until) {
            debug_assert!(time >= self.now, "event from the past");
            self.now = time;
            buf.push((time, event));
            while let Some((t, _s, ev)) = self.shards[0].queue.pop_due_seq(time) {
                debug_assert!(t == time);
                buf.push((t, ev));
            }
            for (_, ev) in &buf {
                if let Event::Deliver { to, src, bytes } = ev {
                    let (sh, li) = (self.owner[to.0] as usize, self.local[to.0] as usize);
                    if self.hot[to.0].alive && self.shards[sh].nodes.started[li] {
                        if let Some(p) = self.shards[sh].nodes.protos[li].as_deref() {
                            p.prefetch_frame(*src, bytes);
                        }
                    }
                }
            }
            if let Some(hook) = self.tick_hook.as_mut() {
                hook();
            }
            for (t, ev) in buf.drain(..) {
                self.count_event();
                debug_assert!(t == self.now);
                self.dispatch_serial(ev, until);
            }
        }
    }

    /// The sharded executor's epoch loop: alternate conservative
    /// parallel windows with serially dispatched barrier ticks.
    fn run_sharded(&mut self, until: SimTime) {
        let lookahead = self.cfg.radio.base_delay;
        loop {
            // Picking the next epoch must not commit any wheel cursor
            // past times other shards may still schedule into: a
            // `peek_due` cascades the wheel up to its answer, and once
            // the cursor has passed a tick, a cross-shard delivery
            // replayed at that tick would land "in the past" (the
            // release-mode clamp would then fire it late — silently
            // wrong). So the global minimum is found in two steps:
            // a cursor-free lower bound `h` over every queue, then real
            // peeks bounded by `h + lookahead` — every future push
            // lands at ≥ t_min + lookahead ≥ h + lookahead, so no
            // cursor this bound moves can ever overtake one.
            let mut hint = self.barrier.next_time_hint();
            for sh in &self.shards {
                if let Some(ht) = sh.queue.next_time_hint() {
                    hint = Some(hint.map_or(ht, |b| b.min(ht)));
                }
            }
            let Some(h) = hint else { break };
            if h > until {
                break;
            }
            let bound = SimTime(h.0.saturating_add(lookahead.0)).min(until);
            let barrier_next = self.barrier.peek_due(bound).map(|(t, _)| t);
            let mut t_next = barrier_next;
            for sh in &mut self.shards {
                if let Some((t, _)) = sh.queue.peek_due(bound) {
                    t_next = Some(t_next.map_or(t, |b| b.min(t)));
                }
            }
            let Some(t) = t_next else {
                // The hint was a coarse slot base with nothing actually
                // due by `bound`; the peeks cascaded the hinting wheel,
                // so the next round's hint is strictly tighter.
                continue;
            };
            debug_assert!(t >= self.now, "event from the past");
            self.now = t;
            if barrier_next == Some(t) {
                self.dispatch_barrier_tick(t, until);
                continue;
            }
            // Half-open window [t, w_end): long enough that no send
            // inside it can land inside it, clipped to the next global
            // event, the peek horizon (past `bound` nothing has been
            // seen — a barrier event could hide there), and the run
            // horizon.
            let mut w_end = (t + lookahead)
                .min(SimTime(bound.0.saturating_add(1)))
                .min(SimTime(until.0.saturating_add(1)));
            if let Some(bt) = barrier_next {
                w_end = w_end.min(bt);
            }
            let w_last = SimTime(w_end.0 - 1);
            {
                let hot = &self.hot;
                let grid = self.grid.as_ref();
                let radio = &self.cfg.radio;
                let local = &self.local;
                if let Some(hook) = self.tick_hook.as_mut() {
                    // Three-phase hooked epoch: collect + prefetch in
                    // parallel, drain the batch once serially, then
                    // dispatch in parallel. The buffered merge
                    // reproduces `run_window`'s order exactly (see
                    // `run_window_buffered`).
                    self.shards
                        .par_iter_mut()
                        .for_each(|sh| sh.collect_window(w_last, hot, local));
                    hook();
                    self.shards.par_iter_mut().for_each(|sh| {
                        sh.run_window_buffered(w_last, w_end, hot, grid, radio, local)
                    });
                } else {
                    self.shards
                        .par_iter_mut()
                        .for_each(|sh| sh.run_window(w_last, w_end, hot, grid, radio, local));
                }
            }
            self.replay_window();
        }
    }

    /// Serially dispatch every event at tick `t`, merging the barrier
    /// queue and all shard queues in `seq` order — including events the
    /// dispatches themselves push back onto tick `t`.
    fn dispatch_barrier_tick(&mut self, t: SimTime, until: SimTime) {
        loop {
            let mut best: Option<(u64, Option<usize>)> = None;
            if let Some((bt, bs)) = self.barrier.peek_due(t) {
                debug_assert!(bt == t, "pre-window event missed");
                best = Some((bs, None));
            }
            for (i, sh) in self.shards.iter_mut().enumerate() {
                if let Some((qt, qs)) = sh.queue.peek_due(t) {
                    debug_assert!(qt == t, "pre-window event missed");
                    if best.is_none_or(|(s, _)| qs < s) {
                        best = Some((qs, Some(i)));
                    }
                }
            }
            let Some((_, qi)) = best else { break };
            let (time, _seq, event) = match qi {
                None => self.barrier.pop_due_seq(t),
                Some(i) => self.shards[i].queue.pop_due_seq(t),
            }
            .expect("peeked");
            debug_assert!(time == t);
            self.count_event();
            self.dispatch_serial(event, until);
        }
    }

    fn count_event(&mut self) {
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.cfg.max_events,
            "event cap exceeded — runaway simulation"
        );
    }

    fn ensure_mobility_tick(&mut self, until: SimTime) {
        if self.has_mobile && !self.mobility_scheduled && self.now + self.cfg.mobility_tick <= until
        {
            let t = self.now + self.cfg.mobility_tick;
            self.push_event(t, Event::MobilityTick);
            self.mobility_scheduled = true;
        }
    }

    /// Dispatch one event at `self.now` with full serial access to the
    /// world. Used by the `Single` loop, barrier ticks, and (via
    /// `apply_out_serial`) `with_protocol` — one implementation, so the
    /// executors cannot drift.
    fn dispatch_serial(&mut self, event: Event, until: SimTime) {
        match event {
            Event::Start(id) => {
                if !self.hot[id.0].alive || self.started(id) {
                    return;
                }
                let (sh, li) = (self.owner[id.0] as usize, self.local[id.0] as usize);
                self.shards[sh].nodes.started[li] = true;
                self.call_protocol_serial(id, |p, ctx| p.on_start(ctx));
            }
            Event::Deliver { to, src, bytes } => {
                if !self.hot[to.0].alive || !self.started(to) {
                    self.metrics.count("phy.rx_dropped_dead", 1);
                    self.recycle_frame(bytes);
                    return;
                }
                self.metrics.count("phy.rx_frames", 1);
                self.metrics.count("phy.rx_bytes", bytes.len() as u64);
                self.call_protocol_serial(to, |p, ctx| p.on_frame(ctx, src, &bytes));
                self.recycle_frame(bytes);
            }
            Event::Timer { node, handle, tag } => {
                let sh = self.owner[node.0] as usize;
                if !self.shards[sh].timers.should_fire(handle) {
                    return;
                }
                if !self.hot[node.0].alive || !self.started(node) {
                    return;
                }
                self.call_protocol_serial(node, |p, ctx| p.on_timer(ctx, tag));
            }
            Event::LinkFailure { node, to, bytes } => {
                if self.hot[node.0].alive && self.started(node) {
                    self.metrics.count("phy.link_failures", 1);
                    self.call_protocol_serial(node, |p, ctx| p.on_link_failure(ctx, to, &bytes));
                }
                self.recycle_frame(bytes);
            }
            Event::MobilityTick => {
                let dt = self.cfg.mobility_tick.as_secs_f64();
                let field = self.cfg.field;
                for i in 0..self.hot.len() {
                    let (sh, li) = (self.owner[i] as usize, self.local[i] as usize);
                    let NodeSlab {
                        mobility,
                        rngs,
                        started,
                        ..
                    } = &mut self.shards[sh].nodes;
                    let hot = &mut self.hot[i];
                    if hot.alive && started[li] {
                        let before = hot.pos;
                        mobility[li].step(&mut hot.pos, &field, dt, &mut rngs[li]);
                        if hot.pos != before {
                            if let Some(grid) = &mut self.grid {
                                grid.relocate(NodeId(i), &hot.pos);
                            }
                        }
                    }
                }
                self.mobility_scheduled = false;
                self.ensure_mobility_tick(until);
            }
            Event::Kill(id) => {
                self.hot[id.0].alive = false;
                if let Some(grid) = &mut self.grid {
                    grid.remove(id);
                }
                self.metrics.count("sim.nodes_killed", 1);
            }
        }
    }

    /// Return a delivered frame's buffer to the pool once this was its
    /// last outstanding reference (i.e. the broadcast fan-out is fully
    /// dispatched). The next [`Ctx::frame_buf`] hands it back out.
    fn recycle_frame(&mut self, bytes: std::sync::Arc<Vec<u8>>) {
        if let Some(mut buf) = std::sync::Arc::into_inner(bytes) {
            if self.frame_pool.len() < FRAME_POOL_CAP {
                buf.clear();
                self.frame_pool.push(buf);
            }
        }
    }

    fn call_protocol_serial(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Protocol, &mut Ctx)) {
        let (sh, li) = (self.owner[id.0] as usize, self.local[id.0] as usize);
        let mut proto = self.shards[sh].nodes.protos[li]
            .take()
            .expect("re-entrant protocol call");
        let mut out = std::mem::take(&mut self.ctx_scratch);
        {
            let NodeSlab {
                rngs, next_handles, ..
            } = &mut self.shards[sh].nodes;
            let mut ctx = Ctx {
                node: id,
                now: self.now,
                out: &mut out,
                rng: &mut rngs[li],
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                next_handle: &mut next_handles[li],
                frame_pool: &mut self.frame_pool,
                sample_log: None,
            };
            f(proto.as_mut(), &mut ctx);
        }
        self.shards[sh].nodes.protos[li] = Some(proto);
        self.apply_out_serial(id, &mut out);
        self.ctx_scratch = out;
    }

    /// Drain a callback's buffered commands into the engine. The buffers
    /// are emptied but keep their capacity — the caller puts them back
    /// into `ctx_scratch` for the next callback.
    fn apply_out_serial(&mut self, id: NodeId, out: &mut CtxOut) {
        // Arm before cancelling: a callback may set a timer and cancel it
        // in the same batch, and the timer table drops cancels for
        // handles it has never seen armed.
        let sh = self.owner[id.0] as usize;
        for (delay, handle, tag) in out.timers.drain(..) {
            let t = self.now + delay;
            self.shards[sh].timers.arm(handle);
            self.push_event(
                t,
                Event::Timer {
                    node: id,
                    handle,
                    tag,
                },
            );
        }
        for h in out.cancels.drain(..) {
            self.shards[sh].timers.cancel(h);
        }
        if out.sends.is_empty() {
            return;
        }
        let mut cand = std::mem::take(&mut self.bcast_scratch);
        let mut sends = std::mem::take(&mut self.send_scratch);
        {
            let env = LinkEnv {
                radio: &self.cfg.radio,
                hot: &self.hot,
                grid: self.grid.as_ref(),
            };
            let li = self.local[id.0] as usize;
            let rng = &mut self.shards[sh].nodes.rngs[li];
            for (dst, bytes) in out.sends.drain(..) {
                transmit_into(
                    &env,
                    self.now,
                    id,
                    dst,
                    bytes,
                    rng,
                    &mut self.metrics,
                    &mut cand,
                    &mut sends,
                );
            }
        }
        for (t, ev) in sends.drain(..) {
            self.push_event(t, ev);
        }
        self.bcast_scratch = cand;
        self.send_scratch = sends;
    }

    /// Serial epilogue of a parallel window: merge the per-shard logs
    /// in `(time, resolved seq)` order, moving trace lines and samples
    /// to the global collectors and assigning real sequence numbers to
    /// the deferred pushes — exactly the order the single-threaded loop
    /// would have produced.
    fn replay_window(&mut self) {
        let k = self.shards.len();
        let mut logs: Vec<EpochLog> = self
            .shards
            .iter_mut()
            .map(|s| EpochLog {
                recs: std::mem::take(&mut s.recs),
                push_log: std::mem::take(&mut s.push_log),
                samples: std::mem::take(&mut s.sample_log),
                trace: std::mem::take(s.tracer.events_mut()),
                prov_seq: std::mem::take(&mut s.prov_seq),
            })
            .collect();
        let mut rec_cur = vec![0usize; k];
        let mut trace_cur = vec![0usize; k];
        let mut sample_cur = vec![0usize; k];
        let mut push_cur = vec![0usize; k];
        loop {
            // K-way merge head: the pending record with the smallest
            // (time, resolved seq). A provisional record's real seq is
            // already in prov_seq — its parent precedes it in the same
            // shard's stream, so it was replayed (and resolved) first.
            let mut best: Option<(SimTime, u64, usize)> = None;
            for s in 0..k {
                let Some(rec) = logs[s].recs.get(rec_cur[s]) else {
                    continue;
                };
                let rseq = if rec.seq & PROV_BIT != 0 {
                    logs[s].prov_seq[(rec.seq & !PROV_BIT) as usize]
                } else {
                    rec.seq
                };
                if best.is_none_or(|(bt, bs, _)| (rec.time, rseq) < (bt, bs)) {
                    best = Some((rec.time, rseq, s));
                }
            }
            let Some((_, _, s)) = best else { break };
            let ri = rec_cur[s];
            rec_cur[s] += 1;
            let (trace_end, sample_end, push_end) = {
                let rec = &logs[s].recs[ri];
                (rec.trace_end, rec.sample_end, rec.push_end)
            };
            for ev in &mut logs[s].trace[trace_cur[s]..trace_end] {
                self.tracer.record(TraceEvent {
                    time: ev.time,
                    node: ev.node,
                    dir: ev.dir,
                    kind: ev.kind,
                    detail: std::mem::take(&mut ev.detail),
                });
            }
            trace_cur[s] = trace_end;
            for i in sample_cur[s]..sample_end {
                let (name, v) = logs[s].samples[i];
                self.metrics.sample(name, v);
            }
            sample_cur[s] = sample_end;
            while push_cur[s] < push_end {
                let seq = self.seq;
                self.seq += 1;
                let op = &mut logs[s].push_log[push_cur[s]];
                push_cur[s] += 1;
                match op {
                    PushOp::Timer {
                        at,
                        node,
                        handle,
                        tag,
                        provisional,
                    } => {
                        if *provisional {
                            // Already in its queue (and possibly already
                            // fired); just resolve its real sequence.
                            logs[s].prov_seq.push(seq);
                        } else {
                            let (at, ev) = (
                                *at,
                                Event::Timer {
                                    node: *node,
                                    handle: *handle,
                                    tag: *tag,
                                },
                            );
                            let sh = self.owner[node.0] as usize;
                            self.shards[sh].queue.push_seq(at, seq, ev);
                        }
                    }
                    PushOp::Ev { at, ev } => {
                        let event = ev.take().expect("push op replayed once");
                        let at = *at;
                        let sh = match &event {
                            Event::Deliver { to, .. } => self.owner[to.0] as usize,
                            Event::LinkFailure { node, .. } => self.owner[node.0] as usize,
                            _ => unreachable!("transmit emits only delivers and link failures"),
                        };
                        self.shards[sh].queue.push_seq(at, seq, event);
                    }
                }
            }
        }
        // Put the (drained) logs back so their capacity is reused, and
        // fold the order-insensitive leftovers.
        let shards = &mut self.shards;
        let metrics = &mut self.metrics;
        for (s, mut log) in logs.into_iter().enumerate() {
            debug_assert!(rec_cur[s] == log.recs.len(), "unreplayed records");
            debug_assert!(push_cur[s] == log.push_log.len(), "unreplayed pushes");
            debug_assert!(trace_cur[s] == log.trace.len(), "orphaned trace lines");
            debug_assert!(sample_cur[s] == log.samples.len(), "orphaned samples");
            let shard = &mut shards[s];
            log.recs.clear();
            log.push_log.clear();
            log.samples.clear();
            log.trace.clear();
            log.prov_seq.clear();
            shard.recs = log.recs;
            shard.push_log = log.push_log;
            shard.sample_log = log.samples;
            *shard.tracer.events_mut() = log.trace;
            shard.prov_seq = log.prov_seq;
            shard.prov_ctr = 0;
            shard.metrics.drain_counts_into(metrics);
            self.events_processed += shard.pops;
            shard.pops = 0;
        }
        assert!(
            self.events_processed <= self.cfg.max_events,
            "event cap exceeded — runaway simulation"
        );
    }

    /// Armed-and-unfired timer entries across all shards
    /// (bounded-growth regression hook).
    #[cfg(test)]
    pub(crate) fn timers_pending_len(&self) -> usize {
        self.shards.iter().map(|s| s.timers.pending_len()).sum()
    }

    /// Live cancellation entries across all shards (bounded-growth
    /// regression hook).
    #[cfg(test)]
    pub(crate) fn timers_cancelled_len(&self) -> usize {
        self.shards.iter().map(|s| s.timers.cancelled_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Minimal protocol: counts frames, echoes once, tracks timers.
    struct Echo {
        frames: Vec<(NodeId, Vec<u8>)>,
        timers: Vec<u64>,
        link_failures: Vec<NodeId>,
        start_broadcast: Option<Vec<u8>>,
        unicast_on_start: Option<(NodeId, Vec<u8>)>,
        /// Frames seen by the speculative prefetch pass (`Cell`: the
        /// pass takes `&self` by contract).
        prefetched: std::cell::Cell<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                frames: Vec::new(),
                timers: Vec::new(),
                link_failures: Vec::new(),
                start_broadcast: None,
                unicast_on_start: None,
                prefetched: std::cell::Cell::new(0),
            }
        }
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if let Some(b) = self.start_broadcast.take() {
                ctx.broadcast(b);
            }
            if let Some((to, b)) = self.unicast_on_start.take() {
                ctx.unicast(to, b);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
            self.frames.push((src, bytes.to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx, tag: u64) {
            self.timers.push(tag);
        }
        fn on_link_failure(&mut self, _ctx: &mut Ctx, to: NodeId, _bytes: &[u8]) {
            self.link_failures.push(to);
        }
        fn prefetch_frame(&self, _src: NodeId, _bytes: &[u8]) {
            self.prefetched.set(self.prefetched.get() + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn engine() -> Engine {
        engine_with(ChannelMode::Grid)
    }

    fn engine_with(channel: ChannelMode) -> Engine {
        Engine::new(EngineConfig {
            radio: RadioConfig {
                range: 150.0,
                loss: 0.0,
                ..RadioConfig::default()
            },
            channel,
            exec: ExecMode::Single,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn broadcast_reaches_only_in_range_nodes() {
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = engine_with(channel);
            let mut sender = Echo::new();
            sender.start_broadcast = Some(vec![1, 2, 3]);
            let _a = e.add_node(Box::new(sender), Pos::new(0.0, 0.0), Mobility::Static);
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(100.0, 0.0),
                Mobility::Static,
            );
            let c = e.add_node(
                Box::new(Echo::new()),
                Pos::new(400.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1_000_000));
            assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1, "{channel:?}");
            assert_eq!(e.protocol_as::<Echo>(b).frames[0].1, vec![1, 2, 3]);
            assert!(e.protocol_as::<Echo>(c).frames.is_empty(), "{channel:?}");
        }
    }

    #[test]
    fn unicast_delivers_and_fails_over_range() {
        let mut e = engine();
        let mut s1 = Echo::new();
        s1.unicast_on_start = Some((NodeId(1), vec![9]));
        let a = e.add_node(Box::new(s1), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        // Far node: unicast must produce a link failure at the sender.
        let mut s2 = Echo::new();
        s2.unicast_on_start = Some((NodeId(3), vec![7]));
        let c = e.add_node(Box::new(s2), Pos::new(500.0, 0.0), Mobility::Static);
        let d = e.add_node(
            Box::new(Echo::new()),
            Pos::new(900.0, 0.0),
            Mobility::Static,
        );
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
        assert_eq!(e.protocol_as::<Echo>(a).link_failures.len(), 0);
        assert!(e.protocol_as::<Echo>(d).frames.is_empty());
        assert_eq!(e.protocol_as::<Echo>(c).link_failures, vec![d]);
        assert_eq!(e.metrics().counter("phy.tx_unicast_unreachable"), 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0)); // process Start
        let cancel_me = e.with_protocol::<Echo, _>(a, |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let h = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            h
        });
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(cancel_me));
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(a).timers, vec![1, 3]);
    }

    #[test]
    fn timer_set_and_cancelled_in_same_callback_never_fires() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0));
        e.with_protocol::<Echo, _>(a, |_p, ctx| {
            let h = ctx.set_timer(SimDuration::from_millis(5), 9);
            ctx.cancel_timer(h);
        });
        e.run_until(SimTime(1_000_000));
        assert!(e.protocol_as::<Echo>(a).timers.is_empty());
        assert_eq!(e.timers_cancelled_len(), 0);
        assert_eq!(e.timers_pending_len(), 0);
    }

    #[test]
    fn timer_bookkeeping_stays_bounded() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0));
        // Arm + cancel-before-fire, then cancel-after-fire, many times:
        // the regression this guards is `cancelled` growing without bound
        // when protocols cancel timers that already fired.
        for round in 0..100u64 {
            let h = e.with_protocol::<Echo, _>(a, |_p, ctx| {
                ctx.set_timer(SimDuration::from_millis(1), round)
            });
            if round % 2 == 0 {
                e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(h));
                e.run_until(e.now() + SimDuration::from_millis(2));
            } else {
                e.run_until(e.now() + SimDuration::from_millis(2)); // fires
                e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(h)); // late cancel
            }
        }
        assert_eq!(e.timers_cancelled_len(), 0, "cancel set leaked");
        assert_eq!(e.timers_pending_len(), 0, "pending set leaked");
        assert_eq!(e.protocol_as::<Echo>(a).timers.len(), 50);
    }

    #[test]
    fn timer_handles_are_namespaced_per_node() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0));
        let ha =
            e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.set_timer(SimDuration::from_millis(5), 1));
        let hb =
            e.with_protocol::<Echo, _>(b, |_p, ctx| ctx.set_timer(SimDuration::from_millis(5), 2));
        assert_ne!(ha, hb, "two nodes' first handles must differ");
        // Cancelling b's timer must not touch a's.
        e.with_protocol::<Echo, _>(b, |_p, ctx| ctx.cancel_timer(hb));
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(a).timers, vec![1]);
        assert!(e.protocol_as::<Echo>(b).timers.is_empty());
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![1]);
        let _a = e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        e.kill_at(b, SimTime(0));
        // Kill is scheduled with seq after Start events but before the
        // broadcast delivery arrives (delivery has ≥1ms latency).
        e.run_until(SimTime(1_000_000));
        assert!(e.protocol_as::<Echo>(b).frames.is_empty());
        assert!(!e.is_alive(b));
    }

    #[test]
    fn staggered_join_delays_start() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![5]);
        // b joins at t=2s; a broadcasts at t=1s; b must not hear it.
        let a = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(0.0, 0.0),
            Mobility::Static,
            SimTime(1_000_000),
        );
        let b = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(50.0, 0.0),
            Mobility::Static,
            SimTime(2_000_000),
        );
        e.run_until(SimTime(500_000));
        assert!(e.neighbors(a).is_empty(), "nobody started yet");
        e.run_until(SimTime(1_500_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![5]));
        e.run_until(SimTime(1_600_000));
        assert!(
            e.protocol_as::<Echo>(b).frames.is_empty(),
            "not yet started"
        );
        e.run_until(SimTime(3_000_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![6]));
        e.run_until(SimTime(4_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
    }

    fn lossy_mobile_run(seed: u64, channel: ChannelMode, exec: ExecMode) -> (u64, u64, Vec<u64>) {
        lossy_mobile_run_hooked(seed, channel, exec, false).0
    }

    fn lossy_mobile_run_hooked(
        seed: u64,
        channel: ChannelMode,
        exec: ExecMode,
        hook: bool,
    ) -> ((u64, u64, Vec<u64>), u64, u64) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let mut e = Engine::new(EngineConfig {
            seed,
            radio: RadioConfig {
                loss: 0.3,
                ..RadioConfig::default()
            },
            channel,
            exec,
            ..EngineConfig::default()
        });
        let hook_calls = Arc::new(AtomicU64::new(0));
        if hook {
            let calls = Arc::clone(&hook_calls);
            e.set_tick_hook(move || {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        }
        for i in 0..10 {
            let mut s = Echo::new();
            s.start_broadcast = Some(vec![i as u8; 100]);
            e.add_node(
                Box::new(s),
                Pos::new(i as f64 * 40.0, 0.0),
                Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 5.0,
                    pause_s: 1.0,
                },
            );
        }
        e.run_until(SimTime(10_000_000));
        let prefetches = (0..10)
            .map(|i| e.protocol_as::<Echo>(NodeId(i)).prefetched.get())
            .sum();
        (
            (
                e.metrics().counter("phy.rx_frames"),
                e.metrics().counter("phy.rx_dropped_loss"),
                (0..10)
                    .map(|i| e.position(NodeId(i)).x.to_bits())
                    .collect::<Vec<_>>(),
            ),
            hook_calls.load(Ordering::Relaxed),
            prefetches,
        )
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed| lossy_mobile_run(seed, ChannelMode::Grid, ExecMode::Single);
        assert_eq!(run(7), run(7), "same seed must reproduce exactly");
        assert_ne!(run(7).1, run(8).1, "different seeds should diverge");
    }

    #[test]
    fn grid_and_linear_channels_are_bit_identical() {
        // Same seed, mobile and lossy: every RNG draw (loss, delay,
        // waypoints) must land identically whichever channel indexes the
        // receivers. This is the engine-level differential gate; the
        // scenario-level one lives in tests/determinism.rs.
        for seed in [7, 8, 9] {
            assert_eq!(
                lossy_mobile_run(seed, ChannelMode::Grid, ExecMode::Single),
                lossy_mobile_run(seed, ChannelMode::Linear, ExecMode::Single),
                "channel modes diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn sharded_and_single_executors_are_bit_identical() {
        // The engine-level differential gate for the sharded executor:
        // metrics and final positions (every mobility RNG draw) must
        // match the single-threaded oracle for any shard count,
        // including shards that own no nodes. The byte-exact *trace*
        // gate lives in tests/determinism.rs.
        let oracle = lossy_mobile_run(11, ChannelMode::Grid, ExecMode::Single);
        for k in [1, 2, 3, 8, 16] {
            assert_eq!(
                lossy_mobile_run(11, ChannelMode::Grid, ExecMode::Sharded(k)),
                oracle,
                "sharded({k}) diverged from single"
            );
        }
    }

    #[test]
    fn tick_hook_paths_match_classic_loops_bit_for_bit() {
        // The hooked (collect → prefetch → hook → dispatch) loops must
        // reproduce the classic pop-and-dispatch universes exactly, on
        // both executors — and actually run the hook and the prefetch
        // pass (every delivered frame to a live started node is seen).
        let oracle = lossy_mobile_run(11, ChannelMode::Grid, ExecMode::Single);
        for exec in [ExecMode::Single, ExecMode::Sharded(1), ExecMode::Sharded(4)] {
            let (result, hook_calls, prefetches) =
                lossy_mobile_run_hooked(11, ChannelMode::Grid, exec, true);
            assert_eq!(result, oracle, "hooked {exec:?} diverged from oracle");
            assert!(hook_calls > 0, "tick hook never ran under {exec:?}");
            assert!(
                prefetches >= result.0,
                "prefetch pass missed delivered frames under {exec:?}"
            );
        }
        // Without a hook the prefetch pass must not run at all.
        let (_, hook_calls, prefetches) =
            lossy_mobile_run_hooked(11, ChannelMode::Grid, ExecMode::Sharded(4), false);
        assert_eq!((hook_calls, prefetches), (0, 0));
    }

    #[test]
    fn sharded_executor_counts_every_event() {
        let count = |exec| {
            let mut e = Engine::new(EngineConfig {
                radio: RadioConfig {
                    loss: 0.0,
                    ..RadioConfig::default()
                },
                exec,
                ..EngineConfig::default()
            });
            for i in 0..6 {
                let mut s = Echo::new();
                s.start_broadcast = Some(vec![i as u8; 20]);
                e.add_node(
                    Box::new(s),
                    Pos::new(i as f64 * 120.0, 0.0),
                    Mobility::Static,
                );
            }
            e.run_until(SimTime(5_000_000));
            e.events_processed()
        };
        assert_eq!(count(ExecMode::Single), count(ExecMode::Sharded(4)));
    }

    #[test]
    fn metrics_track_tx_rx() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![0; 50]);
        e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(10.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(20.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.metrics().counter("phy.tx_frames"), 1);
        assert_eq!(e.metrics().counter("phy.tx_bytes"), 50);
        assert_eq!(e.metrics().counter("phy.rx_frames"), 2);
        assert_eq!(e.metrics().counter("phy.rx_bytes"), 100);
    }

    #[test]
    fn neighbors_reflect_positions() {
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = engine_with(channel);
            let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(100.0, 0.0),
                Mobility::Static,
            );
            let c = e.add_node(
                Box::new(Echo::new()),
                Pos::new(1000.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1));
            assert_eq!(e.neighbors(a), vec![b], "{channel:?}");
            e.set_position(c, Pos::new(50.0, 0.0));
            // Ascending-NodeId order is part of the API contract now.
            assert_eq!(e.neighbors(a), vec![b, c], "{channel:?}");
        }
    }

    #[test]
    fn neighbors_into_reuses_buffer() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(60.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        let mut buf = vec![NodeId(99); 8]; // stale content must be cleared
        e.neighbors_into(a, &mut buf);
        assert_eq!(buf, vec![b]);
        e.neighbors_into(b, &mut buf);
        assert_eq!(buf, vec![a]);
    }

    #[test]
    fn connectivity_analysis() {
        let mut e = engine(); // range 150
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(
            Box::new(Echo::new()),
            Pos::new(100.0, 0.0),
            Mobility::Static,
        );
        let c = e.add_node(
            Box::new(Echo::new()),
            Pos::new(200.0, 0.0),
            Mobility::Static,
        );
        let d = e.add_node(
            Box::new(Echo::new()),
            Pos::new(900.0, 0.0),
            Mobility::Static,
        );
        e.run_until(SimTime(1));
        // a-b-c form a chain; d is isolated.
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, b, c]);
        assert!(!e.is_connected());
        assert_eq!(e.connected_component(d), vec![d]);
        // Killing the bridge splits a from c.
        e.kill_at(b, SimTime(2));
        e.run_until(SimTime(3));
        assert_eq!(e.connected_component(a), vec![a]);
        // Moving d next to a reconnects that pair (still 160 m from c,
        // out of the 150 m range).
        e.set_position(d, Pos::new(40.0, 0.0));
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, d]);
    }

    #[test]
    fn empty_and_single_node_graphs_are_connected() {
        let mut e = engine();
        assert!(e.is_connected(), "vacuously connected");
        e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        assert!(e.is_connected());
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut e = engine();
        e.run_until(SimTime(5_000_000));
        assert_eq!(e.now(), SimTime(5_000_000));
    }

    #[test]
    fn gray_zone_sizes_grid_cells_to_max_range() {
        // With a gray zone the farthest receiver sits beyond `range`;
        // the grid must still find it (cell size = max_range, not range).
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = Engine::new(EngineConfig {
                radio: RadioConfig {
                    range: 100.0,
                    loss: 0.0,
                    gray_zone: Some(220.0),
                    jitter: SimDuration::ZERO,
                    ..RadioConfig::default()
                },
                channel,
                exec: ExecMode::Single,
                ..EngineConfig::default()
            });
            let mut s = Echo::new();
            s.start_broadcast = Some(vec![1]);
            let _a = e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
            // 150 m: inside the gray band, outside crisp range. Reception
            // probability ~0.58; with the same seed both channels make
            // the same draw — and it must at least be *attempted*.
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(150.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1_000_000));
            let heard = e.protocol_as::<Echo>(b).frames.len()
                + e.metrics().counter("phy.rx_dropped_loss") as usize;
            assert_eq!(heard, 1, "{channel:?}: gray-zone receiver never considered");
            // But b is NOT a crisp-range neighbor.
            assert!(e.neighbors(b).is_empty(), "{channel:?}");
        }
    }

    #[test]
    fn exec_mode_parse_accepts_valid_and_rejects_garbage() {
        assert_eq!(parse_exec("single"), Some(ExecMode::Single));
        assert_eq!(parse_exec("sharded:4"), Some(ExecMode::Sharded(4)));
        assert_eq!(parse_exec("sharded:0"), None);
        assert_eq!(parse_exec("sharded:"), None);
        assert_eq!(parse_exec("parallel"), None);
        assert_eq!(parse_exec(""), None);
    }
}
