//! The discrete-event engine.
//!
//! Single-threaded and fully deterministic: one seeded RNG, a binary-heap
//! event queue ordered by `(time, insertion sequence)`, and node protocols
//! that interact with the world only through [`Ctx`]. Parallelism happens
//! one level up — the experiment runner executes independent simulation
//! cells on a rayon pool (see [`crate::runner`]).
//!
//! ## Link-layer semantics
//!
//! * **Broadcast** frames reach every alive node within radio range, each
//!   reception independently subject to the configured loss probability.
//! * **Unicast** frames model a MAC with ARQ (802.11-style): delivery is
//!   reliable while the peer is alive and in range; if it is not, the
//!   sender gets an [`Protocol::on_link_failure`] callback — this is the
//!   trigger for the protocol's RERR path.

use crate::geom::{Field, Pos};
use crate::metrics::Metrics;
use crate::mobility::{Mobility, MobilityState};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Dir, TraceEvent, Tracer};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// Identifies a node (index into the engine's node table). This is the
/// *link-layer* identity; IP addresses live entirely in the protocol layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

/// Where a frame is headed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDst {
    Broadcast,
    Unicast(NodeId),
}

/// Handle for cancelling a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(u64);

/// A node's behaviour. Implementations hold all protocol state; the
/// engine only knows about frames and timers.
pub trait Protocol {
    /// Called once when the node joins the network.
    fn on_start(&mut self, ctx: &mut Ctx);

    /// A frame arrived from link-layer neighbor `src`.
    fn on_frame(&mut self, ctx: &mut Ctx, src: NodeId, bytes: &[u8]);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, tag: u64);

    /// A unicast frame could not be delivered (peer dead or out of range).
    /// Models the MAC-layer ACK timeout that DSR uses to detect broken
    /// links. Default: ignore.
    fn on_link_failure(&mut self, _ctx: &mut Ctx, _to: NodeId, _bytes: &[u8]) {}

    /// Downcasting support so harnesses can inspect protocol state after
    /// a run.
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Commands a protocol issues during a callback; applied by the engine
/// when the callback returns.
#[derive(Default)]
struct CtxOut {
    sends: Vec<(LinkDst, Vec<u8>)>,
    timers: Vec<(SimDuration, u64, u64)>, // (delay, handle, tag)
    cancels: Vec<u64>,
}

/// The protocol's window onto the world during a callback.
pub struct Ctx<'a> {
    /// The node being called.
    pub node: NodeId,
    now: SimTime,
    out: &'a mut CtxOut,
    rng: &'a mut ChaCha12Rng,
    metrics: &'a mut Metrics,
    tracer: &'a mut Tracer,
    next_handle: &'a mut u64,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queue a broadcast frame.
    pub fn broadcast(&mut self, bytes: Vec<u8>) {
        self.out.sends.push((LinkDst::Broadcast, bytes));
    }

    /// Queue a unicast frame to link-layer neighbor `to`.
    pub fn unicast(&mut self, to: NodeId, bytes: Vec<u8>) {
        self.out.sends.push((LinkDst::Unicast(to), bytes));
    }

    /// Arm a timer that fires after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        let handle = *self.next_handle;
        *self.next_handle += 1;
        self.out.timers.push((delay, handle, tag));
        TimerHandle(handle)
    }

    /// Cancel a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.out.cancels.push(h.0);
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }

    /// Bump a counter.
    pub fn count(&mut self, name: &'static str, by: u64) {
        self.metrics.count(name, by);
    }

    /// Record a sample.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.metrics.sample(name, v);
    }

    /// Record a trace event (no-op unless tracing is enabled).
    pub fn trace(&mut self, dir: Dir, kind: &'static str, detail: impl Into<String>) {
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent {
                time: self.now,
                node: self.node,
                dir,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// Is tracing on? Lets protocols skip building expensive detail strings.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }
}

enum Event {
    Start(NodeId),
    Deliver {
        to: NodeId,
        src: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    Timer {
        node: NodeId,
        handle: u64,
        tag: u64,
    },
    LinkFailure {
        node: NodeId,
        to: NodeId,
        bytes: Arc<Vec<u8>>,
    },
    MobilityTick,
    Kill(NodeId),
}

struct QueueItem {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    proto: Option<Box<dyn Protocol>>,
    pos: Pos,
    mobility: MobilityState,
    alive: bool,
    started: bool,
    join_at: SimTime,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub field: Field,
    pub radio: RadioConfig,
    /// Mobility integration step.
    pub mobility_tick: SimDuration,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Record a full event trace?
    pub trace: bool,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            field: Field::new(1000.0, 1000.0),
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(200),
            seed: 1,
            trace: false,
            max_events: 50_000_000,
        }
    }
}

/// The discrete-event simulator.
pub struct Engine {
    cfg: EngineConfig,
    queue: BinaryHeap<Reverse<QueueItem>>,
    nodes: Vec<NodeSlot>,
    now: SimTime,
    seq: u64,
    rng: ChaCha12Rng,
    metrics: Metrics,
    tracer: Tracer,
    cancelled: HashSet<u64>,
    next_handle: u64,
    events_processed: u64,
    mobility_scheduled: bool,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Self {
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let tracer = Tracer::new(cfg.trace);
        Engine {
            cfg,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            metrics: Metrics::new(),
            tracer,
            cancelled: HashSet::new(),
            next_handle: 0,
            events_processed: 0,
            mobility_scheduled: false,
        }
    }

    /// Add a node joining at t=0.
    pub fn add_node(
        &mut self,
        proto: Box<dyn Protocol>,
        pos: Pos,
        mobility: Mobility,
    ) -> NodeId {
        self.add_node_at(proto, pos, mobility, SimTime::ZERO)
    }

    /// Add a node that joins (runs `on_start`) at `join_at`. Staggered
    /// joins drive the bootstrap experiments (E1, E5).
    pub fn add_node_at(
        &mut self,
        proto: Box<dyn Protocol>,
        pos: Pos,
        mobility: Mobility,
        join_at: SimTime,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            proto: Some(proto),
            pos,
            mobility: MobilityState::new(mobility),
            alive: true,
            started: false,
            join_at,
        });
        self.push(join_at, Event::Start(id));
        id
    }

    /// Schedule a node's death (failure injection).
    pub fn kill_at(&mut self, node: NodeId, at: SimTime) {
        self.push(at, Event::Kill(node));
    }

    /// Current position of a node.
    pub fn position(&self, node: NodeId) -> Pos {
        self.nodes[node.0].pos
    }

    /// Teleport a node (scripted topology changes in tests).
    pub fn set_position(&mut self, node: NodeId, pos: Pos) {
        self.nodes[node.0].pos = self.cfg.field.clamp(pos);
    }

    /// Is the node alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.0].alive
    }

    /// Link-layer neighbors of `node` right now (alive and in range).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let me = &self.nodes[node.0];
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                *i != node.0
                    && n.alive
                    && n.join_at <= self.now
                    && self.cfg.radio.in_range(me.pos.dist(&n.pos))
            })
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Number of nodes (alive or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes reachable from `from` over current radio links (BFS on
    /// the unit-disk graph of alive, joined nodes), including `from`.
    pub fn connected_component(&self, from: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        if self.nodes[from.0].alive {
            seen[from.0] = true;
            queue.push_back(from);
        }
        let mut out = Vec::new();
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for next in self.neighbors(n) {
                if !seen[next.0] {
                    seen[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Is the set of alive, joined nodes one connected radio graph?
    /// Useful as a scenario sanity check — a partitioned topology makes
    /// most delivery assertions meaningless.
    pub fn is_connected(&self) -> bool {
        let alive: Vec<NodeId> = (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| {
                let s = &self.nodes[n.0];
                s.alive && s.join_at <= self.now
            })
            .collect();
        match alive.first() {
            None => true,
            Some(&first) => self.connected_component(first).len() == alive.len(),
        }
    }

    /// Borrow a protocol for post-run inspection.
    ///
    /// # Panics
    /// Panics if called re-entrantly (from inside a protocol callback).
    pub fn protocol(&self, node: NodeId) -> &dyn Protocol {
        self.nodes[node.0]
            .proto
            .as_deref()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Mutably borrow a protocol (e.g. to inject an application request).
    pub fn protocol_mut(&mut self, node: NodeId) -> &mut dyn Protocol {
        self.nodes[node.0]
            .proto
            .as_deref_mut()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Typed view of a node's protocol.
    pub fn protocol_as<T: 'static>(&self, node: NodeId) -> &T {
        self.protocol(node)
            .as_any()
            .downcast_ref::<T>()
            .expect("protocol type mismatch")
    }

    /// Run a protocol callback "from outside" (applications injecting
    /// work between run() calls — e.g. "node 3: start a flow to D").
    pub fn with_protocol<T: 'static, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx) -> R,
    ) -> R {
        let mut proto = self.nodes[node.0]
            .proto
            .take()
            .expect("protocol checked out");
        let mut out = CtxOut::default();
        let mut ctx = Ctx {
            node,
            now: self.now,
            out: &mut out,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            tracer: &mut self.tracer,
            next_handle: &mut self.next_handle,
        };
        let r = f(
            proto
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("protocol type mismatch"),
            &mut ctx,
        );
        self.nodes[node.0].proto = Some(proto);
        self.apply_out(node, out);
        r
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `cfg.trace`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic RNG (for harness-level draws that must stay inside
    /// the simulation's random universe).
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueueItem { time, seq, event }));
    }

    /// Process events until `until` (inclusive) or the queue drains.
    pub fn run_until(&mut self, until: SimTime) {
        self.ensure_mobility_tick(until);
        loop {
            match self.queue.peek() {
                Some(Reverse(head)) if head.time <= until => {}
                _ => break,
            }
            let Reverse(item) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.cfg.max_events,
                "event cap exceeded — runaway simulation"
            );
            debug_assert!(item.time >= self.now, "event from the past");
            self.now = item.time;
            self.dispatch(item.event, until);
        }
        if self.now < until {
            self.now = until;
        }
    }

    fn ensure_mobility_tick(&mut self, until: SimTime) {
        let any_mobile = self
            .nodes
            .iter()
            .any(|n| !matches!(n.mobility.model, Mobility::Static));
        if any_mobile && !self.mobility_scheduled && self.now + self.cfg.mobility_tick <= until {
            let t = self.now + self.cfg.mobility_tick;
            self.push(t, Event::MobilityTick);
            self.mobility_scheduled = true;
        }
    }

    fn dispatch(&mut self, event: Event, until: SimTime) {
        match event {
            Event::Start(id) => {
                if !self.nodes[id.0].alive || self.nodes[id.0].started {
                    return;
                }
                self.nodes[id.0].started = true;
                self.call_protocol(id, |p, ctx| p.on_start(ctx));
            }
            Event::Deliver { to, src, bytes } => {
                let slot = &self.nodes[to.0];
                if !slot.alive || !slot.started {
                    self.metrics.count("phy.rx_dropped_dead", 1);
                    return;
                }
                self.metrics.count("phy.rx_frames", 1);
                self.metrics.count("phy.rx_bytes", bytes.len() as u64);
                self.call_protocol(to, |p, ctx| p.on_frame(ctx, src, &bytes));
            }
            Event::Timer { node, handle, tag } => {
                if self.cancelled.remove(&handle) {
                    return;
                }
                let slot = &self.nodes[node.0];
                if !slot.alive || !slot.started {
                    return;
                }
                self.call_protocol(node, |p, ctx| p.on_timer(ctx, tag));
            }
            Event::LinkFailure { node, to, bytes } => {
                let slot = &self.nodes[node.0];
                if !slot.alive || !slot.started {
                    return;
                }
                self.metrics.count("phy.link_failures", 1);
                self.call_protocol(node, |p, ctx| p.on_link_failure(ctx, to, &bytes));
            }
            Event::MobilityTick => {
                let dt = self.cfg.mobility_tick.as_secs_f64();
                let field = self.cfg.field;
                for slot in &mut self.nodes {
                    if slot.alive && slot.started {
                        slot.mobility.step(&mut slot.pos, &field, dt, &mut self.rng);
                    }
                }
                self.mobility_scheduled = false;
                self.ensure_mobility_tick(until);
            }
            Event::Kill(id) => {
                self.nodes[id.0].alive = false;
                self.metrics.count("sim.nodes_killed", 1);
            }
        }
    }

    fn call_protocol(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Protocol, &mut Ctx)) {
        let mut proto = self.nodes[id.0]
            .proto
            .take()
            .expect("re-entrant protocol call");
        let mut out = CtxOut::default();
        {
            let mut ctx = Ctx {
                node: id,
                now: self.now,
                out: &mut out,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                next_handle: &mut self.next_handle,
            };
            f(proto.as_mut(), &mut ctx);
        }
        self.nodes[id.0].proto = Some(proto);
        self.apply_out(id, out);
    }

    fn apply_out(&mut self, id: NodeId, out: CtxOut) {
        for h in out.cancels {
            self.cancelled.insert(h);
        }
        for (delay, handle, tag) in out.timers {
            let t = self.now + delay;
            self.push(
                t,
                Event::Timer {
                    node: id,
                    handle,
                    tag,
                },
            );
        }
        for (dst, bytes) in out.sends {
            self.transmit(id, dst, bytes);
        }
    }

    fn transmit(&mut self, src: NodeId, dst: LinkDst, bytes: Vec<u8>) {
        if !self.nodes[src.0].alive {
            return;
        }
        self.metrics.count("phy.tx_frames", 1);
        self.metrics.count("phy.tx_bytes", bytes.len() as u64);
        let bytes = Arc::new(bytes);
        let src_pos = self.nodes[src.0].pos;
        match dst {
            LinkDst::Broadcast => {
                self.metrics.count("phy.tx_broadcasts", 1);
                for i in 0..self.nodes.len() {
                    if i == src.0 {
                        continue;
                    }
                    let n = &self.nodes[i];
                    // `join_at <= now` rather than `started`: peers whose
                    // Start event is queued for this same instant are
                    // physically present; they will have started by the
                    // time the delivery (≥ base_delay later) arrives.
                    if !n.alive || n.join_at > self.now {
                        continue;
                    }
                    let d = src_pos.dist(&n.pos);
                    if d > self.cfg.radio.max_range() {
                        continue;
                    }
                    if !self.cfg.radio.sample_broadcast_reception(d, &mut self.rng) {
                        self.metrics.count("phy.rx_dropped_loss", 1);
                        continue;
                    }
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t = self.now + delay;
                    self.push(
                        t,
                        Event::Deliver {
                            to: NodeId(i),
                            src,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                }
            }
            LinkDst::Unicast(to) => {
                self.metrics.count("phy.tx_unicasts", 1);
                let reachable = {
                    let n = &self.nodes[to.0];
                    n.alive
                        && n.join_at <= self.now
                        && self.cfg.radio.in_range(src_pos.dist(&n.pos))
                };
                if reachable {
                    // MAC ARQ abstraction: no random loss on unicast.
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t = self.now + delay;
                    self.push(
                        t,
                        Event::Deliver {
                            to,
                            src,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                } else {
                    self.metrics.count("phy.tx_unicast_unreachable", 1);
                    // ACK-timeout feedback after ~MAC retry budget.
                    let delay = self.cfg.radio.sample_delay(bytes.len(), &mut self.rng);
                    let t = self.now + delay + self.cfg.radio.base_delay + self.cfg.radio.base_delay;
                    self.push(
                        t,
                        Event::LinkFailure {
                            node: src,
                            to,
                            bytes: Arc::clone(&bytes),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal protocol: counts frames, echoes once, tracks timers.
    struct Echo {
        frames: Vec<(NodeId, Vec<u8>)>,
        timers: Vec<u64>,
        link_failures: Vec<NodeId>,
        start_broadcast: Option<Vec<u8>>,
        unicast_on_start: Option<(NodeId, Vec<u8>)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                frames: Vec::new(),
                timers: Vec::new(),
                link_failures: Vec::new(),
                start_broadcast: None,
                unicast_on_start: None,
            }
        }
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if let Some(b) = self.start_broadcast.take() {
                ctx.broadcast(b);
            }
            if let Some((to, b)) = self.unicast_on_start.take() {
                ctx.unicast(to, b);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
            self.frames.push((src, bytes.to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx, tag: u64) {
            self.timers.push(tag);
        }
        fn on_link_failure(&mut self, _ctx: &mut Ctx, to: NodeId, _bytes: &[u8]) {
            self.link_failures.push(to);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            radio: RadioConfig {
                range: 150.0,
                loss: 0.0,
                ..RadioConfig::default()
            },
            ..EngineConfig::default()
        })
    }

    #[test]
    fn broadcast_reaches_only_in_range_nodes() {
        let mut e = engine();
        let mut sender = Echo::new();
        sender.start_broadcast = Some(vec![1, 2, 3]);
        let _a = e.add_node(Box::new(sender), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(100.0, 0.0), Mobility::Static);
        let c = e.add_node(Box::new(Echo::new()), Pos::new(400.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
        assert_eq!(e.protocol_as::<Echo>(b).frames[0].1, vec![1, 2, 3]);
        assert!(e.protocol_as::<Echo>(c).frames.is_empty());
    }

    #[test]
    fn unicast_delivers_and_fails_over_range() {
        let mut e = engine();
        let mut s1 = Echo::new();
        s1.unicast_on_start = Some((NodeId(1), vec![9]));
        let a = e.add_node(Box::new(s1), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        // Far node: unicast must produce a link failure at the sender.
        let mut s2 = Echo::new();
        s2.unicast_on_start = Some((NodeId(3), vec![7]));
        let c = e.add_node(Box::new(s2), Pos::new(500.0, 0.0), Mobility::Static);
        let d = e.add_node(Box::new(Echo::new()), Pos::new(900.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
        assert_eq!(e.protocol_as::<Echo>(a).link_failures.len(), 0);
        assert!(e.protocol_as::<Echo>(d).frames.is_empty());
        assert_eq!(e.protocol_as::<Echo>(c).link_failures, vec![d]);
        assert_eq!(e.metrics().counter("phy.tx_unicast_unreachable"), 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0)); // process Start
        let cancel_me = e.with_protocol::<Echo, _>(a, |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let h = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            h
        });
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(cancel_me));
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(a).timers, vec![1, 3]);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![1]);
        let _a = e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        e.kill_at(b, SimTime(0));
        // Kill is scheduled with seq after Start events but before the
        // broadcast delivery arrives (delivery has ≥1ms latency).
        e.run_until(SimTime(1_000_000));
        assert!(e.protocol_as::<Echo>(b).frames.is_empty());
        assert!(!e.is_alive(b));
    }

    #[test]
    fn staggered_join_delays_start() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![5]);
        // b joins at t=2s; a broadcasts at t=1s; b must not hear it.
        let a = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(0.0, 0.0),
            Mobility::Static,
            SimTime(1_000_000),
        );
        let b = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(50.0, 0.0),
            Mobility::Static,
            SimTime(2_000_000),
        );
        e.run_until(SimTime(500_000));
        assert!(e.neighbors(a).is_empty(), "nobody started yet");
        e.run_until(SimTime(1_500_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![5]));
        e.run_until(SimTime(1_600_000));
        assert!(
            e.protocol_as::<Echo>(b).frames.is_empty(),
            "not yet started"
        );
        e.run_until(SimTime(3_000_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![6]));
        e.run_until(SimTime(4_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed: u64| {
            let mut e = Engine::new(EngineConfig {
                seed,
                radio: RadioConfig {
                    loss: 0.3,
                    ..RadioConfig::default()
                },
                ..EngineConfig::default()
            });
            for i in 0..10 {
                let mut s = Echo::new();
                s.start_broadcast = Some(vec![i as u8; 100]);
                e.add_node(
                    Box::new(s),
                    Pos::new(i as f64 * 40.0, 0.0),
                    Mobility::RandomWaypoint {
                        min_speed: 1.0,
                        max_speed: 5.0,
                        pause_s: 1.0,
                    },
                );
            }
            e.run_until(SimTime(10_000_000));
            (
                e.metrics().counter("phy.rx_frames"),
                e.metrics().counter("phy.rx_dropped_loss"),
                (0..10)
                    .map(|i| e.position(NodeId(i)).x.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(7), run(7), "same seed must reproduce exactly");
        assert_ne!(run(7).1, run(8).1, "different seeds should diverge");
    }

    #[test]
    fn metrics_track_tx_rx() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![0; 50]);
        e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(10.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(20.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.metrics().counter("phy.tx_frames"), 1);
        assert_eq!(e.metrics().counter("phy.tx_bytes"), 50);
        assert_eq!(e.metrics().counter("phy.rx_frames"), 2);
        assert_eq!(e.metrics().counter("phy.rx_bytes"), 100);
    }

    #[test]
    fn neighbors_reflect_positions() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(100.0, 0.0), Mobility::Static);
        let c = e.add_node(Box::new(Echo::new()), Pos::new(1000.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        assert_eq!(e.neighbors(a), vec![b]);
        e.set_position(c, Pos::new(50.0, 0.0));
        let mut n = e.neighbors(a);
        n.sort();
        assert_eq!(n, vec![b, c]);
    }

    #[test]
    fn connectivity_analysis() {
        let mut e = engine(); // range 150
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(100.0, 0.0), Mobility::Static);
        let c = e.add_node(Box::new(Echo::new()), Pos::new(200.0, 0.0), Mobility::Static);
        let d = e.add_node(Box::new(Echo::new()), Pos::new(900.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        // a-b-c form a chain; d is isolated.
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, b, c]);
        assert!(!e.is_connected());
        assert_eq!(e.connected_component(d), vec![d]);
        // Killing the bridge splits a from c.
        e.kill_at(b, SimTime(2));
        e.run_until(SimTime(3));
        assert_eq!(e.connected_component(a), vec![a]);
        // Moving d next to a reconnects that pair (still 160 m from c,
        // out of the 150 m range).
        e.set_position(d, Pos::new(40.0, 0.0));
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, d]);
    }

    #[test]
    fn empty_and_single_node_graphs_are_connected() {
        let mut e = engine();
        assert!(e.is_connected(), "vacuously connected");
        e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        assert!(e.is_connected());
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut e = engine();
        e.run_until(SimTime(5_000_000));
        assert_eq!(e.now(), SimTime(5_000_000));
    }
}
