//! The discrete-event engine.
//!
//! Single-threaded and fully deterministic: one seeded RNG, a binary-heap
//! event queue ordered by `(time, insertion sequence)`, and node protocols
//! that interact with the world only through [`Ctx`]. Parallelism happens
//! one level up — the experiment runner executes independent simulation
//! cells on a rayon pool (see [`crate::runner`]).
//!
//! The engine itself is a thin lifecycle layer over four focused modules:
//! [`crate::ctx`] (the protocol window), [`crate::queue`] (event heap +
//! timer table), [`crate::grid`] (the spatial index), and [`crate::link`]
//! (transmit/deliver channel logic and neighborhood queries).
//!
//! ## Link-layer semantics
//!
//! * **Broadcast** frames reach every alive node within radio range, each
//!   reception independently subject to the configured loss probability.
//! * **Unicast** frames model a MAC with ARQ (802.11-style): delivery is
//!   reliable while the peer is alive and in range; if it is not, the
//!   sender gets an [`Protocol::on_link_failure`] callback — this is the
//!   trigger for the protocol's RERR path.
//!
//! ## Channel & spatial index
//!
//! Finding a frame's receivers used to be a linear scan over the node
//! table — O(n) per broadcast, O(n²) per flood, which capped scenario
//! size. The engine now keeps a uniform spatial grid
//! ([`EngineConfig::channel`] = [`ChannelMode::Grid`], the default) with
//! cell size equal to `radio.max_range()`, maintained incrementally on
//! joins, kills, teleports, and mobility ticks, so broadcast delivery,
//! [`Engine::neighbors`], and [`Engine::connected_component`] only
//! examine the 3×3 cells around the sender.
//!
//! **Determinism invariant:** candidate receivers are always visited in
//! ascending [`NodeId`] order, and the liveness/range filters run before
//! any RNG draw. Since out-of-range candidates never touch the RNG, the
//! grid (a superset-free pruning of the same candidate set) consumes the
//! random stream in exactly the order the linear scan does — same-seed
//! runs are bit-identical under either [`ChannelMode`]. The linear scan
//! stays available as the differential-testing oracle
//! ([`ChannelMode::Linear`]); `tests/determinism.rs` and
//! `tests/grid_channel.rs` enforce the equivalence.

pub use crate::ctx::{Ctx, LinkDst, NodeId, Protocol, TimerHandle};
pub use crate::link::ChannelMode;
pub use crate::queue::QueueImpl;

use crate::ctx::CtxOut;
use crate::geom::{Field, Pos};
use crate::grid::SpatialGrid;
use crate::metrics::Metrics;
use crate::mobility::{Mobility, MobilityState};
use crate::queue::{Event, PendingQueue, TimerTable};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Cold per-node state: touched once per dispatched callback (protocol)
/// or once per mobility tick (mobility), never in the candidate-filter
/// loop.
pub(crate) struct NodeSlot {
    pub(crate) proto: Option<Box<dyn Protocol>>,
    pub(crate) mobility: MobilityState,
}

/// Hot per-node state, packed into its own slab so the broadcast
/// delivery filter (position + liveness + join check per candidate)
/// touches 32 bytes per node instead of dragging the protocol box and
/// mobility state through the cache.
pub(crate) struct HotNode {
    pub(crate) pos: Pos,
    pub(crate) join_at: SimTime,
    pub(crate) alive: bool,
    pub(crate) started: bool,
}

/// Recycled frame buffers kept at most this many deep (largest scale
/// exhibit uses a few hundred in flight; frames are ~100–300 bytes).
const FRAME_POOL_CAP: usize = 1024;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub field: Field,
    pub radio: RadioConfig,
    /// Mobility integration step.
    pub mobility_tick: SimDuration,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Record a full event trace?
    pub trace: bool,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Receiver lookup strategy (see the module docs); `Grid` unless a
    /// differential test or baseline measurement asks for `Linear`.
    pub channel: ChannelMode,
    /// Pending-event store; `Wheel` unless a differential test or
    /// baseline measurement asks for the `Heap` oracle.
    pub queue: QueueImpl,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            field: Field::new(1000.0, 1000.0),
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(200),
            seed: 1,
            trace: false,
            max_events: 50_000_000,
            channel: ChannelMode::Grid,
            queue: QueueImpl::Wheel,
        }
    }
}

/// The discrete-event simulator.
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) queue: PendingQueue,
    pub(crate) nodes: Vec<NodeSlot>,
    /// Hot slab, index-aligned with `nodes` (see [`HotNode`]).
    pub(crate) hot: Vec<HotNode>,
    pub(crate) now: SimTime,
    pub(crate) rng: ChaCha12Rng,
    pub(crate) metrics: Metrics,
    pub(crate) tracer: Tracer,
    pub(crate) timers: TimerTable,
    /// `None` in [`ChannelMode::Linear`] — the index is then neither
    /// maintained nor queried.
    pub(crate) grid: Option<SpatialGrid>,
    /// Reusable candidate buffer for broadcast delivery.
    pub(crate) bcast_scratch: Vec<NodeId>,
    /// Reusable callback-output buffers (see [`CtxOut`]): cleared after
    /// every apply, never dropped, so steady-state dispatch allocates
    /// nothing.
    ctx_scratch: CtxOut,
    /// Recycled frame buffers: a delivered frame's buffer returns here
    /// once its last receiver has seen it, and [`Ctx::frame_buf`] hands
    /// it back out for the next encode.
    pub(crate) frame_pool: Vec<Vec<u8>>,
    events_processed: u64,
    /// Wall-clock time spent inside `run_until` — the denominator of
    /// the machine-dependent `events/sec (engine)` rate the scale
    /// exhibits and the CI perf gate report.
    busy: std::time::Duration,
    mobility_scheduled: bool,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Self {
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let tracer = Tracer::new(cfg.trace);
        let grid = match cfg.channel {
            ChannelMode::Grid => Some(SpatialGrid::new(&cfg.field, cfg.radio.max_range())),
            ChannelMode::Linear => None,
        };
        Engine {
            queue: PendingQueue::new(cfg.queue),
            cfg,
            nodes: Vec::new(),
            hot: Vec::new(),
            now: SimTime::ZERO,
            rng,
            metrics: Metrics::new(),
            tracer,
            timers: TimerTable::new(),
            grid,
            bcast_scratch: Vec::new(),
            ctx_scratch: CtxOut::default(),
            frame_pool: Vec::new(),
            events_processed: 0,
            busy: std::time::Duration::ZERO,
            mobility_scheduled: false,
        }
    }

    /// Add a node joining at t=0.
    pub fn add_node(&mut self, proto: Box<dyn Protocol>, pos: Pos, mobility: Mobility) -> NodeId {
        self.add_node_at(proto, pos, mobility, SimTime::ZERO)
    }

    /// Add a node that joins (runs `on_start`) at `join_at`. Staggered
    /// joins drive the bootstrap experiments (E1, E5).
    pub fn add_node_at(
        &mut self,
        proto: Box<dyn Protocol>,
        pos: Pos,
        mobility: Mobility,
        join_at: SimTime,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            proto: Some(proto),
            mobility: MobilityState::new(mobility),
        });
        self.hot.push(HotNode {
            pos,
            join_at,
            alive: true,
            started: false,
        });
        if let Some(grid) = &mut self.grid {
            grid.insert(id, &pos);
        }
        self.queue.push(join_at, Event::Start(id));
        id
    }

    /// Schedule a node's death (failure injection).
    pub fn kill_at(&mut self, node: NodeId, at: SimTime) {
        self.queue.push(at, Event::Kill(node));
    }

    /// Current position of a node.
    pub fn position(&self, node: NodeId) -> Pos {
        self.hot[node.0].pos
    }

    /// Teleport a node (scripted topology changes in tests).
    pub fn set_position(&mut self, node: NodeId, pos: Pos) {
        let pos = self.cfg.field.clamp(pos);
        self.hot[node.0].pos = pos;
        if let Some(grid) = &mut self.grid {
            grid.relocate(node, &pos);
        }
    }

    /// Is the node alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.hot[node.0].alive
    }

    /// Number of nodes (alive or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Events dispatched so far — the wall-clock-independent measure of
    /// how much simulation work a run did (events/sec in the scale
    /// exhibits).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Wall-clock seconds spent inside [`Engine::run_until`] so far.
    /// `events_processed() / busy_secs()` is the engine-only throughput
    /// rate — free of scenario construction and key generation, which
    /// is what the perf-regression gate compares.
    pub fn busy_secs(&self) -> f64 {
        self.busy.as_secs_f64()
    }

    /// Which pending-event store this engine runs on.
    pub fn queue_impl(&self) -> QueueImpl {
        self.cfg.queue
    }

    /// Borrow a protocol for post-run inspection.
    ///
    /// # Panics
    /// Panics if called re-entrantly (from inside a protocol callback).
    pub fn protocol(&self, node: NodeId) -> &dyn Protocol {
        self.nodes[node.0]
            .proto
            .as_deref()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Mutably borrow a protocol (e.g. to inject an application request).
    pub fn protocol_mut(&mut self, node: NodeId) -> &mut dyn Protocol {
        self.nodes[node.0]
            .proto
            .as_deref_mut()
            .expect("protocol checked out (re-entrant access)")
    }

    /// Typed view of a node's protocol.
    pub fn protocol_as<T: 'static>(&self, node: NodeId) -> &T {
        self.protocol(node)
            .as_any()
            .downcast_ref::<T>()
            .expect("protocol type mismatch")
    }

    /// Run a protocol callback "from outside" (applications injecting
    /// work between run() calls — e.g. "node 3: start a flow to D").
    pub fn with_protocol<T: 'static, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx) -> R,
    ) -> R {
        let mut proto = self.nodes[node.0]
            .proto
            .take()
            .expect("protocol checked out");
        let mut out = std::mem::take(&mut self.ctx_scratch);
        let mut ctx = Ctx {
            node,
            now: self.now,
            out: &mut out,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            tracer: &mut self.tracer,
            next_handle: &mut self.timers.next_handle,
            frame_pool: &mut self.frame_pool,
        };
        let r = f(
            proto
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("protocol type mismatch"),
            &mut ctx,
        );
        self.nodes[node.0].proto = Some(proto);
        self.apply_out(node, &mut out);
        self.ctx_scratch = out;
        r
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `cfg.trace`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic RNG (for harness-level draws that must stay inside
    /// the simulation's random universe).
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    /// Process events until `until` (inclusive) or the queue drains.
    pub fn run_until(&mut self, until: SimTime) {
        let t0 = std::time::Instant::now();
        self.ensure_mobility_tick(until);
        while let Some((time, event)) = self.queue.pop_due(until) {
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.cfg.max_events,
                "event cap exceeded — runaway simulation"
            );
            debug_assert!(time >= self.now, "event from the past");
            self.now = time;
            self.dispatch(event, until);
        }
        if self.now < until {
            self.now = until;
        }
        self.busy += t0.elapsed();
    }

    fn ensure_mobility_tick(&mut self, until: SimTime) {
        let any_mobile = self.nodes.iter().any(|n| !n.mobility.model.is_static());
        if any_mobile && !self.mobility_scheduled && self.now + self.cfg.mobility_tick <= until {
            let t = self.now + self.cfg.mobility_tick;
            self.queue.push(t, Event::MobilityTick);
            self.mobility_scheduled = true;
        }
    }

    fn dispatch(&mut self, event: Event, until: SimTime) {
        match event {
            Event::Start(id) => {
                if !self.hot[id.0].alive || self.hot[id.0].started {
                    return;
                }
                self.hot[id.0].started = true;
                self.call_protocol(id, |p, ctx| p.on_start(ctx));
            }
            Event::Deliver { to, src, bytes } => {
                let slot = &self.hot[to.0];
                if !slot.alive || !slot.started {
                    self.metrics.count("phy.rx_dropped_dead", 1);
                    self.recycle_frame(bytes);
                    return;
                }
                self.metrics.count("phy.rx_frames", 1);
                self.metrics.count("phy.rx_bytes", bytes.len() as u64);
                self.call_protocol(to, |p, ctx| p.on_frame(ctx, src, &bytes));
                self.recycle_frame(bytes);
            }
            Event::Timer { node, handle, tag } => {
                if !self.timers.should_fire(handle) {
                    return;
                }
                let slot = &self.hot[node.0];
                if !slot.alive || !slot.started {
                    return;
                }
                self.call_protocol(node, |p, ctx| p.on_timer(ctx, tag));
            }
            Event::LinkFailure { node, to, bytes } => {
                let slot = &self.hot[node.0];
                if slot.alive && slot.started {
                    self.metrics.count("phy.link_failures", 1);
                    self.call_protocol(node, |p, ctx| p.on_link_failure(ctx, to, &bytes));
                }
                self.recycle_frame(bytes);
            }
            Event::MobilityTick => {
                let dt = self.cfg.mobility_tick.as_secs_f64();
                let field = self.cfg.field;
                for i in 0..self.nodes.len() {
                    let hot = &mut self.hot[i];
                    if hot.alive && hot.started {
                        let before = hot.pos;
                        self.nodes[i]
                            .mobility
                            .step(&mut hot.pos, &field, dt, &mut self.rng);
                        if hot.pos != before {
                            if let Some(grid) = &mut self.grid {
                                grid.relocate(NodeId(i), &hot.pos);
                            }
                        }
                    }
                }
                self.mobility_scheduled = false;
                self.ensure_mobility_tick(until);
            }
            Event::Kill(id) => {
                self.hot[id.0].alive = false;
                if let Some(grid) = &mut self.grid {
                    grid.remove(id);
                }
                self.metrics.count("sim.nodes_killed", 1);
            }
        }
    }

    /// Return a delivered frame's buffer to the pool once this was its
    /// last outstanding reference (i.e. the broadcast fan-out is fully
    /// dispatched). The next [`Ctx::frame_buf`] hands it back out.
    fn recycle_frame(&mut self, bytes: std::sync::Arc<Vec<u8>>) {
        if let Some(mut buf) = std::sync::Arc::into_inner(bytes) {
            if self.frame_pool.len() < FRAME_POOL_CAP {
                buf.clear();
                self.frame_pool.push(buf);
            }
        }
    }

    fn call_protocol(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Protocol, &mut Ctx)) {
        let mut proto = self.nodes[id.0]
            .proto
            .take()
            .expect("re-entrant protocol call");
        let mut out = std::mem::take(&mut self.ctx_scratch);
        {
            let mut ctx = Ctx {
                node: id,
                now: self.now,
                out: &mut out,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                next_handle: &mut self.timers.next_handle,
                frame_pool: &mut self.frame_pool,
            };
            f(proto.as_mut(), &mut ctx);
        }
        self.nodes[id.0].proto = Some(proto);
        self.apply_out(id, &mut out);
        self.ctx_scratch = out;
    }

    /// Drain a callback's buffered commands into the engine. The buffers
    /// are emptied but keep their capacity — the caller puts them back
    /// into `ctx_scratch` for the next callback.
    fn apply_out(&mut self, id: NodeId, out: &mut CtxOut) {
        // Arm before cancelling: a callback may set a timer and cancel it
        // in the same batch, and the timer table drops cancels for
        // handles it has never seen armed.
        for (delay, handle, tag) in out.timers.drain(..) {
            let t = self.now + delay;
            self.timers.arm(handle);
            self.queue.push(
                t,
                Event::Timer {
                    node: id,
                    handle,
                    tag,
                },
            );
        }
        for h in out.cancels.drain(..) {
            self.timers.cancel(h);
        }
        for (dst, bytes) in out.sends.drain(..) {
            self.transmit(id, dst, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Minimal protocol: counts frames, echoes once, tracks timers.
    struct Echo {
        frames: Vec<(NodeId, Vec<u8>)>,
        timers: Vec<u64>,
        link_failures: Vec<NodeId>,
        start_broadcast: Option<Vec<u8>>,
        unicast_on_start: Option<(NodeId, Vec<u8>)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                frames: Vec::new(),
                timers: Vec::new(),
                link_failures: Vec::new(),
                start_broadcast: None,
                unicast_on_start: None,
            }
        }
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if let Some(b) = self.start_broadcast.take() {
                ctx.broadcast(b);
            }
            if let Some((to, b)) = self.unicast_on_start.take() {
                ctx.unicast(to, b);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
            self.frames.push((src, bytes.to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx, tag: u64) {
            self.timers.push(tag);
        }
        fn on_link_failure(&mut self, _ctx: &mut Ctx, to: NodeId, _bytes: &[u8]) {
            self.link_failures.push(to);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn engine() -> Engine {
        engine_with(ChannelMode::Grid)
    }

    fn engine_with(channel: ChannelMode) -> Engine {
        Engine::new(EngineConfig {
            radio: RadioConfig {
                range: 150.0,
                loss: 0.0,
                ..RadioConfig::default()
            },
            channel,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn broadcast_reaches_only_in_range_nodes() {
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = engine_with(channel);
            let mut sender = Echo::new();
            sender.start_broadcast = Some(vec![1, 2, 3]);
            let _a = e.add_node(Box::new(sender), Pos::new(0.0, 0.0), Mobility::Static);
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(100.0, 0.0),
                Mobility::Static,
            );
            let c = e.add_node(
                Box::new(Echo::new()),
                Pos::new(400.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1_000_000));
            assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1, "{channel:?}");
            assert_eq!(e.protocol_as::<Echo>(b).frames[0].1, vec![1, 2, 3]);
            assert!(e.protocol_as::<Echo>(c).frames.is_empty(), "{channel:?}");
        }
    }

    #[test]
    fn unicast_delivers_and_fails_over_range() {
        let mut e = engine();
        let mut s1 = Echo::new();
        s1.unicast_on_start = Some((NodeId(1), vec![9]));
        let a = e.add_node(Box::new(s1), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        // Far node: unicast must produce a link failure at the sender.
        let mut s2 = Echo::new();
        s2.unicast_on_start = Some((NodeId(3), vec![7]));
        let c = e.add_node(Box::new(s2), Pos::new(500.0, 0.0), Mobility::Static);
        let d = e.add_node(
            Box::new(Echo::new()),
            Pos::new(900.0, 0.0),
            Mobility::Static,
        );
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
        assert_eq!(e.protocol_as::<Echo>(a).link_failures.len(), 0);
        assert!(e.protocol_as::<Echo>(d).frames.is_empty());
        assert_eq!(e.protocol_as::<Echo>(c).link_failures, vec![d]);
        assert_eq!(e.metrics().counter("phy.tx_unicast_unreachable"), 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0)); // process Start
        let cancel_me = e.with_protocol::<Echo, _>(a, |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let h = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            h
        });
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(cancel_me));
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.protocol_as::<Echo>(a).timers, vec![1, 3]);
    }

    #[test]
    fn timer_set_and_cancelled_in_same_callback_never_fires() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0));
        e.with_protocol::<Echo, _>(a, |_p, ctx| {
            let h = ctx.set_timer(SimDuration::from_millis(5), 9);
            ctx.cancel_timer(h);
        });
        e.run_until(SimTime(1_000_000));
        assert!(e.protocol_as::<Echo>(a).timers.is_empty());
        assert_eq!(e.timers.cancelled_len(), 0);
        assert_eq!(e.timers.pending_len(), 0);
    }

    #[test]
    fn timer_bookkeeping_stays_bounded() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(0));
        // Arm + cancel-before-fire, then cancel-after-fire, many times:
        // the regression this guards is `cancelled` growing without bound
        // when protocols cancel timers that already fired.
        for round in 0..100u64 {
            let h = e.with_protocol::<Echo, _>(a, |_p, ctx| {
                ctx.set_timer(SimDuration::from_millis(1), round)
            });
            if round % 2 == 0 {
                e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(h));
                e.run_until(e.now() + SimDuration::from_millis(2));
            } else {
                e.run_until(e.now() + SimDuration::from_millis(2)); // fires
                e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.cancel_timer(h)); // late cancel
            }
        }
        assert_eq!(e.timers.cancelled_len(), 0, "cancel set leaked");
        assert_eq!(e.timers.pending_len(), 0, "pending set leaked");
        assert_eq!(e.protocol_as::<Echo>(a).timers.len(), 50);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![1]);
        let _a = e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(50.0, 0.0), Mobility::Static);
        e.kill_at(b, SimTime(0));
        // Kill is scheduled with seq after Start events but before the
        // broadcast delivery arrives (delivery has ≥1ms latency).
        e.run_until(SimTime(1_000_000));
        assert!(e.protocol_as::<Echo>(b).frames.is_empty());
        assert!(!e.is_alive(b));
    }

    #[test]
    fn staggered_join_delays_start() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![5]);
        // b joins at t=2s; a broadcasts at t=1s; b must not hear it.
        let a = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(0.0, 0.0),
            Mobility::Static,
            SimTime(1_000_000),
        );
        let b = e.add_node_at(
            Box::new(Echo::new()),
            Pos::new(50.0, 0.0),
            Mobility::Static,
            SimTime(2_000_000),
        );
        e.run_until(SimTime(500_000));
        assert!(e.neighbors(a).is_empty(), "nobody started yet");
        e.run_until(SimTime(1_500_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![5]));
        e.run_until(SimTime(1_600_000));
        assert!(
            e.protocol_as::<Echo>(b).frames.is_empty(),
            "not yet started"
        );
        e.run_until(SimTime(3_000_000));
        e.with_protocol::<Echo, _>(a, |_p, ctx| ctx.broadcast(vec![6]));
        e.run_until(SimTime(4_000_000));
        assert_eq!(e.protocol_as::<Echo>(b).frames.len(), 1);
    }

    fn lossy_mobile_run(seed: u64, channel: ChannelMode) -> (u64, u64, Vec<u64>) {
        let mut e = Engine::new(EngineConfig {
            seed,
            radio: RadioConfig {
                loss: 0.3,
                ..RadioConfig::default()
            },
            channel,
            ..EngineConfig::default()
        });
        for i in 0..10 {
            let mut s = Echo::new();
            s.start_broadcast = Some(vec![i as u8; 100]);
            e.add_node(
                Box::new(s),
                Pos::new(i as f64 * 40.0, 0.0),
                Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 5.0,
                    pause_s: 1.0,
                },
            );
        }
        e.run_until(SimTime(10_000_000));
        (
            e.metrics().counter("phy.rx_frames"),
            e.metrics().counter("phy.rx_dropped_loss"),
            (0..10)
                .map(|i| e.position(NodeId(i)).x.to_bits())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed| lossy_mobile_run(seed, ChannelMode::Grid);
        assert_eq!(run(7), run(7), "same seed must reproduce exactly");
        assert_ne!(run(7).1, run(8).1, "different seeds should diverge");
    }

    #[test]
    fn grid_and_linear_channels_are_bit_identical() {
        // Same seed, mobile and lossy: every RNG draw (loss, delay,
        // waypoints) must land identically whichever channel indexes the
        // receivers. This is the engine-level differential gate; the
        // scenario-level one lives in tests/determinism.rs.
        for seed in [7, 8, 9] {
            assert_eq!(
                lossy_mobile_run(seed, ChannelMode::Grid),
                lossy_mobile_run(seed, ChannelMode::Linear),
                "channel modes diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn metrics_track_tx_rx() {
        let mut e = engine();
        let mut s = Echo::new();
        s.start_broadcast = Some(vec![0; 50]);
        e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(10.0, 0.0), Mobility::Static);
        e.add_node(Box::new(Echo::new()), Pos::new(20.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1_000_000));
        assert_eq!(e.metrics().counter("phy.tx_frames"), 1);
        assert_eq!(e.metrics().counter("phy.tx_bytes"), 50);
        assert_eq!(e.metrics().counter("phy.rx_frames"), 2);
        assert_eq!(e.metrics().counter("phy.rx_bytes"), 100);
    }

    #[test]
    fn neighbors_reflect_positions() {
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = engine_with(channel);
            let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(100.0, 0.0),
                Mobility::Static,
            );
            let c = e.add_node(
                Box::new(Echo::new()),
                Pos::new(1000.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1));
            assert_eq!(e.neighbors(a), vec![b], "{channel:?}");
            e.set_position(c, Pos::new(50.0, 0.0));
            // Ascending-NodeId order is part of the API contract now.
            assert_eq!(e.neighbors(a), vec![b, c], "{channel:?}");
        }
    }

    #[test]
    fn neighbors_into_reuses_buffer() {
        let mut e = engine();
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(Box::new(Echo::new()), Pos::new(60.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        let mut buf = vec![NodeId(99); 8]; // stale content must be cleared
        e.neighbors_into(a, &mut buf);
        assert_eq!(buf, vec![b]);
        e.neighbors_into(b, &mut buf);
        assert_eq!(buf, vec![a]);
    }

    #[test]
    fn connectivity_analysis() {
        let mut e = engine(); // range 150
        let a = e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        let b = e.add_node(
            Box::new(Echo::new()),
            Pos::new(100.0, 0.0),
            Mobility::Static,
        );
        let c = e.add_node(
            Box::new(Echo::new()),
            Pos::new(200.0, 0.0),
            Mobility::Static,
        );
        let d = e.add_node(
            Box::new(Echo::new()),
            Pos::new(900.0, 0.0),
            Mobility::Static,
        );
        e.run_until(SimTime(1));
        // a-b-c form a chain; d is isolated.
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, b, c]);
        assert!(!e.is_connected());
        assert_eq!(e.connected_component(d), vec![d]);
        // Killing the bridge splits a from c.
        e.kill_at(b, SimTime(2));
        e.run_until(SimTime(3));
        assert_eq!(e.connected_component(a), vec![a]);
        // Moving d next to a reconnects that pair (still 160 m from c,
        // out of the 150 m range).
        e.set_position(d, Pos::new(40.0, 0.0));
        let mut comp = e.connected_component(a);
        comp.sort();
        assert_eq!(comp, vec![a, d]);
    }

    #[test]
    fn empty_and_single_node_graphs_are_connected() {
        let mut e = engine();
        assert!(e.is_connected(), "vacuously connected");
        e.add_node(Box::new(Echo::new()), Pos::new(0.0, 0.0), Mobility::Static);
        e.run_until(SimTime(1));
        assert!(e.is_connected());
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut e = engine();
        e.run_until(SimTime(5_000_000));
        assert_eq!(e.now(), SimTime(5_000_000));
    }

    #[test]
    fn gray_zone_sizes_grid_cells_to_max_range() {
        // With a gray zone the farthest receiver sits beyond `range`;
        // the grid must still find it (cell size = max_range, not range).
        for channel in [ChannelMode::Grid, ChannelMode::Linear] {
            let mut e = Engine::new(EngineConfig {
                radio: RadioConfig {
                    range: 100.0,
                    loss: 0.0,
                    gray_zone: Some(220.0),
                    jitter: SimDuration::ZERO,
                    ..RadioConfig::default()
                },
                channel,
                ..EngineConfig::default()
            });
            let mut s = Echo::new();
            s.start_broadcast = Some(vec![1]);
            let _a = e.add_node(Box::new(s), Pos::new(0.0, 0.0), Mobility::Static);
            // 150 m: inside the gray band, outside crisp range. Reception
            // probability ~0.58; with the same seed both channels make
            // the same draw — and it must at least be *attempted*.
            let b = e.add_node(
                Box::new(Echo::new()),
                Pos::new(150.0, 0.0),
                Mobility::Static,
            );
            e.run_until(SimTime(1_000_000));
            let heard = e.protocol_as::<Echo>(b).frames.len()
                + e.metrics().counter("phy.rx_dropped_loss") as usize;
            assert_eq!(heard, 1, "{channel:?}: gray-zone receiver never considered");
            // But b is NOT a crisp-range neighbor.
            assert!(e.neighbors(b).is_empty(), "{channel:?}");
        }
    }
}
