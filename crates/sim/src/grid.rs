//! Uniform spatial grid over the field — the engine's O(1)-neighborhood
//! index.
//!
//! Cell edge length equals the radio's maximum reception distance
//! ([`crate::RadioConfig::max_range`], i.e. the gray-zone radius when one
//! is configured), so any receiver of a frame sent from a cell lies in
//! that cell or one of its 8 neighbors: two positions at most one cell
//! apart on each axis (floor is monotone) whenever their distance is at
//! most one cell edge. Queries therefore scan at most 9 cells instead of
//! the whole node table.
//!
//! Candidate lists are returned in **ascending [`NodeId`] order**. That
//! is a hard invariant, not a nicety: broadcast delivery draws loss and
//! delay samples per candidate, and the linear fallback scan consumes
//! the RNG in NodeId order — sorting keeps the two channel
//! implementations bit-identical under the same seed (see the engine
//! module docs).
//!
//! Positions outside the field (tests teleport nodes around freely) are
//! clamped into the boundary cells; clamping is monotone, so the
//! one-cell-apart covering argument still holds.

use crate::ctx::NodeId;
use crate::geom::{Field, Pos};

pub(crate) struct SpatialGrid {
    /// Cell edge length in metres.
    cell: f64,
    cols: usize,
    rows: usize,
    /// Flat row-major buckets of node ids (unordered within a bucket).
    cells: Vec<Vec<NodeId>>,
    /// Current flat cell index per node; `None` after removal.
    loc: Vec<Option<usize>>,
}

impl SpatialGrid {
    pub(crate) fn new(field: &Field, cell_size: f64) -> Self {
        let cell = cell_size.max(1e-6); // guard degenerate radio configs
        let cols = ((field.width / cell).ceil() as usize).max(1);
        let rows = ((field.height / cell).ceil() as usize).max(1);
        SpatialGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            loc: Vec::new(),
        }
    }

    /// `(col, row)` of a position; saturating casts clamp stray
    /// out-of-field coordinates into the boundary cells.
    fn coords(&self, pos: &Pos) -> (usize, usize) {
        let cx = ((pos.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((pos.y / self.cell) as usize).min(self.rows - 1);
        (cx, cy)
    }

    fn index_of(&self, pos: &Pos) -> usize {
        let (cx, cy) = self.coords(pos);
        cy * self.cols + cx
    }

    pub(crate) fn insert(&mut self, id: NodeId, pos: &Pos) {
        if self.loc.len() <= id.0 {
            self.loc.resize(id.0 + 1, None);
        }
        debug_assert!(self.loc[id.0].is_none(), "node already indexed");
        let idx = self.index_of(pos);
        self.cells[idx].push(id);
        self.loc[id.0] = Some(idx);
    }

    /// Drop a node from the index (node death). No-op if absent.
    pub(crate) fn remove(&mut self, id: NodeId) {
        if let Some(idx) = self.loc.get_mut(id.0).and_then(|l| l.take()) {
            let bucket = &mut self.cells[idx];
            let at = bucket.iter().position(|&n| n == id).expect("loc desync");
            bucket.swap_remove(at);
        }
    }

    /// Move a node to `pos` (mobility tick or teleport). No-op for nodes
    /// not in the index (already removed by death).
    pub(crate) fn relocate(&mut self, id: NodeId, pos: &Pos) {
        let new_idx = self.index_of(pos);
        match self.loc.get(id.0).copied().flatten() {
            Some(old_idx) if old_idx == new_idx => {}
            Some(_) => {
                self.remove(id);
                self.cells[new_idx].push(id);
                self.loc[id.0] = Some(new_idx);
            }
            None => {}
        }
    }

    /// Fill `out` with every indexed node in the 3×3 cell neighborhood of
    /// `pos`, ascending by NodeId. The caller filters self/liveness/range.
    pub(crate) fn candidates_into(&self, pos: &Pos, out: &mut Vec<NodeId>) {
        out.clear();
        let (cx, cy) = self.coords(pos);
        for gy in cy.saturating_sub(1)..=(cy + 1).min(self.rows - 1) {
            for gx in cx.saturating_sub(1)..=(cx + 1).min(self.cols - 1) {
                out.extend_from_slice(&self.cells[gy * self.cols + gx]);
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SpatialGrid {
        // 1000×1000 field, 250 m cells → 4×4.
        SpatialGrid::new(&Field::new(1000.0, 1000.0), 250.0)
    }

    fn candidates(g: &SpatialGrid, pos: Pos) -> Vec<NodeId> {
        let mut out = Vec::new();
        g.candidates_into(&pos, &mut out);
        out
    }

    #[test]
    fn covers_all_pairs_within_one_cell_edge() {
        let mut g = grid();
        // Exactly on a cell boundary (x = 250 floors into cell 1) and its
        // in-range partner just left of the boundary in cell 0.
        g.insert(NodeId(0), &Pos::new(250.0, 0.0));
        g.insert(NodeId(1), &Pos::new(249.999, 0.0));
        // 250 m apart straddling a boundary: cells 0 and 1.
        g.insert(NodeId(2), &Pos::new(100.0, 100.0));
        g.insert(NodeId(3), &Pos::new(350.0, 100.0));
        for (a, b) in [(0, 1), (2, 3)] {
            for (x, y) in [(a, b), (b, a)] {
                let pos = match x {
                    0 => Pos::new(250.0, 0.0),
                    1 => Pos::new(249.999, 0.0),
                    2 => Pos::new(100.0, 100.0),
                    _ => Pos::new(350.0, 100.0),
                };
                assert!(
                    candidates(&g, pos).contains(&NodeId(y)),
                    "n{y} missing from n{x}'s neighborhood"
                );
            }
        }
    }

    #[test]
    fn candidates_are_sorted_ascending() {
        let mut g = grid();
        // Insert out of order into the same neighborhood.
        g.insert(NodeId(5), &Pos::new(10.0, 10.0));
        g.insert(NodeId(1), &Pos::new(300.0, 10.0));
        g.insert(NodeId(3), &Pos::new(10.0, 300.0));
        let c = candidates(&g, Pos::new(100.0, 100.0));
        assert_eq!(c, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn far_nodes_are_not_candidates() {
        let mut g = grid();
        g.insert(NodeId(0), &Pos::new(0.0, 0.0));
        g.insert(NodeId(1), &Pos::new(900.0, 900.0));
        assert_eq!(candidates(&g, Pos::new(0.0, 0.0)), vec![NodeId(0)]);
    }

    #[test]
    fn relocate_moves_between_buckets() {
        let mut g = grid();
        g.insert(NodeId(0), &Pos::new(0.0, 0.0));
        assert!(candidates(&g, Pos::new(900.0, 900.0)).is_empty());
        g.relocate(NodeId(0), &Pos::new(950.0, 950.0));
        assert_eq!(candidates(&g, Pos::new(900.0, 900.0)), vec![NodeId(0)]);
        assert!(candidates(&g, Pos::new(0.0, 0.0)).is_empty());
        // Same-cell relocation is a no-op.
        g.relocate(NodeId(0), &Pos::new(960.0, 960.0));
        assert_eq!(candidates(&g, Pos::new(900.0, 900.0)), vec![NodeId(0)]);
    }

    #[test]
    fn remove_is_final_and_relocate_after_remove_is_noop() {
        let mut g = grid();
        g.insert(NodeId(0), &Pos::new(0.0, 0.0));
        g.remove(NodeId(0));
        assert!(candidates(&g, Pos::new(0.0, 0.0)).is_empty());
        g.relocate(NodeId(0), &Pos::new(10.0, 10.0));
        assert!(candidates(&g, Pos::new(0.0, 0.0)).is_empty());
        g.remove(NodeId(0)); // double-remove tolerated
    }

    #[test]
    fn out_of_field_positions_clamp_into_boundary_cells() {
        let mut g = grid();
        g.insert(NodeId(0), &Pos::new(-50.0, 2000.0));
        assert_eq!(candidates(&g, Pos::new(0.0, 999.0)), vec![NodeId(0)]);
    }

    #[test]
    fn huge_cells_degenerate_to_one_bucket() {
        let mut g = SpatialGrid::new(&Field::new(100.0, 100.0), 1e9);
        g.insert(NodeId(0), &Pos::new(0.0, 0.0));
        g.insert(NodeId(1), &Pos::new(100.0, 100.0));
        assert_eq!(
            candidates(&g, Pos::new(50.0, 50.0)),
            vec![NodeId(0), NodeId(1)]
        );
    }
}
