//! 2-D geometry for node placement and mobility.

/// A position in metres on the simulation field.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Pos {
    pub x: f64,
    pub y: f64,
}

impl Pos {
    pub fn new(x: f64, y: f64) -> Self {
        Pos { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Pos) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared distance — for comparisons that don't need the `sqrt`.
    pub fn dist_sq(&self, other: &Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Step `max_step` metres toward `target`, stopping exactly there if
    /// closer. Returns the new position and whether the target was reached.
    pub fn step_toward(&self, target: &Pos, max_step: f64) -> (Pos, bool) {
        let d = self.dist(target);
        if d <= max_step || d == 0.0 {
            return (*target, true);
        }
        let frac = max_step / d;
        (
            Pos {
                x: self.x + (target.x - self.x) * frac,
                y: self.y + (target.y - self.y) * frac,
            },
            false,
        )
    }
}

/// The rectangular field `[0, width] × [0, height]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    pub width: f64,
    pub height: f64,
}

impl Field {
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "degenerate field");
        Field { width, height }
    }

    /// Clamp a position into the field.
    pub fn clamp(&self, p: Pos) -> Pos {
        Pos {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// Does the field contain `p`?
    pub fn contains(&self, p: &Pos) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance() {
        assert_eq!(Pos::new(0.0, 0.0).dist(&Pos::new(3.0, 4.0)), 5.0);
        assert_eq!(Pos::new(1.0, 1.0).dist(&Pos::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn step_toward_reaches_target() {
        let from = Pos::new(0.0, 0.0);
        let to = Pos::new(10.0, 0.0);
        let (p, done) = from.step_toward(&to, 4.0);
        assert!(!done);
        assert!((p.x - 4.0).abs() < 1e-12);
        let (p2, done2) = p.step_toward(&to, 100.0);
        assert!(done2);
        assert_eq!(p2, to);
    }

    #[test]
    fn step_toward_zero_distance_is_done() {
        let p = Pos::new(5.0, 5.0);
        let (q, done) = p.step_toward(&p, 1.0);
        assert!(done);
        assert_eq!(q, p);
    }

    #[test]
    fn field_clamp_and_contains() {
        let f = Field::new(100.0, 50.0);
        assert!(f.contains(&Pos::new(0.0, 0.0)));
        assert!(f.contains(&Pos::new(100.0, 50.0)));
        assert!(!f.contains(&Pos::new(100.1, 0.0)));
        let c = f.clamp(Pos::new(-5.0, 60.0));
        assert_eq!(c, Pos::new(0.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_field_panics() {
        Field::new(0.0, 10.0);
    }
}
