//! Event tracing.
//!
//! The Figure 2 and Figure 3 exhibits are literally printed traces of the
//! protocol exchange, so the tracer keeps structured records rather than
//! log lines. Tracing is off by default; experiments that need it opt in.

use crate::engine::NodeId;
use crate::time::SimTime;
use std::fmt;

/// Direction of a traced packet event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Transmitted (broadcast or unicast).
    Tx,
    /// Received and accepted.
    Rx,
    /// Dropped (loss, out of range, verification failure, …).
    Drop,
    /// Internal protocol decision (state change, timer, verdict).
    Note,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Tx => write!(f, "TX  "),
            Dir::Rx => write!(f, "RX  "),
            Dir::Drop => write!(f, "DROP"),
            Dir::Note => write!(f, "NOTE"),
        }
    }
}

/// One traced event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub time: SimTime,
    pub node: NodeId,
    pub dir: Dir,
    /// Message kind ("AREQ", "RREP", …) or note category.
    pub kind: &'static str,
    /// Free-form detail for humans.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] n{:<3} {} {:<6} {}",
            format!("{:.6}s", self.time.as_secs_f64()),
            self.node.0,
            self.dir,
            self.kind,
            self.detail
        )
    }
}

/// Collects [`TraceEvent`]s when enabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            events: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable access for the sharded executor's replay merge, which
    /// moves per-shard trace buffers into the global stream in
    /// deterministic `(time, seq)` order.
    pub(crate) fn events_mut(&mut self) -> &mut Vec<TraceEvent> {
        &mut self.events
    }

    /// Events involving a given message kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Render the whole trace as printable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &'static str) -> TraceEvent {
        TraceEvent {
            time: SimTime(1_500_000),
            node: NodeId(3),
            dir: Dir::Tx,
            kind,
            detail: "test".into(),
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.record(ev("AREQ"));
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_keeps_order() {
        let mut t = Tracer::new(true);
        t.record(ev("AREQ"));
        t.record(ev("AREP"));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, "AREQ");
        assert_eq!(t.of_kind("AREP").count(), 1);
        assert_eq!(t.of_kind("RREQ").count(), 0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Tracer::new(true);
        t.record(ev("AREQ"));
        let s = t.render();
        assert!(s.contains("AREQ"));
        assert!(s.contains("n3"));
        assert!(s.contains("1.500000s"));
        assert_eq!(s.lines().count(), 1);
    }
}
