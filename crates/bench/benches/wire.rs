//! T1/F1-shaped microbenches: message codec round trips and CGA
//! generation/verification — the per-packet fixed costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manet_secure::HostIdentity;
use manet_wire::{cga, sigdata, IdentityProof, Message, Rreq, SecureRouteRecord, Seq, SrrEntry};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn rreq_with_hops(hops: usize) -> Message {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let id = HostIdentity::generate(512, &mut rng);
    let seq = Seq(1);
    let entries: Vec<SrrEntry> = (0..hops)
        .map(|_| SrrEntry {
            ip: id.ip(),
            proof: IdentityProof {
                pk: id.public().clone(),
                rn: id.rn(),
                sig: id.sign(&sigdata::srr_hop(&id.ip(), seq)),
            },
        })
        .collect();
    Message::Rreq(Rreq {
        sip: id.ip(),
        dip: id.ip(),
        seq,
        srr: SecureRouteRecord(entries),
        src_proof: IdentityProof {
            pk: id.public().clone(),
            rn: id.rn(),
            sig: id.sign(&sigdata::rreq_src(&id.ip(), seq)),
        },
    })
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_rreq");
    for hops in [0usize, 4, 8] {
        let msg = rreq_with_hops(hops);
        let bytes = msg.encode();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", hops), &msg, |b, msg| {
            b.iter(|| black_box(msg).encode());
        });
        g.bench_with_input(BenchmarkId::new("decode", hops), &bytes, |b, bytes| {
            b.iter(|| Message::decode(black_box(bytes)).expect("valid"));
        });
    }
    g.finish();
}

fn bench_cga(c: &mut Criterion) {
    let mut rng = ChaCha12Rng::seed_from_u64(8);
    let id = HostIdentity::generate(512, &mut rng);
    c.bench_function("cga_generate", |b| {
        b.iter(|| cga::generate(black_box(id.public()), black_box(5)));
    });
    let addr = cga::generate(id.public(), 5);
    c.bench_function("cga_verify", |b| {
        b.iter(|| cga::verify(black_box(&addr), black_box(id.public()), black_box(5)));
    });
}

criterion_group!(benches, bench_codec, bench_cga);
criterion_main!(benches);
