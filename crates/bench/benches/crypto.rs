//! C1 — the cryptographic substrate's costs (DESIGN.md §4).
//!
//! These are the per-hop prices the protocol pays: one `sign` per RREQ
//! relay, `hops+1` verifies at the destination, one `H` per CGA check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manet_crypto::{h_pk_rn, sha256, KeyPair};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_keygen(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsa_keygen");
    g.sample_size(10);
    for bits in [512u32, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            b.iter(|| KeyPair::generate(black_box(bits), &mut rng));
        });
    }
    g.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let msg = b"[IIP, seq]ISK - one SRR hop entry";
    let mut g = c.benchmark_group("rsa");
    for bits in [512u32, 1024, 2048] {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let kp = KeyPair::generate(bits, &mut rng);
        g.bench_with_input(BenchmarkId::new("sign_crt", bits), &kp, |b, kp| {
            b.iter(|| kp.sign(black_box(msg)));
        });
        g.bench_with_input(BenchmarkId::new("sign_no_crt", bits), &kp, |b, kp| {
            b.iter(|| kp.sign_no_crt(black_box(msg)));
        });
        let sig = kp.sign(msg);
        g.bench_with_input(BenchmarkId::new("verify", bits), &kp, |b, kp| {
            b.iter(|| kp.public().verify(black_box(msg), black_box(&sig)));
        });
    }
    g.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    g.finish();
}

fn bench_cga_hash(c: &mut Criterion) {
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let kp = KeyPair::generate(512, &mut rng);
    c.bench_function("h_pk_rn", |b| {
        b.iter(|| h_pk_rn(black_box(kp.public()), black_box(42)));
    });
}

criterion_group!(
    benches,
    bench_keygen,
    bench_sign_verify,
    bench_sha256,
    bench_cga_hash
);
criterion_main!(benches);
