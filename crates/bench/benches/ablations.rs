//! Ablation benchmarks (DESIGN.md §5): the runtime side of the design
//! choices — SRR verification cost at the destination, CREP's effect on
//! discovery work, and credit bookkeeping overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet_secure::scenario::ScenarioBuilder;
use manet_sim::SimDuration;
use std::hint::black_box;

/// Destination-side SRR verification on/off over a 6-hop discovery: the
/// paper's per-hop identity checking vs SRP-style trust-the-chain.
fn bench_srr_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_srr_verify");
    g.sample_size(10);
    for &verify in &[true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if verify { "on" } else { "off" }),
            &verify,
            |b, &verify| {
                b.iter(|| {
                    let mut net = ScenarioBuilder::new()
                        .hosts(7)
                        .seed(4)
                        .secure()
                        .tune(|p| p.verify_srr = verify)
                        .build();
                    assert!(net.bootstrap());
                    let report = net.run_flows(&[(0, 6)], 5, SimDuration::from_millis(300));
                    black_box(report.delivery_ratio)
                });
            },
        );
    }
    g.finish();
}

/// CREP on/off: total work for two requesters reaching the same
/// destination.
fn bench_crep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_crep");
    g.sample_size(10);
    for &crep in &[true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if crep { "on" } else { "off" }),
            &crep,
            |b, &crep| {
                b.iter(|| {
                    let mut net = ScenarioBuilder::new()
                        .hosts(6)
                        .seed(5)
                        .secure()
                        .tune(|p| p.crep_enabled = crep)
                        .build();
                    assert!(net.bootstrap());
                    net.run_flows(&[(0, 5)], 2, SimDuration::from_millis(300));
                    let report = net.run_flows(&[(1, 5)], 2, SimDuration::from_millis(300));
                    black_box(report.tx_bytes)
                });
            },
        );
    }
    g.finish();
}

/// Credit bookkeeping on/off in a clean network — the steady-state tax
/// of Section 3.4 when nobody misbehaves.
fn bench_credits_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_credit_overhead");
    g.sample_size(10);
    for &on in &[true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| {
                b.iter(|| {
                    let mut net = ScenarioBuilder::new()
                        .hosts(5)
                        .seed(6)
                        .secure()
                        .tune(|p| p.credit.enabled = on)
                        .build();
                    assert!(net.bootstrap());
                    let report = net.run_flows(&[(0, 4)], 10, SimDuration::from_millis(250));
                    black_box(report.delivery_ratio)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_srr_verify,
    bench_crep,
    bench_credits_overhead
);
criterion_main!(benches);
