//! C2 — the pluggable signature backends and the batch drain.
//!
//! Three questions, isolated from the simulator:
//! * what does one verify/sign cost under each [`BackendKind`] (the
//!   per-op gap the `NullBackend` protocol-only runs exploit);
//! * what does the batch pipeline's bookkeeping cost when it *cannot*
//!   amortize (all triples unique — pure overhead vs inline);
//! * what does a duplicate-heavy tick cost batched vs inline (the
//!   flood case the network-wide dedup exists for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manet_crypto::{backend_for, BackendKind, BatchVerifier, KeyPair, PublicKey, Signature};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

/// One signed triple per distinct payload, all under one 512-bit key
/// (the flood shape: many proofs from few identities).
fn triples(backend: BackendKind, n: usize) -> (KeyPair, Vec<(Vec<u8>, Signature)>) {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let kp = KeyPair::generate(512, &mut rng);
    let b = backend_for(backend);
    let signed = (0..n)
        .map(|i| {
            let payload = format!("[IIP, seq {i}]ISK - SRR hop entry").into_bytes();
            let sig = b.sign(&kp, &payload);
            (payload, sig)
        })
        .collect();
    (kp, signed)
}

fn bench_verify_per_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_verify");
    for kind in BackendKind::ALL {
        let (kp, signed) = triples(kind, 1);
        let backend = backend_for(kind);
        let (payload, sig) = &signed[0];
        g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| backend.verify(black_box(kp.public()), black_box(payload), black_box(sig)));
        });
    }
    g.finish();
}

fn bench_sign_per_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_sign");
    let msg = b"[IIP, seq]ISK - one SRR hop entry";
    for kind in BackendKind::ALL {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let kp = KeyPair::generate(512, &mut rng);
        let backend = backend_for(kind);
        g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| backend.sign(black_box(&kp), black_box(msg)));
        });
    }
    g.finish();
}

fn verify_inline(pk: &PublicKey, backend: BackendKind, work: &[(Vec<u8>, Signature)]) -> u32 {
    let b = backend_for(backend);
    let mut ok = 0u32;
    for (payload, sig) in work {
        ok += b.verify(pk, payload, sig) as u32;
    }
    ok
}

fn verify_batched(pk: &PublicKey, backend: BackendKind, work: &[(Vec<u8>, Signature)]) -> u64 {
    let b = backend_for(backend);
    // A fresh verifier per iteration: the empty-table case, so the
    // measurement includes every enqueue/drain cost, not a warm table.
    let batch = BatchVerifier::new(1 << 16);
    for (payload, sig) in work {
        batch.enqueue(pk, payload, sig);
    }
    batch.drain(b.as_ref());
    batch.stats().executed
}

/// `dup` presentations of each of `unique` triples — one simulated
/// tick's worth of demand. `dup = 1` is the worst case for batching
/// (bookkeeping, no amortization); `dup = 8` is the flood case.
fn bench_batched_vs_inline(c: &mut Criterion) {
    const UNIQUE: usize = 32;
    for kind in [BackendKind::Rsa, BackendKind::HashSig] {
        let (kp, signed) = triples(kind, UNIQUE);
        let mut g = c.benchmark_group(format!("batch_tick_{}", kind.name()));
        for dup in [1usize, 8] {
            let work: Vec<(Vec<u8>, Signature)> =
                signed.iter().cycle().take(UNIQUE * dup).cloned().collect();
            g.throughput(Throughput::Elements(work.len() as u64));
            g.bench_with_input(BenchmarkId::new("inline", dup), &work, |b, work| {
                b.iter(|| verify_inline(black_box(kp.public()), kind, black_box(work)));
            });
            g.bench_with_input(BenchmarkId::new("batched", dup), &work, |b, work| {
                b.iter(|| verify_batched(black_box(kp.public()), kind, black_box(work)));
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_verify_per_backend,
    bench_sign_per_backend,
    bench_batched_vs_inline
);
criterion_main!(benches);
