//! Memory-diet microbenchmarks: the arena-backed route cache against
//! the legacy owning-`Vec` layout it replaced, under S2-shaped churn —
//! 10,000 nodes' worth of destinations cycling through insert, evict,
//! and link-failure removal. The arena's win is allocator traffic (a
//! recycled span instead of a malloc/free pair per route), which shows
//! up here as wall time; the peak-RSS side of the diet is gated by the
//! S3 exhibit and `tables -- --check-perf`.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_secure::config::CreditConfig;
use manet_secure::credit::CreditManager;
use manet_secure::routecache::{CachedRoute, RouteCache};
use manet_secure::PlainDsrNode;
use manet_sim::{SimDuration, SimTime};
use manet_wire::Ipv6Addr;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hint::black_box;

/// Destination population: one route-cache worth of churn per S2-scale
/// node, exercised as a single cache over 10k distinct destinations.
const DESTS: usize = 10_000;
const ROUNDS: u64 = 4;
const TTL: SimDuration = SimDuration(60_000_000);

/// The address population, drawn exactly like a plain scenario build
/// (site-local prefix, random 64-bit interface id) so hashing and
/// comparison costs match the simulation's.
fn addresses() -> Vec<Ipv6Addr> {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
    (0..DESTS + 4)
        .map(|_| PlainDsrNode::random_ip(&mut rng))
        .collect()
}

fn relays_for(ips: &[Ipv6Addr], d: usize, round: u64) -> Vec<Ipv6Addr> {
    // 1–3 relays, varying with the round so replacements are real
    // inserts (distinct relay lists), not in-place refreshes.
    let len = 1 + ((d as u64 + round) % 3) as usize;
    (0..len).map(|i| ips[(d + i + 1) % ips.len()]).collect()
}

/// The pre-diet layout, reconstructed for comparison: every stored
/// route owns its relay `Vec`, every insert allocates, every evict
/// frees. Same bounds, eviction order, and selection filters as
/// [`RouteCache`] — only the storage differs, so the measured gap is
/// the storage cost.
struct LegacyRouteCache {
    ttl: SimDuration,
    per_dest: usize,
    routes: HashMap<Ipv6Addr, Vec<(Vec<Ipv6Addr>, SimTime)>>,
}

impl LegacyRouteCache {
    fn new(ttl: SimDuration, per_dest: usize) -> Self {
        LegacyRouteCache {
            ttl,
            per_dest,
            routes: HashMap::new(),
        }
    }

    fn insert(&mut self, dst: Ipv6Addr, relays: Vec<Ipv6Addr>, at: SimTime) {
        let list = self.routes.entry(dst).or_default();
        list.retain(|(r, _)| r != &relays);
        while list.len() >= self.per_dest {
            let oldest = list
                .iter()
                .enumerate()
                .min_by_key(|(i, (_, t))| (*t, *i))
                .map(|(i, _)| i)
                .expect("nonempty");
            list.remove(oldest);
        }
        list.push((relays, at));
    }

    fn best(&self, dst: &Ipv6Addr, credits: &CreditManager, now: SimTime) -> Option<&[Ipv6Addr]> {
        let fresh =
            |at: SimTime| now.as_micros().saturating_sub(at.as_micros()) <= self.ttl.as_micros();
        self.routes
            .get(dst)?
            .iter()
            .filter(|(_, at)| fresh(*at))
            .filter(|(r, _)| !credits.route_avoided(r))
            .max_by(|(ra, _), (rb, _)| {
                let (sa, sb) = if credits.enabled() {
                    (credits.route_score(ra), credits.route_score(rb))
                } else {
                    (0, 0)
                };
                sa.cmp(&sb).then(rb.len().cmp(&ra.len()))
            })
            .map(|(r, _)| r.as_slice())
    }
}

/// Insert/evict churn across 10k destinations: arena spans recycle,
/// the legacy layout round-trips the global allocator per route.
fn bench_route_churn(c: &mut Criterion) {
    let ips = addresses();
    let mut g = c.benchmark_group("scale_mem_route_churn");
    g.sample_size(10);
    g.bench_function("arena_10k", |b| {
        b.iter(|| {
            let mut cache = RouteCache::with_caps(TTL, 2, DESTS);
            for round in 0..ROUNDS {
                for d in 0..DESTS {
                    cache.insert(
                        ips[d],
                        CachedRoute {
                            relays: relays_for(&ips, d, round),
                            d_proof: None,
                            learned_at: SimTime(round * 1_000),
                        },
                    );
                }
            }
            black_box(cache.arena_backing_len())
        });
    });
    g.bench_function("legacy_10k", |b| {
        b.iter(|| {
            let mut cache = LegacyRouteCache::new(TTL, 2);
            for round in 0..ROUNDS {
                for d in 0..DESTS {
                    cache.insert(ips[d], relays_for(&ips, d, round), SimTime(round * 1_000));
                }
            }
            black_box(cache.routes.len())
        });
    });
    g.finish();
}

/// Lookup-heavy mix after the churn settles: `best` is the forwarding
/// hot path, so the arena's contiguous spans must not cost reads what
/// they saved on writes.
fn bench_route_lookup(c: &mut Criterion) {
    let ips = addresses();
    let mut g = c.benchmark_group("scale_mem_route_lookup");
    g.sample_size(10);
    let credits = CreditManager::new(CreditConfig::default());

    let mut arena = RouteCache::with_caps(TTL, 2, DESTS);
    let mut legacy = LegacyRouteCache::new(TTL, 2);
    for round in 0..ROUNDS {
        for d in 0..DESTS {
            arena.insert(
                ips[d],
                CachedRoute {
                    relays: relays_for(&ips, d, round),
                    d_proof: None,
                    learned_at: SimTime(round * 1_000),
                },
            );
            legacy.insert(ips[d], relays_for(&ips, d, round), SimTime(round * 1_000));
        }
    }

    g.bench_function("arena_10k", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for ip in ips.iter().take(DESTS) {
                if let Some(r) = arena.best(ip, &credits, SimTime(ROUNDS * 1_000)) {
                    hops += r.relays.len();
                }
            }
            black_box(hops)
        });
    });
    g.bench_function("legacy_10k", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for ip in ips.iter().take(DESTS) {
                if let Some(r) = legacy.best(ip, &credits, SimTime(ROUNDS * 1_000)) {
                    hops += r.len();
                }
            }
            black_box(hops)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_route_churn, bench_route_lookup);
criterion_main!(benches);
