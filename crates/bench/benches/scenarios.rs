//! Whole-simulation benchmarks: wall-clock cost of the E1/E2/E5-shaped
//! scenarios. These time the *reproduction harness itself* (simulator +
//! crypto under load), so regressions in any layer show up here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet_secure::scenario::{scale_family, Placement, ScenarioBuilder, Workload};
use manet_sim::{ChannelMode, SimDuration, SimTime};
use std::hint::black_box;

/// E5-shaped: full secure bootstrap of an n-host chain network.
fn bench_bootstrap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap_secure");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = ScenarioBuilder::new().hosts(n).seed(1).secure().build();
                assert!(net.bootstrap());
                black_box(net.engine.metrics().counter("ctl.tx_bytes"))
            });
        });
    }
    g.finish();
}

/// E2-shaped: bootstrap + discovery + 10-packet flow over a chain,
/// secure vs plain (the security multiplier on harness wall time).
fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("five_hop_flow");
    g.sample_size(10);
    let w = Workload::flows(vec![(0, 5)], 10, SimDuration::from_millis(300));
    g.bench_function("secure", |b| {
        b.iter(|| {
            let mut net = ScenarioBuilder::new().hosts(6).seed(2).secure().build();
            assert!(net.bootstrap());
            black_box(net.run(&w).delivery_ratio)
        });
    });
    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut net = ScenarioBuilder::new().hosts(6).seed(2).plain().build();
            black_box(net.run(&w).delivery_ratio)
        });
    });
    g.finish();
}

/// E1-shaped: a grid network under a flooding join storm.
fn bench_grid_bootstrap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap_grid");
    g.sample_size(10);
    g.bench_function("12_hosts", |b| {
        b.iter(|| {
            let mut net = ScenarioBuilder::new()
                .hosts(12)
                .placement(Placement::Grid {
                    cols: 4,
                    spacing: 170.0,
                })
                .seed(3)
                .secure()
                .build();
            assert!(net.bootstrap());
            black_box(net.engine.metrics().counter("phy.rx_frames"))
        });
    });
    g.finish();
}

/// S1-shaped (scaled down): flooding route discovery over a uniform
/// 400-node field, spatial-index channel vs linear receiver scan. The
/// gap here is the whole point of the grid layer; it widens with n.
fn bench_scale_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_channel");
    g.sample_size(10);
    for channel in [ChannelMode::Grid, ChannelMode::Linear] {
        g.bench_function(format!("{channel:?}_400").to_lowercase(), |b| {
            b.iter(|| {
                let mut net = scale_family(400, 4).channel(channel).plain().build();
                net.engine.run_until(SimTime(1_000_000));
                let flows = net.scale_flows(4);
                let report = net.run(&Workload::flows(flows, 2, SimDuration::from_millis(400)));
                black_box(report.rx_frames)
            });
        });
    }
    g.finish();
}

/// S1-shaped (scaled down): the same flooding workload under the timer
/// wheel vs the binary-heap oracle. The wheel's O(1) schedule/advance
/// is the event core's headline; this pins the gap per commit.
fn bench_scale_queue(c: &mut Criterion) {
    use manet_sim::QueueImpl;
    let mut g = c.benchmark_group("scale_queue");
    g.sample_size(10);
    for queue in [QueueImpl::Wheel, QueueImpl::Heap] {
        g.bench_function(format!("{queue:?}_400").to_lowercase(), |b| {
            b.iter(|| {
                let mut net = scale_family(400, 4).queue(queue).plain().build();
                net.engine.run_until(SimTime(1_000_000));
                let flows = net.scale_flows(4);
                let report = net.run(&Workload::flows(flows, 2, SimDuration::from_millis(400)));
                black_box(report.rx_frames)
            });
        });
    }
    g.finish();
}

/// S1-shaped at full 2k-node scale: the same flooding workload under
/// the single-threaded oracle vs the sharded executor. Both produce
/// byte-identical universes (gated in `tests/determinism.rs`); this
/// pins the wall-clock cost/benefit of the epoch machinery per commit.
fn bench_scale_shards(c: &mut Criterion) {
    use manet_sim::ExecMode;
    let mut g = c.benchmark_group("scale_shards");
    g.sample_size(10);
    for (name, exec) in [
        ("single_2000", ExecMode::Single),
        ("sharded2_2000", ExecMode::Sharded(2)),
        ("sharded8_2000", ExecMode::Sharded(8)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut net = scale_family(2000, 8).exec(exec).plain().build();
                net.engine.run_until(SimTime(1_000_000));
                let flows = net.scale_flows(8);
                let report = net.run(&Workload::flows(flows, 2, SimDuration::from_millis(400)));
                black_box(report.rx_frames)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bootstrap,
    bench_flow,
    bench_grid_bootstrap,
    bench_scale_channel,
    bench_scale_queue,
    bench_scale_shards
);
criterion_main!(benches);
