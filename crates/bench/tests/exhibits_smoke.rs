//! Smoke coverage for the exhibit harness: every ID in
//! [`manet_bench::EXHIBITS`] must render in quick mode. Without this,
//! `cargo test` never executes the harness and a broken exhibit only
//! surfaces when someone runs the `tables` binary by hand.

use manet_bench::{render, EXHIBITS};

#[test]
fn every_exhibit_renders_nonempty_in_quick_mode() {
    for id in EXHIBITS {
        // S3 is a 100k-node run: minutes in release, unusable under a
        // debug build. Debug `cargo test` still covers its machinery
        // (streaming stats, section writer, jsonscan round-trip) via
        // the scale_exhibits unit tests; the full cell renders in the
        // release-mode CI smoke step and the perf gate.
        if *id == "s3" && cfg!(debug_assertions) {
            continue;
        }
        let out = render(id, true).unwrap_or_else(|| panic!("exhibit {id} unknown to render()"));
        assert!(
            out.trim().len() > 40,
            "exhibit {id} rendered suspiciously little output: {out:?}"
        );
        assert!(
            !out.contains("NaN"),
            "exhibit {id} rendered NaN cells:\n{out}"
        );
    }
}

#[test]
fn unknown_exhibit_id_is_none() {
    assert!(render("nope", true).is_none());
    assert!(render("", true).is_none());
}

#[test]
fn exhibit_ids_are_unique() {
    let mut ids: Vec<&str> = EXHIBITS.to_vec();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), EXHIBITS.len(), "duplicate exhibit id");
}
