//! Minimal fixed-width table rendering for the exhibit binary.

/// A titled table accumulated row by row.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal + formatted cells.
    pub fn rowv(&mut self, cells: Vec<String>) -> &mut Self {
        self.row(&cells)
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "23".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("note: a note"));
        let lines: Vec<_> = s.lines().collect();
        // Header + separator + 2 rows + note + title.
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
