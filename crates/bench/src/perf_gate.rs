//! The CI perf-regression gate: `tables -- --check-perf`.
//!
//! Re-runs the quick-mode S1 (2k, grid), S2 (10k, plain) and S3 (100k,
//! plain, streaming stats) cells and compares their **engine**
//! events/sec — lifetime events over wall time spent inside
//! `Engine::run_until`, so scenario construction, flow picking, and key
//! generation don't pollute the signal — against the committed baseline
//! in `bench/baselines/BENCH_scale.baseline.json`. A fresh rate more
//! than `tolerance` below baseline fails the check (exit 1 from the
//! binary); wall-clock noise that doesn't change the event count only
//! moves this metric through genuine hot-path time.
//!
//! S3 additionally gates **peak RSS** (`VmHWM` after the 100k cell, the
//! biggest thing this process ever builds) with the comparison
//! *inverted*: a fresh peak more than `tolerance` *above* baseline
//! fails. That is the memory-diet ratchet — an accidental per-node
//! `Vec` or un-interned map shows up here long before it OOMs CI.
//!
//! S1's quick cell is short, so its rate is taken best-of-two; S2 and
//! S3 run several wall-seconds and are stable as single samples.
//!
//! Knobs (environment):
//! * `PERF_BASELINE_JSON` — baseline path override (tests use this);
//! * `PERF_TOLERANCE` — allowed fractional regression, default `0.25`.
//!   CI runners with different silicon than the baseline machine can
//!   widen it instead of rebaselining on every hardware change.
//!
//! `tables -- --write-baseline` regenerates the baseline file from
//! fresh runs on the current machine.

use crate::jsonscan::read_number;
use crate::scale_exhibits::{run_s2_plain, run_s2_secure_scale, run_s3, s1_quick_report};
use crate::table::Table;

pub const DEFAULT_BASELINE_PATH: &str = "bench/baselines/BENCH_scale.baseline.json";
const DEFAULT_TOLERANCE: f64 = 0.25;

pub fn baseline_path() -> String {
    std::env::var("PERF_BASELINE_JSON").unwrap_or_else(|_| DEFAULT_BASELINE_PATH.to_string())
}

/// Resolve the allowed fractional regression from a raw
/// `PERF_TOLERANCE` value. Unset means the default; anything set must
/// be a finite non-negative number — a misconfigured CI gate should
/// fail loudly, not silently run at the default tolerance.
fn parse_tolerance(raw: Option<String>) -> Result<f64, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_TOLERANCE);
    };
    let v: f64 = raw.trim().parse().map_err(|_| {
        format!("PERF_TOLERANCE={raw:?} is not a number (want a fraction like 0.25)")
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "PERF_TOLERANCE={raw:?} must be a finite non-negative fraction (e.g. 0.25)"
        ));
    }
    Ok(v)
}

/// Fresh quick-mode measurements: S1 single (best-of-two), S1 sharded
/// (best-of-two, 8 bands), S2 single, S3 single plus its peak RSS.
struct FreshCells {
    s1: f64,
    s1_sharded: f64,
    s2: f64,
    /// The secure-mode cell: the quick S2 secure-scale run (1k hosts,
    /// RSA, batch drain on) — storm plus signed route discovery, so a
    /// regression anywhere in the identity/verify/batch pipeline lands
    /// here.
    s2_secure: f64,
    s3: f64,
    /// `VmHWM` sampled after the S3 run — the 100k scenario dwarfs the
    /// earlier cells, so the process-lifetime peak is S3's. `None` off
    /// Linux.
    s3_peak_rss: Option<u64>,
}

fn fresh_cells() -> FreshCells {
    use manet_sim::ExecMode;
    let s1 = s1_quick_report(ExecMode::Single)
        .events_per_sec_engine
        .max(s1_quick_report(ExecMode::Single).events_per_sec_engine);
    let s1_sharded = s1_quick_report(ExecMode::Sharded(8))
        .events_per_sec_engine
        .max(s1_quick_report(ExecMode::Sharded(8)).events_per_sec_engine);
    let s2 = run_s2_plain(ExecMode::Single, true, 1).events_per_sec_engine;
    let s2_secure = run_s2_secure_scale(true, true, 1)
        .report
        .events_per_sec_engine;
    // S3 runs last: its peak-RSS sample must not be inflated by a
    // later, larger allocation (nothing after it is larger).
    let s3_report = run_s3(ExecMode::Single, true, 1);
    FreshCells {
        s1,
        s1_sharded,
        s2,
        s2_secure,
        s3: s3_report.events_per_sec_engine,
        s3_peak_rss: s3_report.peak_rss_bytes,
    }
}

/// Run the check. Returns the rendered report and whether it passed.
pub fn check(path: &str) -> (String, bool) {
    let tol = match parse_tolerance(std::env::var("PERF_TOLERANCE").ok()) {
        Ok(t) => t,
        Err(e) => return (format!("perf gate: {e}"), false),
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return (
            format!(
                "perf gate: no baseline at {path} — run `tables -- --write-baseline` and commit it"
            ),
            false,
        );
    };
    let (Some(base_s1), Some(base_s1_sharded), Some(base_s2), Some(base_s2_secure), Some(base_s3)) = (
        read_number(&text, "s1_events_per_sec_engine"),
        read_number(&text, "s1_sharded_events_per_sec_engine"),
        read_number(&text, "s2_events_per_sec_engine"),
        read_number(&text, "s2_secure_events_per_sec_engine"),
        read_number(&text, "s3_events_per_sec_engine"),
    ) else {
        return (format!("perf gate: baseline at {path} is malformed"), false);
    };
    // `null` (baseline written off-Linux) reads back as NaN: present
    // but unusable, so the RSS row is skipped rather than failed.
    let base_s3_rss = read_number(&text, "s3_peak_rss_bytes");
    let fresh = fresh_cells();

    let mut pass = true;
    let mut t = Table::new(
        format!(
            "perf gate — engine events/sec (−{:.0}%) and S3 peak RSS (+{:.0}%) vs baseline",
            tol * 100.0,
            tol * 100.0
        ),
        &["cell", "baseline", "fresh", "ratio", "verdict"],
    );
    for (cell, base, fresh_v) in [
        ("S1 (2k grid)", base_s1, fresh.s1),
        ("S1 (2k sharded:8)", base_s1_sharded, fresh.s1_sharded),
        ("S2 (10k plain)", base_s2, fresh.s2),
        ("S2 secure (1k batched)", base_s2_secure, fresh.s2_secure),
        ("S3 (100k streaming)", base_s3, fresh.s3),
    ] {
        let ratio = fresh_v / base;
        let ok = ratio >= 1.0 - tol;
        pass &= ok;
        t.rowv(vec![
            cell.to_string(),
            format!("{base:.0}"),
            format!("{fresh_v:.0}"),
            format!("{ratio:.2}×"),
            if ok {
                "ok".to_string()
            } else {
                format!("REGRESSION (>{:.0}% below baseline)", tol * 100.0)
            },
        ]);
    }
    // The memory cell: more is worse, so the comparison inverts.
    match (base_s3_rss.filter(|v| v.is_finite()), fresh.s3_peak_rss) {
        (Some(base), Some(rss)) => {
            let rss = rss as f64;
            let ratio = rss / base;
            let ok = ratio <= 1.0 + tol;
            pass &= ok;
            t.rowv(vec![
                "S3 peak RSS".to_string(),
                format!("{:.0} MiB", base / (1024.0 * 1024.0)),
                format!("{:.0} MiB", rss / (1024.0 * 1024.0)),
                format!("{ratio:.2}×"),
                if ok {
                    "ok".to_string()
                } else {
                    format!("REGRESSION (>{:.0}% above baseline)", tol * 100.0)
                },
            ]);
        }
        (None, _) => {
            t.note("S3 peak RSS: no usable baseline value — memory cell skipped");
        }
        (_, None) => {
            t.note("S3 peak RSS: unavailable on this platform — memory cell skipped");
        }
    }
    if fresh.s1 > base_s1 * (1.0 + tol) && fresh.s2 > base_s2 * (1.0 + tol) {
        t.note("cells beat baseline by more than the tolerance — consider `--write-baseline` to ratchet");
    }
    t.note(format!("baseline: {path}"));
    (t.render(), pass)
}

/// Regenerate the baseline file from fresh runs on this machine.
pub fn write_baseline(path: &str) -> std::io::Result<String> {
    let fresh = fresh_cells();
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let rss = fresh
        .s3_peak_rss
        .map_or_else(|| "null".to_string(), |u| u.to_string());
    let body = format!(
        concat!(
            "{{\n",
            "  \"comment\": \"engine events/sec + S3 peak-RSS baselines for `tables -- --check-perf` (quick-mode S1 grid single+sharded, S2 plain, S2 secure batched, S3 streaming cells; regenerate with `tables -- --write-baseline` when the hot path or memory layout legitimately changes, or CI hardware does)\",\n",
            "  \"quick\": true,\n",
            "  \"s1_events_per_sec_engine\": {:.0},\n",
            "  \"s1_sharded_events_per_sec_engine\": {:.0},\n",
            "  \"s2_events_per_sec_engine\": {:.0},\n",
            "  \"s2_secure_events_per_sec_engine\": {:.0},\n",
            "  \"s3_events_per_sec_engine\": {:.0},\n",
            "  \"s3_peak_rss_bytes\": {}\n",
            "}}\n"
        ),
        fresh.s1, fresh.s1_sharded, fresh.s2, fresh.s2_secure, fresh.s3, rss
    );
    std::fs::write(path, &body)?;
    Ok(format!(
        "wrote {path}: s1 {:.0} ev/s, s1 sharded {:.0} ev/s, s2 {:.0} ev/s, s2 secure {:.0} ev/s, s3 {:.0} ev/s, s3 peak rss {rss} B",
        fresh.s1, fresh.s1_sharded, fresh.s2, fresh.s2_secure, fresh.s3
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_numbers_parse_from_our_own_format() {
        let text = "{\n  \"comment\": \"x\",\n  \"quick\": true,\n  \"s1_events_per_sec_engine\": 2500000,\n  \"s1_sharded_events_per_sec_engine\": 2400000,\n  \"s2_events_per_sec_engine\": 1400000,\n  \"s2_secure_events_per_sec_engine\": 450000,\n  \"s3_events_per_sec_engine\": 1300000,\n  \"s3_peak_rss_bytes\": 900000000\n}\n";
        assert_eq!(
            read_number(text, "s1_events_per_sec_engine"),
            Some(2_500_000.0)
        );
        assert_eq!(
            read_number(text, "s1_sharded_events_per_sec_engine"),
            Some(2_400_000.0)
        );
        assert_eq!(
            read_number(text, "s2_events_per_sec_engine"),
            Some(1_400_000.0)
        );
        assert_eq!(
            read_number(text, "s2_secure_events_per_sec_engine"),
            Some(450_000.0)
        );
        assert_eq!(
            read_number(text, "s3_events_per_sec_engine"),
            Some(1_300_000.0)
        );
        assert_eq!(read_number(text, "s3_peak_rss_bytes"), Some(900_000_000.0));
    }

    #[test]
    fn null_rss_baseline_reads_as_nan_and_skips_the_memory_cell() {
        // An off-Linux `--write-baseline` spells the RSS cell null; the
        // gate must treat it as absent, not compare against NaN.
        let text = "{\"s3_peak_rss_bytes\": null}";
        let v = read_number(text, "s3_peak_rss_bytes").expect("present");
        assert!(v.is_nan());
        assert_eq!(v.is_finite().then_some(v), None, "NaN must filter out");
    }

    #[test]
    fn tolerance_accepts_valid_values_and_defaults_when_unset() {
        assert_eq!(parse_tolerance(None), Ok(DEFAULT_TOLERANCE));
        assert_eq!(parse_tolerance(Some("0.1".into())), Ok(0.1));
        assert_eq!(parse_tolerance(Some(" 0.5 ".into())), Ok(0.5));
        assert_eq!(parse_tolerance(Some("0".into())), Ok(0.0));
    }

    #[test]
    fn tolerance_rejects_garbage_instead_of_masking_it() {
        for bad in ["25%", "lots", "", "-0.1", "NaN", "inf"] {
            let r = parse_tolerance(Some(bad.into()));
            assert!(r.is_err(), "{bad:?} must be rejected, got {r:?}");
            assert!(
                r.unwrap_err().contains("PERF_TOLERANCE"),
                "error must name the knob"
            );
        }
    }

    #[test]
    fn missing_baseline_fails_with_instructions() {
        let (msg, pass) = check("/nonexistent/baseline.json");
        assert!(!pass);
        assert!(msg.contains("--write-baseline"), "{msg}");
    }

    #[test]
    fn malformed_baseline_fails() {
        let dir = std::env::temp_dir().join("perf_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"quick\": true}").unwrap();
        let (msg, pass) = check(path.to_str().unwrap());
        assert!(!pass);
        assert!(msg.contains("malformed"), "{msg}");
    }

    #[test]
    fn pre_s3_baseline_is_rejected_as_malformed() {
        // A baseline from before the memory diet lacks the s3 keys; the
        // gate must demand a rebaseline instead of silently passing.
        let dir = std::env::temp_dir().join("perf_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        std::fs::write(
            &path,
            "{\n  \"quick\": true,\n  \"s1_events_per_sec_engine\": 1,\n  \"s1_sharded_events_per_sec_engine\": 1,\n  \"s2_events_per_sec_engine\": 1\n}\n",
        )
        .unwrap();
        let (msg, pass) = check(path.to_str().unwrap());
        assert!(!pass);
        assert!(msg.contains("malformed"), "{msg}");
    }

    #[test]
    fn pre_secure_baseline_is_rejected_as_malformed() {
        // A baseline from before the secure cell lacks its key; the
        // stale file must force a rebaseline, not skip the new gate.
        let dir = std::env::temp_dir().join("perf_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pre_secure.json");
        std::fs::write(
            &path,
            "{\n  \"quick\": true,\n  \"s1_events_per_sec_engine\": 1,\n  \"s1_sharded_events_per_sec_engine\": 1,\n  \"s2_events_per_sec_engine\": 1,\n  \"s3_events_per_sec_engine\": 1,\n  \"s3_peak_rss_bytes\": 1\n}\n",
        )
        .unwrap();
        let (msg, pass) = check(path.to_str().unwrap());
        assert!(!pass);
        assert!(msg.contains("malformed"), "{msg}");
    }
}
