//! S1 — the scale exhibit: a 2,000-node plain-DSR network (bootstrap
//! route discovery + traffic under mobility and node-failure churn) run
//! under both channel implementations.
//!
//! This scenario was impractical before the spatial-index channel: with
//! the linear receiver scan every flood is O(n²). The exhibit reports
//! the wall-clock ratio and writes a machine-readable
//! `BENCH_scale.json` (nodes/sec, events/sec per channel) so the perf
//! trajectory is recorded run over run; CI uploads it as an artifact.
//!
//! It doubles as a coarse differential gate: the two runs must agree on
//! every simulation observable (the determinism invariant — candidates
//! visited in ascending NodeId order — makes them bit-identical), and
//! the exhibit panics if they do not.

use crate::table::Table;
use manet_secure::scenario::{build_scale, scale_flows, PlainNetwork, ScaleParams};
use manet_sim::{ChannelMode, SimDuration};
use std::time::Instant;

/// Observables of one S1 run plus its wall-clock cost.
struct ScaleRun {
    wall_s: f64,
    sim_s: f64,
    events: u64,
    delivery: f64,
    mean_degree: f64,
    rx_frames: u64,
    tx_bytes: u64,
    killed: u64,
    /// Crypto-pipeline totals (engine-wide `sec.verify_*` counters).
    /// Zero for the plain-DSR S1 population — recorded so the perf
    /// trajectory picks the numbers up the moment a secure contingent
    /// joins the scale family.
    verify_rsa: u64,
    verify_cached: u64,
}

fn run_s1(channel: ChannelMode, quick: bool, seed: u64) -> ScaleRun {
    let params = ScaleParams {
        channel,
        ..ScaleParams::s1(seed)
    };
    let (n_flows, packets) = if quick { (10, 3) } else { (16, 8) };

    let t0 = Instant::now();
    let mut net: PlainNetwork = build_scale(&params);
    // Formation beat: mobility starts ticking, churn kills are queued.
    net.engine.run_until(manet_sim::SimTime(2_000_000));
    let flows = scale_flows(&mut net, n_flows);
    net.run_flows(&flows, packets, SimDuration::from_millis(400));
    let wall_s = t0.elapsed().as_secs_f64();

    let m = net.engine.metrics();
    ScaleRun {
        wall_s,
        sim_s: net.engine.now().as_secs_f64(),
        events: net.engine.events_processed(),
        delivery: net.delivery_ratio(),
        mean_degree: net.mean_degree(),
        rx_frames: m.counter("phy.rx_frames"),
        tx_bytes: m.counter("ctl.tx_bytes"),
        killed: m.counter("sim.nodes_killed"),
        verify_rsa: m.counter("sec.verify_rsa"),
        verify_cached: m.counter("sec.verify_cached"),
    }
}

/// Wall seconds of one quick-or-full S1 run under the grid channel —
/// the V1 exhibit re-times it to show the node-stack refactor left the
/// scale workload's cost unchanged.
pub(crate) fn s1_grid_wall(quick: bool) -> f64 {
    run_s1(ChannelMode::Grid, quick, 1).wall_s
}

/// S1: 2,000-node scale run, grid vs linear channel.
pub fn exhibit_s1(quick: bool) -> String {
    let seed = 1;
    let n = ScaleParams::s1(seed).n_hosts;
    let grid = run_s1(ChannelMode::Grid, quick, seed);
    let linear = run_s1(ChannelMode::Linear, quick, seed);

    // Differential gate: same seed ⇒ identical simulation universe.
    assert_eq!(
        (grid.events, grid.rx_frames, grid.tx_bytes, grid.killed),
        (
            linear.events,
            linear.rx_frames,
            linear.tx_bytes,
            linear.killed
        ),
        "grid and linear channels diverged — determinism invariant broken"
    );

    let ratio = linear.wall_s / grid.wall_s;
    let mut t = Table::new(
        format!(
            "S1 — scale: {n} plain-DSR nodes, mobility + churn ({} flows)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "channel",
            "wall (s)",
            "events",
            "events/s",
            "node-sim-s/s",
            "delivery",
            "mean degree",
        ],
    );
    for (name, r) in [("grid", &grid), ("linear", &linear)] {
        t.rowv(vec![
            name.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events as f64 / r.wall_s),
            format!("{:.0}", n as f64 * r.sim_s / r.wall_s),
            format!("{:.3}", r.delivery),
            format!("{:.1}", r.mean_degree),
        ]);
    }
    t.note(format!(
        "identical observables under both channels (differential gate); linear/grid wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "{} of {} nodes killed mid-run; flows chosen inside the largest radio component",
        grid.killed, n
    ));

    if let Err(e) = write_scale_json(n, quick, &grid, &linear, ratio) {
        t.note(format!("BENCH_scale.json not written: {e}"));
    } else {
        t.note(format!("wrote {}", scale_json_path()));
    }
    t.render()
}

fn scale_json_path() -> String {
    std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string())
}

fn write_scale_json(
    n: usize,
    quick: bool,
    grid: &ScaleRun,
    linear: &ScaleRun,
    ratio: f64,
) -> std::io::Result<()> {
    let channel_json = |r: &ScaleRun| {
        format!(
            concat!(
                "{{\"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, ",
                "\"node_sim_secs_per_sec\": {:.0}}}"
            ),
            r.wall_s,
            r.events,
            r.events as f64 / r.wall_s,
            n as f64 * r.sim_s / r.wall_s,
        )
    };
    // Crypto counters of the grid run: total verification demand and the
    // cache hit rate (null until the scale family runs secure nodes).
    let demand = grid.verify_rsa + grid.verify_cached;
    let hit_rate = if demand > 0 {
        format!("{:.4}", grid.verify_cached as f64 / demand as f64)
    } else {
        "null".to_string()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"exhibit\": \"s1\",\n",
            "  \"quick\": {},\n",
            "  \"n_hosts\": {},\n",
            "  \"sim_secs\": {:.1},\n",
            "  \"delivery_ratio\": {:.4},\n",
            "  \"mean_degree\": {:.2},\n",
            "  \"grid\": {},\n",
            "  \"linear\": {},\n",
            "  \"linear_over_grid_wall_ratio\": {:.3},\n",
            "  \"crypto\": {{\"total_verifications\": {}, \"cached\": {}, \"cache_hit_rate\": {}}}\n",
            "}}\n"
        ),
        quick,
        n,
        grid.sim_s,
        grid.delivery,
        grid.mean_degree,
        channel_json(grid),
        channel_json(linear),
        ratio,
        demand,
        grid.verify_cached,
        hit_rate,
    );
    std::fs::write(scale_json_path(), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full S1 is exercised by the exhibit smoke test; here just the
    /// shape helpers.
    #[test]
    fn s1_params_hit_target_density() {
        let p = ScaleParams::s1(1);
        assert_eq!(p.n_hosts, 2000);
        // A = n·πr²/deg ⇒ expected degree back out of the chosen field.
        let deg =
            p.n_hosts as f64 * std::f64::consts::PI * p.radio.range * p.radio.range
                / (p.field.width * p.field.height);
        assert!((deg - 15.0).abs() < 0.5, "expected degree ~15, got {deg}");
    }
}
