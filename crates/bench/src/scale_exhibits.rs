//! S1 — the scale exhibit: a 2,000-node plain-DSR network (bootstrap
//! route discovery + traffic under mobility and node-failure churn) run
//! under both channel implementations.
//!
//! This scenario was impractical before the spatial-index channel: with
//! the linear receiver scan every flood is O(n²). The exhibit reports
//! the wall-clock ratio and writes a machine-readable
//! `BENCH_scale.json` (one serialized [`RunReport`] per channel) so the
//! perf trajectory is recorded run over run; CI uploads it as an
//! artifact.
//!
//! It doubles as a coarse differential gate: the two runs must agree on
//! every machine-independent report field (the determinism invariant —
//! candidates visited in ascending NodeId order — makes them
//! bit-identical), and the exhibit panics if they do not.

use crate::table::Table;
use manet_secure::scenario::{scale_family, RunReport, Workload};
use manet_sim::{ChannelMode, SimDuration, SimTime};
use std::time::Instant;

/// The S1 population size. The shape itself (uniform placement at
/// expected degree ~15, slow random waypoint, 2% churn) is the shared
/// [`scale_family`] preset, so the exhibit, the Criterion bench, and
/// the smoke tests all measure one scenario. Plain DSR (no RSA, no DAD)
/// keeps per-node cost flat so the channel layer — not key generation —
/// is what's being measured.
const S1_HOSTS: usize = 2000;

/// One S1 run. The returned report's `wall_s` covers the whole cell —
/// construction, formation beat, flow picking, and traffic — since the
/// build cost is part of what the channel layer buys back.
fn run_s1(channel: ChannelMode, quick: bool, seed: u64) -> RunReport {
    let (n_flows, packets) = if quick { (10, 3) } else { (16, 8) };

    let t0 = Instant::now();
    let mut net = scale_family(S1_HOSTS, seed).channel(channel).plain().build();
    // Formation beat: mobility starts ticking, churn kills are queued.
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(flows, packets, SimDuration::from_millis(400)));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// Wall seconds of one quick-or-full S1 run under the grid channel —
/// the V1 exhibit re-times it to show protocol-layer refactors leave the
/// scale workload's cost unchanged.
pub(crate) fn s1_grid_wall(quick: bool) -> f64 {
    run_s1(ChannelMode::Grid, quick, 1).wall_s
}

/// S1: 2,000-node scale run, grid vs linear channel.
pub fn exhibit_s1(quick: bool) -> String {
    let seed = 1;
    let n = S1_HOSTS;
    let grid = run_s1(ChannelMode::Grid, quick, seed);
    let linear = run_s1(ChannelMode::Linear, quick, seed);

    // Differential gate: same seed ⇒ identical simulation universe, down
    // to every machine-independent field of the report.
    assert_eq!(
        grid.fingerprint(),
        linear.fingerprint(),
        "grid and linear channels diverged — determinism invariant broken"
    );

    let ratio = linear.wall_s / grid.wall_s;
    let mut t = Table::new(
        format!(
            "S1 — scale: {n} plain-DSR nodes, mobility + churn ({} flows)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "channel",
            "wall (s)",
            "events",
            "events/s",
            "node-sim-s/s",
            "delivery",
            "mean degree",
        ],
    );
    for (name, r) in [("grid", &grid), ("linear", &linear)] {
        t.rowv(vec![
            name.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", n as f64 * r.sim_s / r.wall_s),
            format!("{:.3}", r.delivery_or_nan()),
            format!("{:.1}", r.mean_degree.unwrap_or(f64::NAN)),
        ]);
    }
    t.note(format!(
        "identical observables under both channels (differential gate); linear/grid wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "{} of {} nodes killed mid-run; flows chosen inside the largest radio component",
        grid.nodes_killed, n
    ));

    if let Err(e) = write_scale_json(n, quick, &grid, &linear, ratio) {
        t.note(format!("BENCH_scale.json not written: {e}"));
    } else {
        t.note(format!("wrote {}", scale_json_path()));
    }
    t.render()
}

fn scale_json_path() -> String {
    std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string())
}

fn write_scale_json(
    n: usize,
    quick: bool,
    grid: &RunReport,
    linear: &RunReport,
    ratio: f64,
) -> std::io::Result<()> {
    // Crypto counters of the grid run: total verification demand and the
    // cache hit rate (null until the scale family runs secure nodes).
    let demand = grid.crypto.demand();
    let hit_rate = if demand > 0 {
        format!("{:.4}", grid.crypto.cached as f64 / demand as f64)
    } else {
        "null".to_string()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"exhibit\": \"s1\",\n",
            "  \"quick\": {},\n",
            "  \"n_hosts\": {},\n",
            "  \"sim_secs\": {:.1},\n",
            "  \"delivery_ratio\": {:.4},\n",
            "  \"mean_degree\": {:.2},\n",
            "  \"grid\": {},\n",
            "  \"linear\": {},\n",
            "  \"linear_over_grid_wall_ratio\": {:.3},\n",
            "  \"crypto\": {{\"total_verifications\": {}, \"cached\": {}, \"cache_hit_rate\": {}}}\n",
            "}}\n"
        ),
        quick,
        n,
        grid.sim_s,
        grid.delivery_or_nan(),
        grid.mean_degree.unwrap_or(f64::NAN),
        grid.to_json(),
        linear.to_json(),
        ratio,
        demand,
        grid.crypto.cached,
        hit_rate,
    );
    std::fs::write(scale_json_path(), json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_secure::scenario::field_for_density;
    use manet_sim::RadioConfig;

    /// The full S1 is exercised by the exhibit smoke test; here just the
    /// shape helpers.
    #[test]
    fn s1_density_sizing_hits_target_degree() {
        let radio = RadioConfig::default();
        let field = field_for_density(S1_HOSTS, radio.range, 15.0);
        // A = n·πr²/deg ⇒ expected degree back out of the chosen field.
        let deg = S1_HOSTS as f64 * std::f64::consts::PI * radio.range * radio.range
            / (field.width * field.height);
        assert!((deg - 15.0).abs() < 0.5, "expected degree ~15, got {deg}");
    }
}
