//! S1 and S2 — the scale exhibits.
//!
//! **S1**: a 2,000-node plain-DSR network (bootstrap route discovery +
//! traffic under mobility and node-failure churn) run under both
//! channel implementations. Impractical before the spatial-index
//! channel (the linear receiver scan makes every flood O(n²)); the
//! exhibit reports the wall-clock ratio and doubles as a coarse
//! channel-differential gate (the two runs must agree on every
//! machine-independent report field, or it panics).
//!
//! **S2**: the timer-wheel-era headline — 10,000 plain-DSR nodes
//! driven through formation, churn, and cross-field flows, plus a
//! secure variant (full CGA/DAD bootstrap storm; 1,000 hosts in full
//! mode, 250 in quick) run under **both queue implementations** as the
//! scale-level wheel-vs-heap differential gate, mirroring how S1 gates
//! grid-vs-linear.
//!
//! **S3**: the memory-diet exhibit — 100,000 plain-DSR nodes in quick
//! mode (1,000,000 in full mode, the stretch cell) with per-node stat
//! detail disabled, so delivery and protocol totals come from the
//! engine's streaming counters. Runs under both executors as a
//! fingerprint gate and records **peak RSS** (`VmHWM`) next to engine
//! events/sec: the number the arena/interning/SoA diet is accountable
//! to, gated by `tables -- --check-perf` against the committed
//! baseline.
//!
//! All three write into one machine-readable `BENCH_scale.json` (an
//! `"s1"`, `"s2"` and `"s3"` section, each exhibit preserving the
//! others' last same-mode records), so the perf trajectory is recorded
//! run over run; CI uploads it as an artifact and `tables --
//! --check-perf` compares the engine events/sec numbers (and S3's peak
//! RSS) against the committed baseline in `bench/baselines/`.

use crate::jsonscan::{extract_object, read_bool};
use crate::table::Table;
use manet_secure::scenario::{scale_family, Placement, RunReport, ScenarioBuilder, Workload};
use manet_secure::ProtocolConfig;
use manet_sim::{ChannelMode, ExecMode, QueueImpl, SimDuration, SimTime};
use std::time::Instant;

/// The S1 population size. The shape itself (uniform placement at
/// expected degree ~15, slow random waypoint, 2% churn) is the shared
/// [`scale_family`] preset, so the exhibit, the Criterion bench, and
/// the smoke tests all measure one scenario. Plain DSR (no RSA, no DAD)
/// keeps per-node cost flat so the channel layer — not key generation —
/// is what's being measured.
const S1_HOSTS: usize = 2000;

/// The S2 population size (same `scale_family` shape, 5× S1).
const S2_HOSTS: usize = 10_000;

/// Hosts in S2's secure variant: a full CGA/DAD bootstrap storm, which
/// scales as O(n² · degree) flood receptions — 1,000 hosts in full
/// mode, scaled down in quick mode like every other exhibit.
fn s2_secure_hosts(quick: bool) -> usize {
    if quick {
        250
    } else {
        1000
    }
}

/// Hosts in S2's secure *scale* cell — the batch-verification headline:
/// the full S2 population (all 10,000 nodes) runs secure in full mode,
/// 1,000 in quick. The cell runs twice, batched and inline, as the
/// at-scale byte-identity gate for deferred batch verification.
fn s2_secure_scale_hosts(quick: bool) -> usize {
    if quick {
        1000
    } else {
        S2_HOSTS
    }
}

/// The S3 population size: 100k in quick mode, the 1M stretch cell in
/// full mode. Same `scale_family` shape as S1/S2 — what changes is the
/// storage regime (per-node stat detail off, aggregate counters only),
/// so the exhibit measures the memory diet, not a different protocol.
fn s3_hosts(quick: bool) -> usize {
    if quick {
        100_000
    } else {
        1_000_000
    }
}

/// Shard count the sharded exhibit cells run: matches the top of the
/// CI matrix, and 8 contiguous field bands keep hundreds of S1 nodes
/// per shard.
const EXHIBIT_SHARDS: usize = 8;

/// One S1 run. The returned report's `wall_s` covers the whole cell —
/// construction, formation beat, flow picking, and traffic — since the
/// build cost is part of what the channel layer buys back.
fn run_s1(channel: ChannelMode, exec: ExecMode, quick: bool, seed: u64) -> RunReport {
    let (n_flows, packets) = if quick { (10, 3) } else { (16, 8) };

    let t0 = Instant::now();
    let mut net = scale_family(S1_HOSTS, seed)
        .channel(channel)
        .exec(exec)
        .plain()
        .build();
    // Formation beat: mobility starts ticking, churn kills are queued.
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// The S2 plain cell: the S1 shape at 10,000 hosts.
pub(crate) fn run_s2_plain(exec: ExecMode, quick: bool, seed: u64) -> RunReport {
    let (n_flows, packets) = if quick { (16, 3) } else { (24, 6) };

    let t0 = Instant::now();
    let mut net = scale_family(S2_HOSTS, seed)
        .channel(ChannelMode::Grid)
        .exec(exec)
        .plain()
        .build();
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// The S2 secure variant: `n` hosts, uniform at expected degree ~12,
/// joining in a 20 ms-staggered storm — full CGA generation, DAD
/// floods, and DNS name commits — then a short converge check. 384-bit
/// keys keep key *generation* (not the hot path under test) from
/// dominating the wall.
fn run_s2_secure(queue: QueueImpl, quick: bool, seed: u64) -> (RunReport, bool) {
    let n = s2_secure_hosts(quick);
    let t0 = Instant::now();
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(12.0)
        .seed(seed)
        .queue(queue)
        .secure_with(ProtocolConfig {
            key_bits: 384,
            ..ProtocolConfig::default()
        })
        .join_stagger(SimDuration::from_millis(20))
        .build();
    let mut report = net.run(&Workload::bootstrap_storm());
    let all_ready = net.all_ready();
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    (report, all_ready)
}

/// Observables of one secure-scale run: the report, whether every host
/// completed DAD, and the network-wide batch-verification counters
/// (zero on the inline side, which owns no batch table).
pub(crate) struct SecureScaleRun {
    pub(crate) report: RunReport,
    pub(crate) all_ready: bool,
    pub(crate) batch_requests: u64,
    pub(crate) batch_executed: u64,
}

/// The S2 secure-scale cell: the bootstrap storm of [`run_s2_secure`]
/// at [`s2_secure_scale_hosts`] hosts **followed by cross-field signed
/// route discovery and data flows** — a clean storm verifies nothing
/// (signature checks live on collisions, RREP/RERR handling, and DNS
/// replies), so the flows phase is where verification load actually
/// exists for batching to amortize. The crypto backend is pinned to RSA
/// (the oracle this cell is accountable to, immune to the
/// `MANET_CRYPTO` knob); deferred batch verification toggles per call.
pub(crate) fn run_s2_secure_scale(batch: bool, quick: bool, seed: u64) -> SecureScaleRun {
    let n = s2_secure_scale_hosts(quick);
    let (n_flows, packets) = if quick { (16, 2) } else { (24, 3) };
    let t0 = Instant::now();
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(12.0)
        .seed(seed)
        // The default 50M runaway cap is sized for ≤10k *plain* nodes,
        // but a secure DAD storm is quadratic by construction: every
        // joiner floods an AREQ over the whole field, ~n² × degree
        // receptions (the quick 1k run processes ~6.9M events, ~0.6 of
        // that bound). Budget to the flood structure with ~2× headroom,
        // never below the default.
        .max_events((n as u64 * n as u64 * 15).max(50_000_000))
        .secure_with(ProtocolConfig {
            key_bits: 384,
            crypto_backend: manet_crypto::BackendKind::Rsa,
            batch_verify: batch,
            ..ProtocolConfig::default()
        })
        .join_stagger(SimDuration::from_millis(20))
        .build();
    net.run(&Workload::bootstrap_storm());
    let all_ready = net.all_ready();
    let flows = net.scale_flows(n_flows);
    // `report.events` is cumulative since build, so the final report
    // fingerprints the storm and the flows phase together.
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    let stats = net.batch.as_ref().map(|b| b.stats()).unwrap_or_default();
    SecureScaleRun {
        report,
        all_ready,
        batch_requests: stats.requests,
        batch_executed: stats.executed,
    }
}

/// The S3 cell: the S1 shape at 100k (quick) or 1M (full) hosts, with
/// per-node stat detail off — delivery and totals are read back from
/// the engine's streaming counters, so report assembly allocates
/// nothing per node. `peak_rss_bytes` in the returned report is the
/// process-lifetime `VmHWM` sampled after the run.
pub(crate) fn run_s3(exec: ExecMode, quick: bool, seed: u64) -> RunReport {
    let n = s3_hosts(quick);
    let (n_flows, packets) = if quick { (16, 2) } else { (24, 3) };

    let t0 = Instant::now();
    let mut net = scale_family(n, seed)
        .channel(ChannelMode::Grid)
        .exec(exec)
        // Room proportional to population: the default 50M runaway cap
        // is sized for ≤10k nodes, and S3's mobility ticks alone pass it.
        .max_events(n as u64 * 20_000)
        .plain()
        .tune(|c| c.per_node_stats = false)
        .build();
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// Wall seconds of one quick-or-full S1 run under the grid channel —
/// the V1 exhibit re-times it to show protocol-layer refactors leave the
/// scale workload's cost unchanged.
pub(crate) fn s1_grid_wall(quick: bool) -> f64 {
    run_s1(ChannelMode::Grid, ExecMode::Single, quick, 1).wall_s
}

/// One fresh quick S1 grid report, for the perf-regression gate.
pub(crate) fn s1_quick_report(exec: ExecMode) -> RunReport {
    run_s1(ChannelMode::Grid, exec, true, 1)
}

/// S1: 2,000-node scale run, grid vs linear channel, single vs sharded
/// executor.
pub fn exhibit_s1(quick: bool) -> String {
    let seed = 1;
    let n = S1_HOSTS;
    let grid = run_s1(ChannelMode::Grid, ExecMode::Single, quick, seed);
    let linear = run_s1(ChannelMode::Linear, ExecMode::Single, quick, seed);
    let sharded = run_s1(
        ChannelMode::Grid,
        ExecMode::Sharded(EXHIBIT_SHARDS),
        quick,
        seed,
    );

    // Differential gates: same seed ⇒ identical simulation universe,
    // down to every machine-independent field of the report — whichever
    // channel indexes receivers and whichever executor runs the loop.
    assert_eq!(
        grid.fingerprint(),
        linear.fingerprint(),
        "grid and linear channels diverged — determinism invariant broken"
    );
    assert_eq!(
        grid.fingerprint(),
        sharded.fingerprint(),
        "sharded and single executors diverged — determinism invariant broken"
    );

    let ratio = linear.wall_s / grid.wall_s;
    let shard_speedup = grid.events_per_sec_engine / sharded.events_per_sec_engine.max(1.0);
    let mut t = Table::new(
        format!(
            "S1 — scale: {n} plain-DSR nodes, mobility + churn ({} flows)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "wall (s)",
            "events",
            "events/s",
            "ev/s engine",
            "delivery",
            "mean degree",
        ],
    );
    for (name, r) in [
        ("grid/single", &grid),
        ("linear/single", &linear),
        ("grid/sharded:8", &sharded),
    ] {
        t.rowv(vec![
            name.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.events_per_sec_engine),
            format!("{:.3}", r.delivery_or_nan()),
            format!("{:.1}", r.mean_degree.unwrap_or(f64::NAN)),
        ]);
    }
    t.note(format!(
        "identical observables under both channels and both executors (differential gates); linear/grid wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "single/sharded engine-rate ratio {shard_speedup:.2}× (sharded:{EXHIBIT_SHARDS} on {} core(s))",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    ));
    t.note(format!(
        "{} of {} nodes killed mid-run; flows chosen inside the largest radio component",
        grid.nodes_killed, n
    ));

    let section = s1_section_json(n, &grid, &linear, &sharded, ratio);
    match write_scale_section(&scale_json_path(), "s1", &section, quick) {
        Err(e) => t.note(format!("BENCH_scale.json not written: {e}")),
        Ok(()) => t.note(format!("wrote {} (s1 section)", scale_json_path())),
    };
    t.render()
}

/// S2: 10,000-node plain run under both executors (the scale-level
/// sharded-vs-single gate) plus the secure bootstrap storm under both
/// queue implementations (the scale-level wheel-vs-heap gate).
pub fn exhibit_s2(quick: bool) -> String {
    let seed = 1;
    let plain = run_s2_plain(ExecMode::Single, quick, seed);
    let plain_sharded = run_s2_plain(ExecMode::Sharded(EXHIBIT_SHARDS), quick, seed);

    let (sec_wheel, ready_wheel) = run_s2_secure(QueueImpl::Wheel, quick, seed);
    let (sec_heap, ready_heap) = run_s2_secure(QueueImpl::Heap, quick, seed);

    let sec_batched = run_s2_secure_scale(true, quick, seed);
    let sec_inline = run_s2_secure_scale(false, quick, seed);

    // Differential gates: the executor and the pending-event store are
    // scheduling machinery, not model changes — the 10k plain run must
    // be one universe under both executors, and the secure storm
    // (timer-heavy DAD, staggered joins, signature checks) one universe
    // under both queues.
    assert_eq!(
        plain.fingerprint(),
        plain_sharded.fingerprint(),
        "sharded and single executors diverged at 10k — determinism invariant broken"
    );
    assert_eq!(
        sec_wheel.fingerprint(),
        sec_heap.fingerprint(),
        "wheel and heap queues diverged — event-order invariant broken"
    );
    assert!(
        ready_wheel && ready_heap,
        "secure storm left hosts unjoined — scenario shape broken"
    );
    // The batch-verification gate at scale: deferring and deduping
    // signature checks across the whole network step must not move one
    // event, byte, or verdict relative to inline verification.
    assert_eq!(
        sec_batched.report.fingerprint(),
        sec_inline.report.fingerprint(),
        "batched and inline verification diverged at scale — batch table is not pure"
    );
    assert!(
        sec_batched.all_ready && sec_inline.all_ready,
        "secure scale storm left hosts unjoined — scenario shape broken"
    );
    assert!(
        sec_batched.batch_executed > 0 && sec_batched.batch_executed < sec_batched.batch_requests,
        "batch verification never amortized: {} executed of {} requested",
        sec_batched.batch_executed,
        sec_batched.batch_requests
    );

    let n_sec = s2_secure_hosts(quick);
    let ratio = sec_heap.wall_s / sec_wheel.wall_s;
    let mut t = Table::new(
        format!(
            "S2 — scale: {S2_HOSTS} plain-DSR nodes + secure {n_sec}-host DAD storm ({} mode)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "queue",
            "wall (s)",
            "events",
            "events/s",
            "ev/s engine",
            "delivery",
        ],
    );
    let delivery_cell = |r: &RunReport| match r.delivery_ratio {
        Some(d) => format!("{d:.3}"),
        None => "—".to_string(), // the storm sends no data traffic
    };
    for (cell, queue, r) in [
        (format!("plain {S2_HOSTS}"), "wheel", &plain),
        (
            format!("plain {S2_HOSTS} sharded:{EXHIBIT_SHARDS}"),
            "wheel",
            &plain_sharded,
        ),
        (format!("secure {n_sec}"), "wheel", &sec_wheel),
        (format!("secure {n_sec}"), "heap", &sec_heap),
        (
            format!("secure {} batched", s2_secure_scale_hosts(quick)),
            "wheel",
            &sec_batched.report,
        ),
        (
            format!("secure {} inline", s2_secure_scale_hosts(quick)),
            "wheel",
            &sec_inline.report,
        ),
    ] {
        t.rowv(vec![
            cell,
            queue.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.events_per_sec_engine),
            delivery_cell(r),
        ]);
    }
    t.note(format!(
        "identical secure universes under both queues (differential gate); heap/wheel wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "plain cell: {} of {} killed mid-run, mean degree {:.1}; secure cell: all {} hosts completed DAD",
        plain.nodes_killed,
        S2_HOSTS,
        plain.mean_degree.unwrap_or(f64::NAN),
        n_sec,
    ));
    let n_scale = s2_secure_scale_hosts(quick);
    let amortization =
        sec_batched.batch_requests as f64 / (sec_batched.batch_executed.max(1)) as f64;
    t.note(format!(
        "secure scale cell ({n_scale} hosts, RSA): identical universes batched and inline \
         (differential gate); batch amortization {amortization:.2}× \
         ({} requests, {} executed), wall {:.2}s batched vs {:.2}s inline",
        sec_batched.batch_requests,
        sec_batched.batch_executed,
        sec_batched.report.wall_s,
        sec_inline.report.wall_s,
    ));

    let section = s2_section_json(
        n_sec,
        &plain,
        &plain_sharded,
        &sec_wheel,
        &sec_heap,
        ratio,
        &sec_batched,
        &sec_inline,
        n_scale,
    );
    match write_scale_section(&scale_json_path(), "s2", &section, quick) {
        Err(e) => t.note(format!("BENCH_scale.json not written: {e}")),
        Ok(()) => t.note(format!("wrote {} (s2 section)", scale_json_path())),
    };
    t.render()
}

/// S3: the memory-diet run — 100k (quick) / 1M (full) plain-DSR nodes
/// with per-node stat detail off, under both executors, reporting peak
/// RSS next to throughput.
pub fn exhibit_s3(quick: bool) -> String {
    let seed = 1;
    let n = s3_hosts(quick);
    let single = run_s3(ExecMode::Single, quick, seed);
    let sharded = run_s3(ExecMode::Sharded(EXHIBIT_SHARDS), quick, seed);

    // Differential gate: aggregate-counter reports under both executors
    // must describe one universe, down to the counter-derived totals.
    assert_eq!(
        single.fingerprint(),
        sharded.fingerprint(),
        "sharded and single executors diverged at {n} — determinism invariant broken"
    );

    let mib = |b: Option<u64>| match b {
        Some(b) => format!("{:.0}", b as f64 / (1024.0 * 1024.0)),
        None => "—".to_string(),
    };
    let per_node = |b: Option<u64>| match b {
        Some(b) => format!("{:.0}", b as f64 / n as f64),
        None => "—".to_string(),
    };
    let mut t = Table::new(
        format!(
            "S3 — memory diet: {n} plain-DSR nodes, streaming stats ({} mode)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "wall (s)",
            "events",
            "events/s",
            "ev/s engine",
            "delivery",
            "peak RSS (MiB)",
            "bytes/node",
        ],
    );
    for (name, r) in [("single", &single), ("sharded:8", &sharded)] {
        t.rowv(vec![
            name.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.events_per_sec_engine),
            format!("{:.3}", r.delivery_or_nan()),
            mib(r.peak_rss_bytes),
            per_node(r.peak_rss_bytes),
        ]);
    }
    t.note(
        "per-node stat detail off: delivery and totals come from the engine's \
         streaming counters (identical fingerprint to the detailed path — gated in tests)",
    );
    t.note(
        "peak RSS is the process-lifetime VmHWM: the sharded cell's sample includes \
         the single cell's footprint, so the first cell is the diet's headline",
    );
    t.note(format!(
        "{} of {} nodes killed mid-run; flows chosen inside the largest radio component",
        single.nodes_killed, n
    ));

    let section = s3_section_json(n, &single, &sharded);
    match write_scale_section(&scale_json_path(), "s3", &section, quick) {
        Err(e) => t.note(format!("BENCH_scale.json not written: {e}")),
        Ok(()) => t.note(format!("wrote {} (s3 section)", scale_json_path())),
    };
    t.render()
}

fn scale_json_path() -> String {
    std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string())
}

fn s1_section_json(
    n: usize,
    grid: &RunReport,
    linear: &RunReport,
    sharded: &RunReport,
    ratio: f64,
) -> String {
    // Crypto counters of the grid run: total verification demand and the
    // cache hit rate (null until the scale family runs secure nodes).
    let demand = grid.crypto.demand();
    let hit_rate = if demand > 0 {
        format!("{:.4}", grid.crypto.cached as f64 / demand as f64)
    } else {
        "null".to_string()
    };
    format!(
        concat!(
            "{{\n",
            "    \"n_hosts\": {},\n",
            "    \"sim_secs\": {:.1},\n",
            "    \"delivery_ratio\": {:.4},\n",
            "    \"mean_degree\": {:.2},\n",
            "    \"grid\": {},\n",
            "    \"linear\": {},\n",
            "    \"sharded\": {},\n",
            "    \"linear_over_grid_wall_ratio\": {:.3},\n",
            "    \"crypto\": {{\"total_verifications\": {}, \"cached\": {}, \"cache_hit_rate\": {}}}\n",
            "  }}"
        ),
        n,
        grid.sim_s,
        grid.delivery_or_nan(),
        grid.mean_degree.unwrap_or(f64::NAN),
        grid.to_json(),
        linear.to_json(),
        sharded.to_json(),
        ratio,
        demand,
        grid.crypto.cached,
        hit_rate,
    )
}

#[allow(clippy::too_many_arguments)]
fn s2_section_json(
    n_sec: usize,
    plain: &RunReport,
    plain_sharded: &RunReport,
    sec_wheel: &RunReport,
    sec_heap: &RunReport,
    heap_over_wheel: f64,
    sec_batched: &SecureScaleRun,
    sec_inline: &SecureScaleRun,
    n_scale: usize,
) -> String {
    let amortization =
        sec_batched.batch_requests as f64 / (sec_batched.batch_executed.max(1)) as f64;
    format!(
        concat!(
            "{{\n",
            "    \"n_hosts\": {},\n",
            "    \"plain\": {},\n",
            "    \"plain_sharded\": {},\n",
            "    \"secure_hosts\": {},\n",
            "    \"secure\": {},\n",
            "    \"secure_heap\": {},\n",
            "    \"heap_over_wheel_wall_ratio\": {:.3},\n",
            "    \"secure_scale_hosts\": {},\n",
            "    \"secure_scale\": {},\n",
            "    \"secure_scale_inline\": {},\n",
            "    \"batch\": {{\"requests\": {}, \"executed\": {}, \"amortization_ratio\": {:.3}}}\n",
            "  }}"
        ),
        S2_HOSTS,
        plain.to_json(),
        plain_sharded.to_json(),
        n_sec,
        sec_wheel.to_json(),
        sec_heap.to_json(),
        heap_over_wheel,
        n_scale,
        sec_batched.report.to_json(),
        sec_inline.report.to_json(),
        sec_batched.batch_requests,
        sec_batched.batch_executed,
        amortization,
    )
}

fn s3_section_json(n: usize, single: &RunReport, sharded: &RunReport) -> String {
    // Section-level peak RSS: the later (sharded) sample is the
    // process max over both cells — the number the perf gate tracks.
    let rss = sharded
        .peak_rss_bytes
        .or(single.peak_rss_bytes)
        .map_or_else(|| "null".to_string(), |u| u.to_string());
    format!(
        concat!(
            "{{\n",
            "    \"n_hosts\": {},\n",
            "    \"per_node_stats\": false,\n",
            "    \"single\": {},\n",
            "    \"sharded\": {},\n",
            "    \"peak_rss_bytes\": {}\n",
            "  }}"
        ),
        n,
        single.to_json(),
        sharded.to_json(),
        rss,
    )
}

/// Every section key of `BENCH_scale.json`, in serialization order.
/// Readers address sections by key (the V1 exhibit extracts the `s1`
/// object, then its `grid`), so the order is presentation, not contract.
const SCALE_KEYS: [&str; 3] = ["s1", "s2", "s3"];

/// Write one exhibit's section into the scale JSON at `path`,
/// preserving the other exhibits' last records when they were produced
/// in the same mode (quick and full are different workloads; their
/// numbers must not cohabit one file).
fn write_scale_section(path: &str, key: &str, section: &str, quick: bool) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let same_mode = read_bool(&existing, "quick") == Some(quick);
    let mut body = format!("{{\n  \"quick\": {quick}");
    for k in SCALE_KEYS {
        let v = if k == key {
            Some(section.to_string())
        } else if same_mode {
            extract_object(&existing, k)
        } else {
            None
        };
        if let Some(v) = v {
            body.push_str(&format!(",\n  \"{k}\": {v}"));
        }
    }
    body.push_str("\n}\n");
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_secure::scenario::field_for_density;
    use manet_sim::RadioConfig;

    /// The full S1 is exercised by the exhibit smoke test; here just the
    /// shape helpers.
    #[test]
    fn s1_density_sizing_hits_target_degree() {
        let radio = RadioConfig::default();
        let field = field_for_density(S1_HOSTS, radio.range, 15.0);
        // A = n·πr²/deg ⇒ expected degree back out of the chosen field.
        let deg = S1_HOSTS as f64 * std::f64::consts::PI * radio.range * radio.range
            / (field.width * field.height);
        assert!((deg - 15.0).abs() < 0.5, "expected degree ~15, got {deg}");
    }

    #[test]
    fn sections_merge_and_survive_rewrites() {
        let dir = std::env::temp_dir().join("scale_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pathbuf = dir.join("BENCH_scale.json");
        let _ = std::fs::remove_file(&pathbuf);
        let path = pathbuf.to_str().unwrap();

        write_scale_section(path, "s1", "{\"v\": 1}", true).unwrap();
        write_scale_section(path, "s2", "{\"w\": 2}", true).unwrap();
        write_scale_section(path, "s3", "{\"m\": 7}", true).unwrap();
        // Re-writing s1 must keep the s2 and s3 records.
        write_scale_section(path, "s1", "{\"v\": 3}", true).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(extract_object(&text, "s1").as_deref(), Some("{\"v\": 3}"));
        assert_eq!(extract_object(&text, "s2").as_deref(), Some("{\"w\": 2}"));
        assert_eq!(extract_object(&text, "s3").as_deref(), Some("{\"m\": 7}"));
        let s1_at = text.find("\"s1\"").unwrap();
        let s2_at = text.find("\"s2\"").unwrap();
        let s3_at = text.find("\"s3\"").unwrap();
        assert!(
            s1_at < s2_at && s2_at < s3_at,
            "sections should serialize in S1, S2, S3 presentation order"
        );

        // A mode switch drops the stale other-mode sections.
        write_scale_section(path, "s2", "{\"w\": 9}", false).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(extract_object(&text, "s1"), None);
        assert_eq!(extract_object(&text, "s3"), None);
        assert!(text.contains("\"quick\": false"));
    }

    #[test]
    fn s3_section_round_trips_through_jsonscan() {
        use crate::jsonscan::read_number;
        // The perf gate and CI smoke both read the s3 section back with
        // the naive scanners; pin that a real section parses.
        let mut net = ScenarioBuilder::new()
            .hosts(3)
            .seed(7)
            .plain()
            .tune(|c| c.per_node_stats = false)
            .build();
        let single = net.run(&Workload::flows(
            vec![(0, 2)],
            2,
            SimDuration::from_millis(200),
        ));
        let section = s3_section_json(3, &single, &single);
        let doc = format!("{{\n  \"quick\": true,\n  \"s3\": {section}\n}}\n");
        let s3 = extract_object(&doc, "s3").expect("s3 section extracts");
        assert_eq!(read_number(&s3, "n_hosts"), Some(3.0));
        let sub = extract_object(&s3, "single").expect("report extracts");
        assert_eq!(read_number(&sub, "events"), Some(single.events as f64));
        // On Linux the section-level RSS is a positive number; elsewhere
        // the writer spells null, which reads back as present-but-NaN.
        let rss = read_number(&s3, "peak_rss_bytes").expect("rss key present");
        assert!(rss.is_nan() || rss > 0.0, "rss {rss}");
    }

    #[test]
    fn stats_off_report_matches_stats_on_at_tiny_scale() {
        // The S3 regime (aggregate counters, no per-node detail) must
        // describe the same universe as the default detailed path: same
        // fingerprint, including counter-derived delivery and totals.
        let run = |detail: bool| {
            let mut net = scale_family(24, 3)
                .plain()
                .tune(|c| c.per_node_stats = detail)
                .build();
            net.engine.run_until(SimTime(2_000_000));
            let flows = net.scale_flows(3);
            net.run(&Workload::flows(flows, 2, SimDuration::from_millis(400)))
                .fingerprint()
        };
        assert_eq!(
            run(true),
            run(false),
            "streaming stats diverged from detailed"
        );
    }

    #[test]
    fn s2_secure_storm_is_identical_under_both_queues_at_tiny_scale() {
        // The full gate runs inside exhibit_s2; pin a miniature version
        // here so `cargo test` exercises the wheel-vs-heap secure
        // differential without the exhibit's wall cost.
        let run = |queue| {
            let mut net = ScenarioBuilder::new()
                .hosts(8)
                .placement(Placement::Uniform)
                .density(10.0)
                .seed(5)
                .queue(queue)
                .secure_with(ProtocolConfig {
                    key_bits: 384,
                    ..ProtocolConfig::default()
                })
                .join_stagger(SimDuration::from_millis(20))
                .build();
            let report = net.run(&Workload::bootstrap_storm());
            report.fingerprint()
        };
        assert_eq!(run(QueueImpl::Wheel), run(QueueImpl::Heap));
    }

    #[test]
    fn s2_secure_storm_is_identical_under_both_executors_at_tiny_scale() {
        // The full sharded-vs-single gate runs inside exhibit_s1/s2;
        // this miniature keeps the scale-shaped differential (staggered
        // joins, DAD timers, kills) in plain `cargo test`.
        let run = |exec| {
            let mut net = ScenarioBuilder::new()
                .hosts(8)
                .placement(Placement::Uniform)
                .density(10.0)
                .seed(5)
                .exec(exec)
                .churn(2, (SimTime(2_000_000), SimTime(6_000_000)))
                .secure_with(ProtocolConfig {
                    key_bits: 384,
                    ..ProtocolConfig::default()
                })
                .join_stagger(SimDuration::from_millis(20))
                .build();
            let report = net.run(&Workload::bootstrap_storm());
            report.fingerprint()
        };
        let single = run(manet_sim::ExecMode::Single);
        for k in [1, 3, 8] {
            assert_eq!(
                single,
                run(manet_sim::ExecMode::Sharded(k)),
                "sharded({k}) secure storm diverged from single"
            );
        }
    }

    #[test]
    fn empty_flow_report_round_trips_through_jsonscan() {
        use crate::jsonscan::read_number;
        // No flows sent: delivery_ratio is None and serializes as null;
        // the scanner must read the document instead of choking on it.
        let mut net = ScenarioBuilder::new().hosts(2).plain().build();
        let report = net.run(&Workload::flows(
            Vec::new(),
            0,
            SimDuration::from_millis(10),
        ));
        assert_eq!(report.delivery_ratio, None, "empty flow list sent data?");
        let j = report.to_json();
        assert!(
            read_number(&j, "delivery_ratio").is_some_and(f64::is_nan),
            "null must round-trip as present-but-NaN: {j}"
        );
        assert_eq!(read_number(&j, "events"), Some(report.events as f64));
        assert_eq!(
            read_number(&j, "nodes_killed"),
            Some(report.nodes_killed as f64)
        );
        assert!(!j.contains("NaN"), "raw NaN leaked into JSON: {j}");
    }
}
